#!/usr/bin/env bash
# Hermetic-build gate: the workspace must build and test entirely offline,
# with every dependency an in-tree path dependency. Run from anywhere:
#
#   scripts/verify.sh
#
# Fails if any Cargo.toml reacquires a registry (non-path) dependency, or if
# the offline build/test fails.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
# Scan every dependency section of every manifest. A dependency line is
# acceptable only if it is a path dependency ({ path = ... }) or a reference
# to one ({ workspace = true } resolving to a path entry in the root
# manifest, which this same scan covers).
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /dependencies\]$/ || $0 ~ /^\[workspace\.dependencies\]/)
            next
        }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                print
            }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "error: $manifest declares a non-path dependency:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "The workspace must stay hermetic: vendor the code into crates/util" >&2
    echo "(see DESIGN.md, 'Dependencies') instead of adding registry crates." >&2
    exit 1
fi
echo "manifest scan: ok (all dependencies are in-tree path dependencies)"

# Warnings gate: the release build must be clean under -D warnings.
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Smoke-run the benchmark pipeline: under `cargo test` (no --bench flag)
# each harness=false bench target executes its routines once, so this
# verifies the measurement code paths without paying for a full run.
cargo test -q --offline -p cnet-bench

# Model-check gate: exhaustively enumerate every bounded interleaving of
# the lock-free core under the shim-atomic scheduler (crates/util/src/
# model.rs; see DESIGN.md, "Model checking the lock-free core"). The
# scenario suite asserts >= 10,000 distinct schedules total and that a
# seeded bug is caught with a replay string. `timeout` bounds the wall
# clock — the suite runs in seconds, so hitting the budget means a
# state-space regression (an unbounded spin loop, a fairness bug), which
# should fail fast rather than hang the gate.
RUSTFLAGS="-D warnings" timeout 300 \
    cargo test -q --release --offline -p cnet-util --features model-check
RUSTFLAGS="-D warnings" timeout 600 \
    cargo test -q --release --offline -p cnet-bench --features model-check \
    --test model_check

# Audit smoke: a single-threaded run against the compiled backend, streamed
# through the online monitors, must come back with zero violations (one
# sequential process drains the network between ops, so the step property
# makes its values strictly increase; any violation here is a recorder or
# monitor bug). Multi-threaded audits are *expected* to catch genuine SC
# violations on preemption-induced overtaking — see EXPERIMENTS.md — so
# they are not a pass/fail gate.
audit_out=$(cargo run -q --release --offline -p cnet-cli -- audit 8 --backend compiled)
echo "$audit_out" | tail -n 3
if ! echo "$audit_out" | grep -q "audit verdict: clean"; then
    echo "error: cnet audit reported violations on the compiled backend" >&2
    exit 1
fi

# Service smoke: boot `cnet serve` on an ephemeral loopback port, discover
# the port through --port-file, drive it with `cnet loadgen --check`
# (values must be an exact permutation of 0..n), ask for a remote
# shutdown, and require the server to drain within a bounded deadline.
port_file=$(mktemp)
rm -f "$port_file"
cargo run -q --release --offline -p cnet-cli -- \
    serve 8 --backend fetch_add --audit 1 --max-conns 8 --port-file "$port_file" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "error: cnet serve exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
if [ ! -s "$port_file" ]; then
    echo "error: cnet serve never wrote its port file" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
addr=$(cat "$port_file")
# Batched smoke: each burst is one NextBatch frame served by the batched
# traversal (one atomic per balancer per batch, one widened recorder
# interval) — the values must still be an exact permutation.
loadgen_out=$(cargo run -q --release --offline -p cnet-cli -- \
    loadgen --addr "$addr" --threads 4 --ops 20000 --batch 64 --mode batch \
    --check 1 --shutdown 1)
echo "$loadgen_out"
if ! echo "$loadgen_out" | grep -q "permutation 0..20000: true"; then
    echo "error: batched networked values were not a permutation of 0..n" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
# Bounded drain: the server must exit cleanly shortly after the Shutdown
# frame was acknowledged.
drained=0
for _ in $(seq 1 100); do
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.1
done
if [ "$drained" -ne 1 ]; then
    echo "error: cnet serve failed to drain after a shutdown request" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid"
rm -f "$port_file"

# Parallel-audit smoke: a served run with `--audit-threads 2` steals ring
# shards into per-shard monitors *while traffic runs*, then merges the
# final frontiers after shutdown. The fetch_add backend is linearizable
# and recorded intervals only ever widen, so the merged verdict must be
# clean — and the pipeline line must confirm both workers ran.
port_file=$(mktemp); serve_log=$(mktemp)
rm -f "$port_file"
cargo run -q --release --offline -p cnet-cli -- \
    serve 8 --backend fetch_add --audit 1 --audit-threads 2 --audit-sample 4 \
    --max-conns 8 --port-file "$port_file" > "$serve_log" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "error: cnet serve (parallel-audit smoke) exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
if [ ! -s "$port_file" ]; then
    echo "error: cnet serve (parallel-audit smoke) never wrote its port file" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
addr=$(cat "$port_file")
par_out=$(cargo run -q --release --offline -p cnet-cli -- \
    loadgen --addr "$addr" --threads 4 --ops 20000 --mode pipeline \
    --check 1 --shutdown 1)
if ! echo "$par_out" | grep -q "permutation 0..20000: true"; then
    echo "error: parallel-audit smoke values were not a permutation of 0..n" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
drained=0
for _ in $(seq 1 100); do
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.1
done
if [ "$drained" -ne 1 ]; then
    echo "error: cnet serve (parallel-audit smoke) failed to drain" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid" || true
cat "$serve_log"
if ! grep -q "audit pipeline: 2 worker(s)" "$serve_log"; then
    echo "error: serve did not run the 2-worker parallel audit pipeline" >&2
    exit 1
fi
if ! grep -Eq "audit: .* — clean" "$serve_log"; then
    echo "error: parallel-audit merged verdict was not clean" >&2
    exit 1
fi
rm -f "$port_file" "$serve_log"
echo "parallel-audit smoke: ok (2 stealer workers, 1-in-4 sampling, clean merged verdict)"

# Reactor smoke: the sharded epoll reactor must hold 256 mostly-idle
# pooled connections from 4 loadgen workers and still hand out an exact
# permutation, then report its reactor counters and drain on Shutdown.
# Needs file descriptors for 256 sockets on each side of the loopback;
# skip (with a warning) when the fd limit cannot carry it.
nofile=$(ulimit -n)
if [ "$nofile" != "unlimited" ] && [ "$nofile" -lt 4096 ]; then
    echo "warning: ulimit -n is $nofile (< 4096) — skipping the 256-connection reactor smoke" >&2
else
    port_file=$(mktemp)
    rm -f "$port_file"
    cargo run -q --release --offline -p cnet-cli -- \
        serve 8 --backend fetch_add --max-conns 300 --port-file "$port_file" &
    serve_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$port_file" ] && break
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "error: cnet serve (reactor smoke) exited before binding" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ ! -s "$port_file" ]; then
        echo "error: cnet serve (reactor smoke) never wrote its port file" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    addr=$(cat "$port_file")
    reactor_out=$(cargo run -q --release --offline -p cnet-cli -- \
        loadgen --addr "$addr" --threads 4 --connections 256 --ops 20000 \
        --batch 64 --mode batch --check 1 --shutdown 1)
    echo "$reactor_out"
    if ! echo "$reactor_out" | grep -q "4 threads over 256 connections"; then
        echo "error: loadgen did not drive 256 pooled connections" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    if ! echo "$reactor_out" | grep -q "permutation 0..20000: true"; then
        echo "error: 256-connection values were not a permutation of 0..n" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    if ! echo "$reactor_out" | grep -q "server reactor: .* epoll wakeups"; then
        echo "error: loadgen --shutdown did not report the reactor counters" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    drained=0
    for _ in $(seq 1 100); do
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            drained=1
            break
        fi
        sleep 0.1
    done
    if [ "$drained" -ne 1 ]; then
        echo "error: cnet serve (reactor smoke) failed to drain after shutdown" >&2
        kill -9 "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    wait "$serve_pid"
    rm -f "$port_file"
fi

# Cluster smoke: partition B(8) across two `serve --cluster` nodes on
# ephemeral loopback ports (tail first — the head dials its downstream
# peer at startup), drive 100k ops from a 4-thread loadgen pointed at
# the *tail* (`--cluster 1` makes the NodeInfo handshake re-dial the
# head), require an exact permutation, then fetch and merge both nodes'
# trace shards into one cluster-wide audit verdict. The per-token
# pipeline path on this host serializes each slot's tokens through the
# chain in order, so the merged audit must come back clean; `cnet
# audit` exits nonzero on violations, so the exit code is the gate.
# Both nodes drain gracefully via the trafficless `--ops 0 --shutdown`
# handshake (the tail serves no clients, so a normal loadgen run
# against it cannot carry the shutdown).
tail_pf=$(mktemp); head_pf=$(mktemp)
rm -f "$tail_pf" "$head_pf"
cargo run -q --release --offline -p cnet-cli -- \
    serve 8 --cluster 1/2 --audit 1 --max-conns 8 --port-file "$tail_pf" &
tail_pid=$!
for _ in $(seq 1 100); do
    [ -s "$tail_pf" ] && break
    if ! kill -0 "$tail_pid" 2>/dev/null; then
        echo "error: cluster tail exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
if [ ! -s "$tail_pf" ]; then
    echo "error: cluster tail never wrote its port file" >&2
    kill "$tail_pid" 2>/dev/null || true
    exit 1
fi
tail_addr=$(cat "$tail_pf")
cargo run -q --release --offline -p cnet-cli -- \
    serve 8 --cluster 0/2 --peers "$tail_addr" --audit 1 --max-conns 8 \
    --port-file "$head_pf" &
head_pid=$!
for _ in $(seq 1 100); do
    [ -s "$head_pf" ] && break
    if ! kill -0 "$head_pid" 2>/dev/null; then
        echo "error: cluster head exited before binding" >&2
        kill "$tail_pid" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
if [ ! -s "$head_pf" ]; then
    echo "error: cluster head never wrote its port file" >&2
    kill "$tail_pid" "$head_pid" 2>/dev/null || true
    exit 1
fi
head_addr=$(cat "$head_pf")
# The head announces itself down the chain asynchronously; retry the
# routed loadgen until the tail has learned the head's address.
cluster_out=""
for _ in $(seq 1 100); do
    if cluster_out=$(cargo run -q --release --offline -p cnet-cli -- \
        loadgen --addr "$tail_addr" --cluster 1 --threads 4 --ops 100000 \
        --batch 32 --mode pipeline --check 1 2>/dev/null); then
        break
    fi
    cluster_out=""
    sleep 0.1
done
echo "$cluster_out"
if ! echo "$cluster_out" | grep -q "permutation 0..100000: true"; then
    echo "error: routed cluster values were not a permutation of 0..n" >&2
    kill "$tail_pid" "$head_pid" 2>/dev/null || true
    exit 1
fi
audit_out=$(cargo run -q --release --offline -p cnet-cli -- \
    audit 8 --backend cluster --addr "$head_addr,$tail_addr") || {
    echo "error: cluster-wide audit reported violations (nonzero exit)" >&2
    kill "$tail_pid" "$head_pid" 2>/dev/null || true
    exit 1
}
echo "$audit_out" | tail -n 3
if ! echo "$audit_out" | grep -q "audit verdict: clean"; then
    echo "error: cluster-wide audit verdict was not clean" >&2
    kill "$tail_pid" "$head_pid" 2>/dev/null || true
    exit 1
fi
for node in "$tail_addr" "$head_addr"; do
    cargo run -q --release --offline -p cnet-cli -- \
        loadgen --addr "$node" --ops 0 --shutdown 1 >/dev/null
done
for pid in "$tail_pid" "$head_pid"; do
    drained=0
    for _ in $(seq 1 100); do
        if ! kill -0 "$pid" 2>/dev/null; then
            drained=1
            break
        fi
        sleep 0.1
    done
    if [ "$drained" -ne 1 ]; then
        echo "error: a cluster node failed to drain after its shutdown request" >&2
        kill -9 "$tail_pid" "$head_pid" 2>/dev/null || true
        exit 1
    fi
done
wait "$tail_pid" "$head_pid"
rm -f "$tail_pf" "$head_pf"
echo "cluster smoke: ok (2-node B(8), 100k ops routed via the tail, clean merged audit)"

# Batch-sweep smoke: a small in-process sweep over batch sizes 1/16/64
# must run, emit the x16/x64 rows, and report the batched speedup line.
batch_out=$(cargo run -q --release --offline -p cnet-cli -- \
    bench 4 --threads 1,2 --ops 2000 --repeats 1 --batch 1,16,64)
echo "$batch_out" | tail -n 4
if ! echo "$batch_out" | grep -q "batched traversal (k=64)"; then
    echo "error: cnet bench --batch did not report the batched speedup" >&2
    exit 1
fi

# Consistency-sweep smoke: the throughput-vs-inconsistency frontier must
# run every backend (relaxed and elimination included) through the QQC
# meter, assert the exact 0..n multiset on each row, and merge
# qqc-bearing rows into the artifact at schema version 7.
sweep_json=$(mktemp)
rm -f "$sweep_json"
sweep_out=$(cargo run -q --release --offline -p cnet-cli -- \
    bench 4 --threads 1,2 --ops 2000 --repeats 1 --sweep consistency \
    --sub-counters 4 --out "$sweep_json")
echo "$sweep_out" | tail -n 4
if ! echo "$sweep_out" | grep -q "consistency rows merged into"; then
    echo "error: cnet bench --sweep consistency did not merge its rows" >&2
    exit 1
fi
if ! grep -q '"version": 7' "$sweep_json"; then
    echo "error: consistency-sweep artifact is not schema v7" >&2
    exit 1
fi
if ! grep -q '"qqc_max"' "$sweep_json"; then
    echo "error: consistency-sweep artifact carries no qqc_max column" >&2
    exit 1
fi
rm -f "$sweep_json"

# Audit-sweep smoke: the schema-v7 retention-vs-audit-cost curve must run
# the compiled engine plain and audited (off-path drain, live stealing,
# 1-in-k sampling), store the paired retention on every audited row, and
# merge the rows into the artifact at version 7.
audit_json=$(mktemp)
rm -f "$audit_json"
audit_sweep_out=$(cargo run -q --release --offline -p cnet-cli -- \
    bench 4 --threads 1,2 --ops 2000 --repeats 1 --sweep audit \
    --sub-counters 4 --out "$audit_json")
echo "$audit_sweep_out" | tail -n 4
if ! echo "$audit_sweep_out" | grep -q "audit rows merged into"; then
    echo "error: cnet bench --sweep audit did not merge its rows" >&2
    exit 1
fi
if ! grep -q '"version": 7' "$audit_json"; then
    echo "error: audit-sweep artifact is not schema v7" >&2
    exit 1
fi
if ! grep -q '"retention"' "$audit_json"; then
    echo "error: audit-sweep artifact carries no retention column" >&2
    exit 1
fi
rm -f "$audit_json"

# Relaxed-service smoke: a RelaxedCounter-backed serve on an ephemeral
# port must hand an exact permutation to a concurrent loadgen (ordering
# may relax across the socket, the multiset may not), and the relaxed
# audit must report measured lateness with a zero exit code.
port_file=$(mktemp)
rm -f "$port_file"
cargo run -q --release --offline -p cnet-cli -- \
    serve 8 --backend relaxed --sub-counters 8 --max-conns 8 \
    --port-file "$port_file" &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "error: cnet serve (relaxed smoke) exited before binding" >&2
        exit 1
    fi
    sleep 0.1
done
if [ ! -s "$port_file" ]; then
    echo "error: cnet serve (relaxed smoke) never wrote its port file" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
addr=$(cat "$port_file")
relaxed_out=$(cargo run -q --release --offline -p cnet-cli -- \
    loadgen --addr "$addr" --threads 4 --ops 20000 --batch 64 --mode pipeline \
    --check 1 --shutdown 1)
echo "$relaxed_out"
if ! echo "$relaxed_out" | grep -q "permutation 0..20000: true"; then
    echo "error: relaxed networked values were not a permutation of 0..n" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
drained=0
for _ in $(seq 1 100); do
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.1
done
if [ "$drained" -ne 1 ]; then
    echo "error: cnet serve (relaxed smoke) failed to drain after shutdown" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid"
rm -f "$port_file"
relaxed_audit=$(cargo run -q --release --offline -p cnet-cli -- \
    audit 8 --backend relaxed --threads 4 --ops 5000) || {
    echo "error: relaxed audit must report lateness, not fail the process" >&2
    exit 1
}
echo "$relaxed_audit" | tail -n 3
if ! echo "$relaxed_audit" | grep -q "qqc lateness: max"; then
    echo "error: relaxed audit did not report its qqc lateness" >&2
    exit 1
fi
echo "relaxed smoke: ok (permutation over tcp, measured-lateness audit)"

# The committed benchmark artifact must parse under the schema-v7 reader
# (transport-tagged networked rows, width-k batch rows, oversubscription
# flags, connection counts, latency percentiles, node counts, qqc
# columns, retention/audit_threads/sample_k columns) and carry the
# acceptance rows: batch=64 >= 3x batch=1 on the compiled bitonic at 8
# threads, the 64/1024/10000-connection tcp rows with p99(1024) <=
# 2*p99(64), the two-node `"nodes": 2` cluster rows at >= 25% of their
# single-node tcp cells, the consistency rows with the relaxed counter
# at >= 2x the compiled bitonic per-token cell, and the audit-sweep rows
# with the best audit-mode retention >= 97% at the top thread count.
cargo test -q --release --offline -p cnet-bench --test net_roundtrip \
    committed_bench_artifact_parses_as_schema_v7
echo "verify: ok"
