#!/usr/bin/env bash
# Hermetic-build gate: the workspace must build and test entirely offline,
# with every dependency an in-tree path dependency. Run from anywhere:
#
#   scripts/verify.sh
#
# Fails if any Cargo.toml reacquires a registry (non-path) dependency, or if
# the offline build/test fails.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
# Scan every dependency section of every manifest. A dependency line is
# acceptable only if it is a path dependency ({ path = ... }) or a reference
# to one ({ workspace = true } resolving to a path entry in the root
# manifest, which this same scan covers).
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^\[/ {
            in_deps = ($0 ~ /dependencies\]$/ || $0 ~ /^\[workspace\.dependencies\]/)
            next
        }
        in_deps && NF && $0 !~ /^[[:space:]]*#/ {
            if ($0 !~ /path[[:space:]]*=/ && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/) {
                print
            }
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "error: $manifest declares a non-path dependency:" >&2
        echo "$bad" | sed 's/^/    /' >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "The workspace must stay hermetic: vendor the code into crates/util" >&2
    echo "(see DESIGN.md, 'Dependencies') instead of adding registry crates." >&2
    exit 1
fi
echo "manifest scan: ok (all dependencies are in-tree path dependencies)"

# Warnings gate: the release build must be clean under -D warnings.
RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
cargo test -q --offline --workspace
# Smoke-run the benchmark pipeline: under `cargo test` (no --bench flag)
# each harness=false bench target executes its routines once, so this
# verifies the measurement code paths without paying for a full run.
cargo test -q --offline -p cnet-bench

# Audit smoke: a single-threaded run against the compiled backend, streamed
# through the online monitors, must come back with zero violations (one
# sequential process drains the network between ops, so the step property
# makes its values strictly increase; any violation here is a recorder or
# monitor bug). Multi-threaded audits are *expected* to catch genuine SC
# violations on preemption-induced overtaking — see EXPERIMENTS.md — so
# they are not a pass/fail gate.
audit_out=$(cargo run -q --release --offline -p cnet-cli -- audit 8 --backend compiled)
echo "$audit_out" | tail -n 3
if ! echo "$audit_out" | grep -q "audit verdict: clean"; then
    echo "error: cnet audit reported violations on the compiled backend" >&2
    exit 1
fi
echo "verify: ok"
