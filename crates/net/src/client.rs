//! The pipelining client: [`RemoteCounter`] speaks the wire protocol to a
//! [`CounterServer`](crate::server::CounterServer) and implements
//! [`ProcessCounter`], so every harness in the workspace — benchmarks,
//! audits, property tests — runs unchanged against a counter on the other
//! side of a socket.
//!
//! # Connection pool
//!
//! The client holds `pool` independent connection slots. A caller's
//! `process` id picks slot `process % pool`; distinct slots never share a
//! connection, so `pool >= threads` gives each load-generator thread a
//! private stream with no client-side contention. Connections are dialed
//! lazily and redialed with exponential backoff after a failure.
//!
//! # Delivery semantics
//!
//! Dialing retries freely — no request has been sent. Once a request has
//! been written, an I/O failure surfaces as an error instead of being
//! retried blindly: the server may already have performed the increment,
//! and a silent retry would double-count, breaking the permutation
//! guarantee the audits depend on. The connection is torn down so the
//! *next* call redials.

use crate::wire::{
    write_request, ErrorCode, FrameDecoder, NodeInfo, Request, Response, StatsSnapshot,
    MAX_BATCH,
};
use cnet_runtime::ProcessCounter;
use cnet_util::sync::{CachePadded, Mutex};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Independent connection slots (callers map to `process % pool`).
    pub pool: usize,
    /// Dial attempts per call before giving up.
    pub max_dial_attempts: u32,
    /// First redial backoff; doubles per attempt, capped at 100x.
    pub base_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            pool: 1,
            max_dial_attempts: 10,
            base_backoff: Duration::from_millis(5),
        }
    }
}

/// One pooled connection: a single stream (one file descriptor — a
/// `BufReader` over a `try_clone` would double the fd cost and halve how
/// many connections fit under `ulimit -n`), an outgoing byte buffer
/// flushed once per pipelined burst, an incremental [`FrameDecoder`] for
/// the inbound side, and the per-connection sequence counter the protocol
/// stamps on every frame.
struct Conn {
    stream: TcpStream,
    outbox: Vec<u8>,
    decoder: FrameDecoder,
    seq: u32,
}

impl Conn {
    fn dial(addr: SocketAddr) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            outbox: Vec::new(),
            decoder: FrameDecoder::new(),
            seq: 0,
        })
    }

    /// Buffers `req` into the outbox, returning the sequence number it was
    /// stamped with. Nothing hits the wire until [`flush`](Self::flush).
    fn send(&mut self, req: &Request) -> io::Result<u32> {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        write_request(&mut self.outbox, seq, req)?;
        Ok(seq)
    }

    /// Writes the buffered request frames in one syscall.
    fn flush(&mut self) -> io::Result<()> {
        self.stream.write_all(&self.outbox)?;
        self.outbox.clear();
        Ok(())
    }

    /// Reads one response and checks it echoes `expect_seq`.
    fn recv(&mut self, expect_seq: u32) -> io::Result<Response> {
        let mut chunk = [0u8; 4096];
        let (seq, resp) = loop {
            if let Some(frame) = self.decoder.next_frame()? {
                break Response::decode(frame)?;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder.extend(&chunk[..n]);
        };
        if seq != expect_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("sequence mismatch: sent {expect_seq}, got {seq}"),
            ));
        }
        Ok(resp)
    }

    /// One round trip: send, flush, receive.
    fn call(&mut self, req: &Request) -> io::Result<Response> {
        let seq = self.send(req)?;
        self.flush()?;
        self.recv(seq)
    }
}

/// A [`ProcessCounter`] served over TCP.
///
/// See the [module docs](self) for pooling and delivery semantics.
pub struct RemoteCounter {
    addr: SocketAddr,
    cfg: ClientConfig,
    slots: Box<[CachePadded<Mutex<Option<Conn>>>]>,
}

impl std::fmt::Debug for RemoteCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteCounter")
            .field("addr", &self.addr)
            .field("pool", &self.cfg.pool)
            .finish_non_exhaustive()
    }
}

impl RemoteCounter {
    /// Connects to `addr` with a pool of `pool` connection slots. Dials one
    /// connection eagerly so an unreachable server fails here, not on the
    /// first increment.
    ///
    /// # Errors
    ///
    /// Fails if `addr` does not resolve or the server is unreachable.
    pub fn connect(addr: impl ToSocketAddrs, pool: usize) -> io::Result<RemoteCounter> {
        RemoteCounter::with_config(
            addr,
            ClientConfig { pool: pool.max(1), ..ClientConfig::default() },
        )
    }

    /// Connects to **any** node of a counting cluster and routes to the
    /// head: asks the contacted node who it is ([`Request::NodeInfo`]) and,
    /// if it is not the entry node, re-dials the head address the node
    /// advertises. Increments always enter the fabric at the head, so the
    /// never-retry permutation guarantee is untouched — the handshake
    /// happens before any counting request is sent.
    ///
    /// # Errors
    ///
    /// Connection failures, plus `AddrNotAvailable` when the contacted
    /// node does not yet know the head's address (the head has not
    /// announced itself down the chain).
    pub fn connect_routed(addr: impl ToSocketAddrs, pool: usize) -> io::Result<RemoteCounter> {
        let first = RemoteCounter::connect(addr, pool)?;
        let info = first.node_info()?;
        if info.node == 0 {
            return Ok(first);
        }
        if info.head.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("node {} of {} does not know the head yet", info.node, info.nodes),
            ));
        }
        RemoteCounter::connect(&info.head[..], pool)
    }

    /// [`connect`](Self::connect) with explicit [`ClientConfig`].
    ///
    /// # Errors
    ///
    /// Fails if `addr` does not resolve or the server is unreachable.
    pub fn with_config(addr: impl ToSocketAddrs, cfg: ClientConfig) -> io::Result<RemoteCounter> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        let cfg = ClientConfig { pool: cfg.pool.max(1), ..cfg };
        let slots: Box<[CachePadded<Mutex<Option<Conn>>>]> =
            (0..cfg.pool).map(|_| CachePadded::new(Mutex::new(None))).collect();
        *slots[0].lock() = Some(Conn::dial(addr)?);
        Ok(RemoteCounter { addr, cfg, slots })
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of connection slots in the pool.
    pub fn pool(&self) -> usize {
        self.cfg.pool
    }

    /// Runs `f` on the slot's live connection, dialing (with backoff) if
    /// the slot is empty. A failed call tears the connection down so the
    /// next call redials.
    fn with_conn<T>(
        &self,
        process: usize,
        f: impl FnOnce(&mut Conn) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut slot = self.slots[process % self.cfg.pool].lock();
        if slot.is_none() {
            let mut backoff = self.cfg.base_backoff;
            let mut last_err = None;
            for attempt in 0..self.cfg.max_dial_attempts.max(1) {
                match Conn::dial(self.addr) {
                    Ok(conn) => {
                        *slot = Some(conn);
                        break;
                    }
                    Err(e) => {
                        last_err = Some(e);
                        if attempt + 1 < self.cfg.max_dial_attempts.max(1) {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(self.cfg.base_backoff * 100);
                        }
                    }
                }
            }
            if slot.is_none() {
                return Err(last_err.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, "dial failed")
                }));
            }
        }
        let conn = slot.as_mut().expect("connection dialed above");
        let result = f(conn);
        if result.is_err() {
            *slot = None; // redial on the next call
        }
        result
    }

    /// Fallible single increment as `process`.
    ///
    /// # Errors
    ///
    /// I/O failures, and server refusals mapped through
    /// [`response_error`].
    pub fn try_next(&self, process: usize) -> io::Result<u64> {
        self.with_conn(process, |conn| match conn.call(&Request::Next)? {
            Response::Value { value } => Ok(value),
            other => Err(response_error(&other)),
        })
    }

    /// Fallible batched increment: `n` values in one round trip.
    ///
    /// Requests larger than the wire limit ([`MAX_BATCH`]) are chunked
    /// transparently: every chunk's `NextBatch` frame is pipelined on the
    /// slot's connection before any response is read, so even a huge batch
    /// costs one flush. A failure mid-way tears the connection down
    /// *without retrying* — already-sent chunks may have executed
    /// server-side, and re-sending them would double-count, breaking the
    /// permutation guarantee the audits depend on.
    ///
    /// # Errors
    ///
    /// I/O failures, server refusals, and a batch echoing the wrong
    /// length.
    pub fn next_batch(&self, process: usize, n: usize) -> io::Result<Vec<u64>> {
        self.with_conn(process, |conn| {
            let mut seqs = Vec::new();
            let mut left = n;
            while left > 0 {
                let chunk = left.min(MAX_BATCH as usize) as u32;
                seqs.push((conn.send(&Request::NextBatch { n: chunk })?, chunk));
                left -= chunk as usize;
            }
            conn.flush()?;
            let mut values = Vec::with_capacity(n);
            for (seq, chunk) in seqs {
                match conn.recv(seq)? {
                    Response::Batch { values: got } if got.len() == chunk as usize => {
                        values.extend(got);
                    }
                    Response::Batch { values: got } => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("asked for {chunk} values, got {}", got.len()),
                        ));
                    }
                    other => return Err(response_error(&other)),
                }
            }
            Ok(values)
        })
    }

    /// `k` single increments pipelined on one connection: all requests are
    /// written before any response is read, so the batch costs one flush
    /// and one round trip instead of `k`.
    ///
    /// # Errors
    ///
    /// I/O failures and server refusals; on error the connection is torn
    /// down (some of the `k` increments may have executed server-side).
    pub fn next_pipelined(&self, process: usize, k: usize) -> io::Result<Vec<u64>> {
        self.with_conn(process, |conn| {
            let seqs: Vec<u32> = (0..k)
                .map(|_| conn.send(&Request::Next))
                .collect::<io::Result<_>>()?;
            conn.flush()?;
            seqs.into_iter()
                .map(|seq| match conn.recv(seq)? {
                    Response::Value { value } => Ok(value),
                    other => Err(response_error(&other)),
                })
                .collect()
        })
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`Pong` answer.
    pub fn ping(&self, process: usize) -> io::Result<()> {
        self.with_conn(process, |conn| match conn.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(response_error(&other)),
        })
    }

    /// Asks the server who it is in the cluster (a plain server answers
    /// as a one-node cluster).
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`NodeInfo` answer.
    pub fn node_info(&self) -> io::Result<NodeInfo> {
        self.with_conn(0, |conn| match conn.call(&Request::NodeInfo)? {
            Response::NodeInfo(info) => Ok(info),
            other => Err(response_error(&other)),
        })
    }

    /// Fetches one chunk of recorded trace events for the cluster-wide
    /// audit; an empty chunk means the server's recorder is drained.
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`Trace` answer.
    pub fn fetch_trace(&self, max: u32) -> io::Result<Vec<crate::wire::TraceEvent>> {
        self.with_conn(0, |conn| match conn.call(&Request::Trace { max })? {
            Response::Trace { events } => Ok(events),
            other => Err(response_error(&other)),
        })
    }

    /// Fetches one shard's audit frontier — up to `max` buffered events
    /// plus the serving node's partial verdict — for the cluster-wide
    /// merged audit. An empty `ops` list means the shard is currently
    /// dry (re-poll until it settles, like [`fetch_trace`](Self::fetch_trace)).
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`Frontier` answer.
    pub fn fetch_frontier(
        &self,
        shard: u32,
        max: u32,
    ) -> io::Result<cnet_core::trace::ShardFrontier> {
        self.with_conn(0, |conn| match conn.call(&Request::Frontier { shard, max })? {
            Response::Frontier { frontier } => Ok(frontier),
            other => Err(response_error(&other)),
        })
    }

    /// Fetches the server's aggregated statistics.
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`Stats` answer.
    pub fn server_stats(&self) -> io::Result<StatsSnapshot> {
        self.with_conn(0, |conn| match conn.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(response_error(&other)),
        })
    }

    /// Asks the server to shut down; resolves once the server acknowledges
    /// with [`Response::Bye`].
    ///
    /// # Errors
    ///
    /// I/O failures, or a non-`Bye` answer.
    pub fn shutdown_server(&self) -> io::Result<()> {
        self.with_conn(0, |conn| match conn.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(response_error(&other)),
        })
    }
}

impl ProcessCounter for RemoteCounter {
    /// Panics on I/O or protocol errors — the trait is infallible. Use
    /// [`RemoteCounter::try_next`] where failures must be handled.
    fn next_for(&self, process: usize) -> u64 {
        match self.try_next(process) {
            Ok(value) => value,
            Err(e) => panic!("remote increment against {} failed: {e}", self.addr),
        }
    }

    /// One `NextBatch` round trip (chunked above the wire limit) instead
    /// of `n` request frames. Panics on I/O or protocol errors — use
    /// [`RemoteCounter::next_batch`] where failures must be handled.
    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        match self.next_batch(process, n) {
            Ok(values) => values,
            Err(e) => panic!("remote batch against {} failed: {e}", self.addr),
        }
    }
}

/// Maps a refusal (or protocol surprise) to an [`io::Error`].
pub fn response_error(resp: &Response) -> io::Error {
    match resp {
        Response::Error(ErrorCode::Busy) => {
            io::Error::new(io::ErrorKind::ConnectionRefused, "server busy (at connection limit)")
        }
        Response::Error(ErrorCode::ShuttingDown) => {
            io::Error::new(io::ErrorKind::ConnectionAborted, "server shutting down")
        }
        Response::Error(code) => {
            io::Error::new(io::ErrorKind::InvalidData, format!("server error: {code:?}"))
        }
        other => io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response: {other:?}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CounterServer, ServerConfig};
    use cnet_runtime::FetchAddCounter;
    use std::sync::Arc;

    fn server() -> CounterServer {
        CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn single_batch_and_pipelined_calls_round_trip() {
        let server = server();
        let client = RemoteCounter::connect(server.local_addr(), 2).unwrap();
        let mut values = vec![client.try_next(0).unwrap()];
        values.extend(client.next_batch(1, 5).unwrap());
        values.extend(client.next_pipelined(0, 6).unwrap());
        values.sort_unstable();
        assert_eq!(values, (0..12).collect::<Vec<u64>>());
        client.ping(0).unwrap();
        let stats = client.server_stats().unwrap();
        assert_eq!(stats.ops, 12);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn oversized_batches_are_chunked_not_refused() {
        let server = server();
        let client = RemoteCounter::connect(server.local_addr(), 1).unwrap();
        let n = MAX_BATCH as usize + 17;
        let mut values = client.next_batch(0, n).unwrap();
        values.sort_unstable();
        assert_eq!(values, (0..n as u64).collect::<Vec<_>>());
        // Two NextBatch frames on the wire: one full chunk + the remainder.
        assert_eq!(client.server_stats().unwrap().batches, 2);
    }

    #[test]
    fn implements_process_counter() {
        let server = server();
        let client = RemoteCounter::connect(server.local_addr(), 1).unwrap();
        let counter: &dyn ProcessCounter = &client;
        assert_eq!(counter.next_for(0), 0);
        assert_eq!(counter.next_for(7), 1);
    }

    #[test]
    fn connect_to_dead_server_fails_eagerly() {
        // Bind-then-drop yields a port with (very likely) no listener.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(RemoteCounter::connect(addr, 1).is_err());
    }

    #[test]
    fn reconnects_after_server_restart_on_same_port() {
        let mut first = server();
        let addr = first.local_addr();
        let client = RemoteCounter::with_config(
            addr,
            ClientConfig { pool: 1, max_dial_attempts: 40, ..ClientConfig::default() },
        )
        .unwrap();
        assert_eq!(client.try_next(0).unwrap(), 0);
        first.shutdown();
        // The in-flight-free failure surfaces as an error, not a retry.
        assert!(client.try_next(0).is_err());
        // A fresh server on the same port: the next call redials.
        let replacement = CounterServer::start(
            addr,
            Arc::new(FetchAddCounter::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let value = client.try_next(0).unwrap();
        assert_eq!(value, 0, "fresh backend restarts the count");
        drop(replacement);
    }

    #[test]
    fn shutdown_request_is_acknowledged() {
        let server = server();
        let client = RemoteCounter::connect(server.local_addr(), 1).unwrap();
        client.shutdown_server().unwrap();
        server.wait_for_shutdown_request();
        assert!(server.shutdown_requested());
    }
}
