//! # cnet-net — the counting service over plain `std::net`
//!
//! Turns any [`ProcessCounter`](cnet_runtime::ProcessCounter) backend into
//! a network service, hermetically: the whole stack — wire protocol,
//! server, client, load generator — is built on `std::net` TCP with zero
//! external dependencies, matching the workspace's in-tree-only policy.
//!
//! The paper's question (sequentially consistent versus linearizable
//! counting) is about counters shared *between processes*; this crate
//! makes the process boundary real. A counting network served over a
//! socket keeps its step-property guarantees per connection slot, and the
//! server can stream every increment into the PR 3 online monitors, so
//! `f_nl`/`f_nsc` can be measured across an actual transport rather than
//! simulated wire delays.
//!
//! | module | what it is |
//! |---|---|
//! | [`wire`] | length-prefixed binary frames: `Next`, `NextBatch`, `Ping`, `Stats`, `Shutdown`, plus the v2 cluster opcodes (`Forward`, `NodeInfo`, `Announce`, `Trace`); incremental [`wire::FrameDecoder`] |
//! | [`server`] | sharded epoll-reactor [`CounterServer`] (one reactor per core) with backpressure and graceful drain |
//! | [`router`] | the cluster fabric: [`router::ClusterNode`] — one node's partitioned layer range — and the [`router::RemoteNode`] peer link forwarding tokens downstream |
//! | [`client`] | pooling, pipelining [`RemoteCounter`] — itself a `ProcessCounter`, cluster-routing to the head |
//! | [`loadgen`] | multi-threaded load generator: M pooled connections driven by N workers, permutation checking, latency percentiles |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod router;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, RemoteCounter};
pub use loadgen::{run_loadgen, LoadGenConfig, LoadGenMode, LoadGenReport};
pub use router::{ClusterError, ClusterNode, FrontierCollector, RemoteNode};
pub use server::{Backpressure, CounterServer, ServerConfig};
pub use wire::{Request, Response, StatsSnapshot};
