//! The counting-service wire protocol: compact length-prefixed binary
//! frames over any byte stream.
//!
//! # Frame layout
//!
//! Every frame is `[len: u32 LE][payload]`, where `payload` is
//!
//! ```text
//! [version: u8][opcode: u8][seq: u32 LE][body ...]
//! ```
//!
//! `len` counts the payload bytes only (so the minimum frame is
//! [`HEADER_LEN`] bytes of payload) and is capped at [`MAX_FRAME`] — a
//! reader never allocates unboundedly on a corrupt or hostile length word.
//! `seq` is a per-connection sequence number: the client stamps each
//! request, the server echoes the stamp in the matching response, and both
//! sides can therefore pipeline many requests on one connection and match
//! responses without heads-of-line bookkeeping.
//!
//! # Opcodes
//!
//! | opcode | direction | frame | body |
//! |-------:|-----------|-------|------|
//! | `0x01` | → server  | [`Request::Next`] | — |
//! | `0x02` | → server  | [`Request::NextBatch`] | `n: u32 LE` |
//! | `0x03` | → server  | [`Request::Ping`] | — |
//! | `0x04` | → server  | [`Request::Stats`] | — |
//! | `0x05` | → server  | [`Request::Shutdown`] | — |
//! | `0x06` | → peer    | [`Request::Forward`] | `token: u64`, `port: u32`, `node_seq: u32` |
//! | `0x07` | → peer    | [`Request::ForwardBatch`] | `token: u64`, `port: u32`, `node_seq: u32`, `n: u32` |
//! | `0x08` | → server  | [`Request::NodeInfo`] | — |
//! | `0x09` | → peer    | [`Request::Announce`] | `node: u32`, `head: u16 LE + UTF-8` |
//! | `0x0A` | → server  | [`Request::Trace`] | `max: u32` |
//! | `0x0B` | → server  | [`Request::Frontier`] | `shard: u32`, `max: u32` |
//! | `0x81` | ← server  | [`Response::Value`] | `value: u64 LE` |
//! | `0x82` | ← server  | [`Response::Batch`] | `n: u32 LE`, `n × u64 LE` |
//! | `0x83` | ← server  | [`Response::Pong`] | — |
//! | `0x84` | ← server  | [`Response::Stats`] | 9 × `u64 LE` ([`StatsSnapshot`]) |
//! | `0x85` | ← server  | [`Response::Bye`] | — |
//! | `0x86` | ← server  | [`Response::Error`] | `code: u8` ([`ErrorCode`]) |
//! | `0x87` | ← server  | [`Response::NodeInfo`] | 4 × `u32 LE`, `head: u16 LE + UTF-8` |
//! | `0x88` | ← server  | [`Response::Trace`] | `n: u32 LE`, `n ×` [`TraceEvent`] (28 B) |
//! | `0x89` | ← server  | [`Response::Frontier`] | [`FRONTIER_HEADER_LEN`] B header, `n ×` ops (28 B) |
//!
//! Integers are little-endian throughout. Decoding is strict: unknown
//! versions and opcodes, truncated bodies, and trailing bytes are all
//! [`WireError`]s — a server answers them with [`Response::Error`] and
//! drops the connection rather than guessing.
//!
//! # Version negotiation
//!
//! Version 2 added the cluster opcodes (`0x06`–`0x0A`, `0x87`–`0x88`).
//! Decoding still accepts version-1 frames for the version-1 opcode set,
//! and a server echoes the request's version in its response
//! ([`Response::encode_versioned`]), so a v1 client's `Ping` is answered
//! with a v1 `Pong` instead of a dropped connection. A cluster opcode
//! inside a v1 frame is a [`WireError::BadOpcode`]: old clients never see
//! half-understood cluster traffic.

use cnet_core::trace::{RawOp, ShardFrontier};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version stamped on newly encoded frames.
pub const VERSION: u8 = 2;

/// Oldest protocol version still decoded (see "Version negotiation").
pub const MIN_VERSION: u8 = 1;

/// Fixed payload header: version, opcode, sequence number.
pub const HEADER_LEN: usize = 6;

/// Hard cap on a frame's payload length; larger length words are treated
/// as corruption.
pub const MAX_FRAME: usize = 1 << 20;

/// Hard cap on a `NextBatch` request (keeps one request's response under
/// [`MAX_FRAME`] and bounds the work one frame can demand).
pub const MAX_BATCH: u32 = 1 << 16;

/// A request frame, client to server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// One increment; answered with [`Response::Value`].
    Next,
    /// `n` increments in one frame; answered with [`Response::Batch`] of
    /// `n` values. The batch is the protocol's amortization lever: one
    /// round trip, one syscall pair, `n` counter operations.
    NextBatch {
        /// Number of increments requested (`1..=MAX_BATCH`).
        n: u32,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Server statistics; answered with [`Response::Stats`].
    Stats,
    /// Asks the whole server to drain and stop; answered with
    /// [`Response::Bye`] before the connection closes.
    Shutdown,
    /// A token crossing a partition cut, node `k` to node `k+1`; answered
    /// with [`Response::Value`] once the chain's final node has counted
    /// it, the value flowing back along the reverse path.
    Forward {
        /// Cluster-unique token id stamped by the entry node (diagnostic
        /// identity; the counting path never branches on it).
        token: u64,
        /// The cut position the token exits/enters on: sink `port` of the
        /// sender's sub-network = source `port` of the receiver's.
        port: u32,
        /// The receiving node's index in the chain; a node refuses a hop
        /// that does not match its own position
        /// ([`ErrorCode::Cluster`]).
        node_seq: u32,
    },
    /// `n` tokens crossing a cut on the same position in one frame (the
    /// sender's batched traversal groups tokens per exit port); answered
    /// with [`Response::Batch`] of `n` values.
    ForwardBatch {
        /// Token id of the first token in the group.
        token: u64,
        /// The shared cut position.
        port: u32,
        /// The receiving node's expected chain index.
        node_seq: u32,
        /// Number of tokens in the group (`1..=MAX_BATCH`).
        n: u32,
    },
    /// Asks who the server is in the cluster; answered with
    /// [`Response::NodeInfo`]. Clients use it to route to the entry node.
    NodeInfo,
    /// An upstream peer introducing itself on a freshly dialed peer link,
    /// propagating the cluster head's address down the chain; answered
    /// with [`Response::Pong`].
    Announce {
        /// The announcing (upstream) node's chain index.
        node: u32,
        /// The client-facing address of the cluster head (node 0), as the
        /// announcer knows it; empty if not yet known.
        head: String,
    },
    /// Fetches a chunk of recorded trace events for the cluster-wide
    /// audit; answered with [`Response::Trace`]. Repeated requests drain
    /// the recorder; an empty response means fully drained.
    Trace {
        /// Upper bound on events returned in one response frame.
        max: u32,
    },
    /// Fetches one recorder shard's audit frontier — buffered events plus
    /// the node-local [`ShardMonitor`](cnet_core::trace::ShardMonitor)'s
    /// partial verdict and drop/skip accounting — for the cluster-wide
    /// merged audit; answered with [`Response::Frontier`]. Repeated
    /// requests drain the shard; an empty-`ops` frontier means the shard
    /// is currently dry. An audit session should use either `Frontier` or
    /// [`Trace`](Self::Trace), not both: both consume the same recorder.
    Frontier {
        /// The node-local recorder shard to pull.
        shard: u32,
        /// Upper bound on events returned in one response frame.
        max: u32,
    },
}

/// A response frame, server to client, echoing the request's `seq`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The value obtained by one increment.
    Value {
        /// The counter value handed out.
        value: u64,
    },
    /// The values obtained by a `NextBatch`.
    Batch {
        /// One value per requested increment, in issue order.
        values: Vec<u64>,
    },
    /// Liveness answer.
    Pong,
    /// A snapshot of the server's aggregate statistics.
    Stats(StatsSnapshot),
    /// Acknowledges a `Shutdown`; the server is draining.
    Bye,
    /// The request could not be served; the server closes the connection
    /// after sending this.
    Error(ErrorCode),
    /// Who the server is in the cluster (answer to [`Request::NodeInfo`]).
    NodeInfo(NodeInfo),
    /// A chunk of recorded trace events (answer to [`Request::Trace`]);
    /// empty when the server's recorder is fully drained.
    Trace {
        /// The drained events, in per-shard record order.
        events: Vec<TraceEvent>,
    },
    /// One shard's audit frontier (answer to [`Request::Frontier`]): a
    /// chunk of buffered events in shard order plus the serving node's
    /// lifetime partial verdict for the shard. Shipping frontiers instead
    /// of raw stamps lets the client fold each node's local monitoring
    /// into a [`MergeAuditor`](cnet_core::trace::MergeAuditor) without
    /// re-deriving the per-shard state.
    Frontier {
        /// The shard frontier, `shard` still in the node-local space.
        frontier: ShardFrontier,
    },
}

/// A server's cluster identity, as carried by [`Response::NodeInfo`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeInfo {
    /// This server's chain index (`0` = entry/head node).
    pub node: u32,
    /// Total nodes in the chain (`1` for a single-process server).
    pub nodes: u32,
    /// The network fan `w` — the width of every partition cut.
    pub fan: u32,
    /// Recorder shards this node can serve via [`Request::Trace`]
    /// (`0` when auditing is off).
    pub shards: u32,
    /// Client-facing address of the head node; empty if unknown (head not
    /// yet announced down the chain) — the head itself always knows it.
    pub head: String,
}

/// One recorded operation interval, as carried by [`Response::Trace`]
/// (28 bytes on the wire: `shard: u32`, then three `u64`s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The recorder shard (node-local) the event came from; events within
    /// one shard arrive in nondecreasing `enter_ns` order.
    pub shard: u32,
    /// Operation start, integer nanoseconds on the serving node's clock.
    pub enter_ns: u64,
    /// Operation end, same clock, `>= enter_ns`.
    pub exit_ns: u64,
    /// The counter value the operation returned.
    pub value: u64,
}

/// Wire size of one [`TraceEvent`].
pub const TRACE_EVENT_LEN: usize = 28;

/// Hard cap on events per [`Response::Trace`] frame (keeps the frame
/// comfortably under [`MAX_FRAME`]).
pub const MAX_TRACE_EVENTS: u32 = 1 << 14;

/// Wire size of a [`Response::Frontier`] body before its ops: `shard:
/// u32`, `flags: u8` (bit 0 = finished, bit 1 = watermark present),
/// `watermark`, `dropped`, `skipped`, `candidate_non_lin`, `non_sc`,
/// `qqc_floor`, `candidate_qqc_max` (seven `u64`s), `n: u32`.
pub const FRONTIER_HEADER_LEN: usize = 4 + 1 + 7 * 8 + 4;

/// Wire size of one frontier op: `process: u32`, then three `u64`s.
pub const FRONTIER_OP_LEN: usize = 28;

/// Hard cap on ops per [`Response::Frontier`] frame (keeps the frame
/// comfortably under [`MAX_FRAME`]).
pub const MAX_FRONTIER_OPS: u32 = 1 << 14;

/// Why a request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame failed to decode (bad version, opcode, or body).
    Malformed = 1,
    /// A `NextBatch` asked for 0 or more than [`MAX_BATCH`] values.
    BadBatch = 2,
    /// The server is at its connection limit (reject backpressure policy).
    Busy = 3,
    /// The server is draining and no longer serves increments.
    ShuttingDown = 4,
    /// A cluster hop was refused: wrong `node_seq` for this node, a
    /// forward to a node with no downstream stage, or a broken peer link.
    Cluster = 5,
}

impl ErrorCode {
    fn from_byte(b: u8) -> Result<ErrorCode, WireError> {
        match b {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::BadBatch),
            3 => Ok(ErrorCode::Busy),
            4 => Ok(ErrorCode::ShuttingDown),
            5 => Ok(ErrorCode::Cluster),
            other => Err(WireError::BadErrorCode(other)),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed frame",
            ErrorCode::BadBatch => "batch size out of range",
            ErrorCode::Busy => "server at connection limit",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::Cluster => "cluster hop refused",
        };
        f.write_str(s)
    }
}

/// Aggregate server statistics, as carried by [`Response::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections currently open.
    pub active_connections: u64,
    /// Connections accepted since start.
    pub total_connections: u64,
    /// Connections refused by the reject backpressure policy.
    pub rejected_connections: u64,
    /// Request frames served.
    pub requests: u64,
    /// Counter values handed out (a `NextBatch{n}` counts `n`).
    pub ops: u64,
    /// `NextBatch` frames served.
    pub batches: u64,
    /// Accepted connections that waited for a slot under the `block`
    /// backpressure policy (deferred accepts).
    pub deferred_accepts: u64,
    /// Times a reactor woke from its readiness wait (`epoll_wait`
    /// returns), across all reactor shards.
    pub reactor_wakeups: u64,
    /// Readiness events delivered across all wakeups; divided by
    /// [`StatsSnapshot::reactor_wakeups`] this is the mean batch size per
    /// `epoll_wait`, a direct read on how well wakeups amortize.
    pub reactor_events: u64,
}

/// A malformed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Payload shorter than the fixed header.
    TooShort(usize),
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Body shorter than the opcode requires.
    Truncated {
        /// The opcode whose body was cut off.
        opcode: u8,
        /// Bytes actually present after the header.
        got: usize,
        /// Bytes the opcode's body requires.
        want: usize,
    },
    /// Body longer than the opcode allows.
    TrailingBytes(u8),
    /// Unknown error code in an `Error` response.
    BadErrorCode(u8),
    /// Length word over [`MAX_FRAME`] or under [`HEADER_LEN`].
    BadLength(usize),
    /// A length-prefixed string field was not valid UTF-8.
    BadString(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TooShort(n) => write!(f, "payload of {n} bytes is shorter than the header"),
            WireError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Truncated { opcode, got, want } => {
                write!(f, "opcode {opcode:#04x} body truncated: {got} of {want} bytes")
            }
            WireError::TrailingBytes(op) => write!(f, "opcode {op:#04x} carries trailing bytes"),
            WireError::BadErrorCode(c) => write!(f, "unknown error code {c}"),
            WireError::BadLength(n) => write!(f, "frame length {n} out of range"),
            WireError::BadString(op) => {
                write!(f, "opcode {op:#04x} carries a non-UTF-8 string field")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

fn put_header(out: &mut Vec<u8>, version: u8, opcode: u8, seq: u32, body_len: usize) {
    let len = (HEADER_LEN + body_len) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(version);
    out.push(opcode);
    out.extend_from_slice(&seq.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (`u16 LE` length + bytes).
fn put_string(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string, returning it and the rest.
fn take_string(opcode: u8, body: &[u8]) -> Result<(String, &[u8]), WireError> {
    if body.len() < 2 {
        return Err(WireError::Truncated { opcode, got: body.len(), want: 2 });
    }
    let len = u16::from_le_bytes(body[..2].try_into().expect("2 bytes")) as usize;
    if body.len() < 2 + len {
        return Err(WireError::Truncated { opcode, got: body.len(), want: 2 + len });
    }
    let s = std::str::from_utf8(&body[2..2 + len])
        .map_err(|_| WireError::BadString(opcode))?
        .to_string();
    Ok((s, &body[2 + len..]))
}

/// Splits a decoded payload into `(seq, version, opcode, body)`, checking
/// the version range and header length. Cluster opcodes (`0x06..` /
/// `0x87..`) additionally require version 2, enforced by the decoders.
fn split_payload(payload: &[u8]) -> Result<(u32, u8, u8, &[u8]), WireError> {
    if payload.len() < HEADER_LEN {
        return Err(WireError::TooShort(payload.len()));
    }
    if !(MIN_VERSION..=VERSION).contains(&payload[0]) {
        return Err(WireError::BadVersion(payload[0]));
    }
    let seq = u32::from_le_bytes(payload[2..6].try_into().expect("4 bytes"));
    Ok((seq, payload[0], payload[1], &payload[HEADER_LEN..]))
}

fn body_exactly(opcode: u8, body: &[u8], want: usize) -> Result<(), WireError> {
    match body.len().cmp(&want) {
        std::cmp::Ordering::Less => {
            Err(WireError::Truncated { opcode, got: body.len(), want })
        }
        std::cmp::Ordering::Greater => Err(WireError::TrailingBytes(opcode)),
        std::cmp::Ordering::Equal => Ok(()),
    }
}

impl Request {
    /// Appends the full frame (length prefix included) to `out`, stamped
    /// with the current [`VERSION`].
    pub fn encode(&self, seq: u32, out: &mut Vec<u8>) {
        match self {
            Request::Next => put_header(out, VERSION, 0x01, seq, 0),
            Request::NextBatch { n } => {
                put_header(out, VERSION, 0x02, seq, 4);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Request::Ping => put_header(out, VERSION, 0x03, seq, 0),
            Request::Stats => put_header(out, VERSION, 0x04, seq, 0),
            Request::Shutdown => put_header(out, VERSION, 0x05, seq, 0),
            Request::Forward { token, port, node_seq } => {
                put_header(out, VERSION, 0x06, seq, 16);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&port.to_le_bytes());
                out.extend_from_slice(&node_seq.to_le_bytes());
            }
            Request::ForwardBatch { token, port, node_seq, n } => {
                put_header(out, VERSION, 0x07, seq, 20);
                out.extend_from_slice(&token.to_le_bytes());
                out.extend_from_slice(&port.to_le_bytes());
                out.extend_from_slice(&node_seq.to_le_bytes());
                out.extend_from_slice(&n.to_le_bytes());
            }
            Request::NodeInfo => put_header(out, VERSION, 0x08, seq, 0),
            Request::Announce { node, head } => {
                put_header(out, VERSION, 0x09, seq, 4 + 2 + head.len());
                out.extend_from_slice(&node.to_le_bytes());
                put_string(out, head);
            }
            Request::Trace { max } => {
                put_header(out, VERSION, 0x0A, seq, 4);
                out.extend_from_slice(&max.to_le_bytes());
            }
            Request::Frontier { shard, max } => {
                put_header(out, VERSION, 0x0B, seq, 8);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
        }
    }

    /// Decodes a request from a frame payload (length prefix already
    /// stripped), returning the sequence number alongside. Accepts any
    /// version in `MIN_VERSION..=VERSION`; see [`Request::decode_versioned`]
    /// to learn which one arrived.
    ///
    /// # Errors
    ///
    /// Any structural defect is a [`WireError`].
    pub fn decode(payload: &[u8]) -> Result<(u32, Request), WireError> {
        let (seq, _, req) = Request::decode_versioned(payload)?;
        Ok((seq, req))
    }

    /// Like [`Request::decode`], but also returns the frame's protocol
    /// version so a server can answer an old client in its own dialect.
    ///
    /// # Errors
    ///
    /// Any structural defect is a [`WireError`]; a cluster opcode inside a
    /// version-1 frame is [`WireError::BadOpcode`].
    pub fn decode_versioned(payload: &[u8]) -> Result<(u32, u8, Request), WireError> {
        let (seq, version, opcode, body) = split_payload(payload)?;
        if version < 2 && opcode > 0x05 {
            return Err(WireError::BadOpcode(opcode));
        }
        let req = match opcode {
            0x01 => {
                body_exactly(opcode, body, 0)?;
                Request::Next
            }
            0x02 => {
                body_exactly(opcode, body, 4)?;
                Request::NextBatch { n: u32::from_le_bytes(body.try_into().expect("4 bytes")) }
            }
            0x03 => {
                body_exactly(opcode, body, 0)?;
                Request::Ping
            }
            0x04 => {
                body_exactly(opcode, body, 0)?;
                Request::Stats
            }
            0x05 => {
                body_exactly(opcode, body, 0)?;
                Request::Shutdown
            }
            0x06 => {
                body_exactly(opcode, body, 16)?;
                Request::Forward {
                    token: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                    port: u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")),
                    node_seq: u32::from_le_bytes(body[12..16].try_into().expect("4 bytes")),
                }
            }
            0x07 => {
                body_exactly(opcode, body, 20)?;
                Request::ForwardBatch {
                    token: u64::from_le_bytes(body[..8].try_into().expect("8 bytes")),
                    port: u32::from_le_bytes(body[8..12].try_into().expect("4 bytes")),
                    node_seq: u32::from_le_bytes(body[12..16].try_into().expect("4 bytes")),
                    n: u32::from_le_bytes(body[16..20].try_into().expect("4 bytes")),
                }
            }
            0x08 => {
                body_exactly(opcode, body, 0)?;
                Request::NodeInfo
            }
            0x09 => {
                if body.len() < 4 {
                    return Err(WireError::Truncated { opcode, got: body.len(), want: 4 });
                }
                let node = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
                let (head, rest) = take_string(opcode, &body[4..])?;
                if !rest.is_empty() {
                    return Err(WireError::TrailingBytes(opcode));
                }
                Request::Announce { node, head }
            }
            0x0A => {
                body_exactly(opcode, body, 4)?;
                Request::Trace { max: u32::from_le_bytes(body.try_into().expect("4 bytes")) }
            }
            0x0B => {
                body_exactly(opcode, body, 8)?;
                Request::Frontier {
                    shard: u32::from_le_bytes(body[..4].try_into().expect("4 bytes")),
                    max: u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")),
                }
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        Ok((seq, version, req))
    }
}

impl Response {
    /// Appends the full frame (length prefix included) to `out`, stamped
    /// with the current [`VERSION`].
    pub fn encode(&self, seq: u32, out: &mut Vec<u8>) {
        self.encode_versioned(seq, VERSION, out);
    }

    /// Appends the full frame stamped with `version` — the negotiation
    /// half of version tolerance: a server answers a request in the
    /// dialect the request arrived in, so a v1 client gets v1 responses.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a cluster-only response is stamped with
    /// a pre-cluster version; a correct server never produces one for a
    /// v1 request.
    pub fn encode_versioned(&self, seq: u32, version: u8, out: &mut Vec<u8>) {
        debug_assert!(
            version >= 2
                || !matches!(
                    self,
                    Response::NodeInfo(_) | Response::Trace { .. } | Response::Frontier { .. }
                ),
            "cluster response in a v{version} frame"
        );
        match self {
            Response::Value { value } => {
                put_header(out, version, 0x81, seq, 8);
                out.extend_from_slice(&value.to_le_bytes());
            }
            Response::Batch { values } => {
                put_header(out, version, 0x82, seq, 4 + 8 * values.len());
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Response::Pong => put_header(out, version, 0x83, seq, 0),
            Response::Stats(s) => {
                put_header(out, version, 0x84, seq, 72);
                for word in [
                    s.active_connections,
                    s.total_connections,
                    s.rejected_connections,
                    s.requests,
                    s.ops,
                    s.batches,
                    s.deferred_accepts,
                    s.reactor_wakeups,
                    s.reactor_events,
                ] {
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
            Response::Bye => put_header(out, version, 0x85, seq, 0),
            Response::Error(code) => {
                put_header(out, version, 0x86, seq, 1);
                out.push(*code as u8);
            }
            Response::NodeInfo(info) => {
                put_header(out, version, 0x87, seq, 16 + 2 + info.head.len());
                for word in [info.node, info.nodes, info.fan, info.shards] {
                    out.extend_from_slice(&word.to_le_bytes());
                }
                put_string(out, &info.head);
            }
            Response::Trace { events } => {
                put_header(out, version, 0x88, seq, 4 + TRACE_EVENT_LEN * events.len());
                out.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for e in events {
                    out.extend_from_slice(&e.shard.to_le_bytes());
                    out.extend_from_slice(&e.enter_ns.to_le_bytes());
                    out.extend_from_slice(&e.exit_ns.to_le_bytes());
                    out.extend_from_slice(&e.value.to_le_bytes());
                }
            }
            Response::Frontier { frontier: f } => {
                put_header(
                    out,
                    version,
                    0x89,
                    seq,
                    FRONTIER_HEADER_LEN + FRONTIER_OP_LEN * f.ops.len(),
                );
                out.extend_from_slice(&(f.shard as u32).to_le_bytes());
                out.push(u8::from(f.finished) | (u8::from(f.watermark.is_some()) << 1));
                out.extend_from_slice(&f.watermark.unwrap_or(0).to_le_bytes());
                out.extend_from_slice(&f.dropped.to_le_bytes());
                out.extend_from_slice(&f.skipped.to_le_bytes());
                out.extend_from_slice(&(f.candidate_non_lin as u64).to_le_bytes());
                out.extend_from_slice(&(f.non_sc as u64).to_le_bytes());
                out.extend_from_slice(&f.qqc_floor.to_le_bytes());
                out.extend_from_slice(&f.candidate_qqc_max.to_le_bytes());
                out.extend_from_slice(&(f.ops.len() as u32).to_le_bytes());
                for op in &f.ops {
                    out.extend_from_slice(&(op.process as u32).to_le_bytes());
                    out.extend_from_slice(&op.enter_ns.to_le_bytes());
                    out.extend_from_slice(&op.exit_ns.to_le_bytes());
                    out.extend_from_slice(&op.value.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a response from a frame payload, returning the echoed
    /// sequence number alongside. Accepts any version in
    /// `MIN_VERSION..=VERSION`.
    ///
    /// # Errors
    ///
    /// Any structural defect is a [`WireError`]; a cluster opcode inside a
    /// version-1 frame is [`WireError::BadOpcode`].
    pub fn decode(payload: &[u8]) -> Result<(u32, Response), WireError> {
        let (seq, version, opcode, body) = split_payload(payload)?;
        if version < 2 && opcode > 0x86 {
            return Err(WireError::BadOpcode(opcode));
        }
        let resp = match opcode {
            0x81 => {
                body_exactly(opcode, body, 8)?;
                Response::Value { value: u64::from_le_bytes(body.try_into().expect("8 bytes")) }
            }
            0x82 => {
                if body.len() < 4 {
                    return Err(WireError::Truncated { opcode, got: body.len(), want: 4 });
                }
                let n = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
                body_exactly(opcode, &body[4..], 8 * n)?;
                let values = body[4..]
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect();
                Response::Batch { values }
            }
            0x83 => {
                body_exactly(opcode, body, 0)?;
                Response::Pong
            }
            0x84 => {
                body_exactly(opcode, body, 72)?;
                let word = |i: usize| {
                    u64::from_le_bytes(body[8 * i..8 * (i + 1)].try_into().expect("8 bytes"))
                };
                Response::Stats(StatsSnapshot {
                    active_connections: word(0),
                    total_connections: word(1),
                    rejected_connections: word(2),
                    requests: word(3),
                    ops: word(4),
                    batches: word(5),
                    deferred_accepts: word(6),
                    reactor_wakeups: word(7),
                    reactor_events: word(8),
                })
            }
            0x85 => {
                body_exactly(opcode, body, 0)?;
                Response::Bye
            }
            0x86 => {
                body_exactly(opcode, body, 1)?;
                Response::Error(ErrorCode::from_byte(body[0])?)
            }
            0x87 => {
                if body.len() < 16 {
                    return Err(WireError::Truncated { opcode, got: body.len(), want: 16 });
                }
                let word = |i: usize| {
                    u32::from_le_bytes(body[4 * i..4 * (i + 1)].try_into().expect("4 bytes"))
                };
                let (head, rest) = take_string(opcode, &body[16..])?;
                if !rest.is_empty() {
                    return Err(WireError::TrailingBytes(opcode));
                }
                Response::NodeInfo(NodeInfo {
                    node: word(0),
                    nodes: word(1),
                    fan: word(2),
                    shards: word(3),
                    head,
                })
            }
            0x88 => {
                if body.len() < 4 {
                    return Err(WireError::Truncated { opcode, got: body.len(), want: 4 });
                }
                let n = u32::from_le_bytes(body[..4].try_into().expect("4 bytes")) as usize;
                body_exactly(opcode, &body[4..], TRACE_EVENT_LEN * n)?;
                let events = body[4..]
                    .chunks_exact(TRACE_EVENT_LEN)
                    .map(|c| TraceEvent {
                        shard: u32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                        enter_ns: u64::from_le_bytes(c[4..12].try_into().expect("8 bytes")),
                        exit_ns: u64::from_le_bytes(c[12..20].try_into().expect("8 bytes")),
                        value: u64::from_le_bytes(c[20..28].try_into().expect("8 bytes")),
                    })
                    .collect();
                Response::Trace { events }
            }
            0x89 => {
                if body.len() < FRONTIER_HEADER_LEN {
                    return Err(WireError::Truncated {
                        opcode,
                        got: body.len(),
                        want: FRONTIER_HEADER_LEN,
                    });
                }
                let u64_at = |i: usize| {
                    u64::from_le_bytes(body[i..i + 8].try_into().expect("8 bytes"))
                };
                let shard = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
                let flags = body[4];
                let n = u32::from_le_bytes(
                    body[FRONTIER_HEADER_LEN - 4..FRONTIER_HEADER_LEN]
                        .try_into()
                        .expect("4 bytes"),
                ) as usize;
                body_exactly(opcode, &body[FRONTIER_HEADER_LEN..], FRONTIER_OP_LEN * n)?;
                let ops = body[FRONTIER_HEADER_LEN..]
                    .chunks_exact(FRONTIER_OP_LEN)
                    .map(|c| RawOp {
                        process: u32::from_le_bytes(c[..4].try_into().expect("4 bytes"))
                            as usize,
                        enter_ns: u64::from_le_bytes(c[4..12].try_into().expect("8 bytes")),
                        exit_ns: u64::from_le_bytes(c[12..20].try_into().expect("8 bytes")),
                        value: u64::from_le_bytes(c[20..28].try_into().expect("8 bytes")),
                    })
                    .collect();
                Response::Frontier {
                    frontier: ShardFrontier {
                        shard: shard as usize,
                        ops,
                        watermark: (flags & 0b10 != 0).then(|| u64_at(5)),
                        finished: flags & 0b01 != 0,
                        dropped: u64_at(13),
                        skipped: u64_at(21),
                        candidate_non_lin: u64_at(29) as usize,
                        non_sc: u64_at(37) as usize,
                        qqc_floor: u64_at(45),
                        candidate_qqc_max: u64_at(53),
                    },
                }
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        Ok((seq, resp))
    }
}

/// Reads one frame's payload into `buf` (resized to fit), returning `None`
/// on a clean end-of-stream at a frame boundary.
///
/// # Errors
///
/// I/O failures pass through; an out-of-range length word or a stream cut
/// mid-frame is `InvalidData`/`UnexpectedEof`.
pub fn read_frame<'a>(
    r: &mut impl Read,
    buf: &'a mut Vec<u8>,
) -> io::Result<Option<&'a [u8]>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte is a closed connection, not an
    // error; EOF mid-prefix or mid-payload is a cut frame.
    match r.read(&mut len_bytes[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len_bytes[1..])?,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
        return Err(WireError::BadLength(len).into());
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(Some(buf.as_slice()))
}

/// An incremental, resumable frame decoder for nonblocking streams.
///
/// The blocking [`read_frame`] can simply block until a whole frame has
/// arrived; a reactor cannot. A `FrameDecoder` accepts whatever bytes a
/// nonblocking read produced ([`FrameDecoder::extend`]) and yields
/// complete frame payloads as they materialize
/// ([`FrameDecoder::next_frame`]), preserving partial frames across calls
/// — byte streams may be split at **any** boundary, including inside the
/// length prefix. Each payload is yielded exactly once: the cursor
/// advances before the payload is returned, so re-polling never
/// duplicates a frame.
///
/// Length words outside `HEADER_LEN..=MAX_FRAME` are corruption
/// ([`WireError::BadLength`]); after an error the stream has no
/// trustworthy framing left, so callers should drop the connection
/// (repeated polls keep returning the same error rather than resyncing).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Buffered bytes; `start..` is the unconsumed region.
    buf: Vec<u8>,
    start: usize,
}

/// Consumed-prefix size beyond which `next_frame` compacts the buffer on
/// a partial frame, bounding memory at ~one frame plus this slack.
const COMPACT_THRESHOLD: usize = 4096;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a yielded frame. Zero means
    /// the stream is at a frame boundary — the state in which a peer EOF
    /// is a clean close rather than a cut frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame payload, or `None` if more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// An out-of-range length word is [`WireError::BadLength`].
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.start..self.start + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        if !(HEADER_LEN..=MAX_FRAME).contains(&len) {
            return Err(WireError::BadLength(len));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let payload_start = self.start + 4;
        self.start += 4 + len;
        Ok(Some(&self.buf[payload_start..payload_start + len]))
    }

    /// Reclaims the consumed prefix. Free when everything was consumed
    /// (a truncate); otherwise a copy, paid only past a slack threshold
    /// so steady-state polling stays amortized O(bytes).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Encodes and writes one request frame (no flush).
///
/// # Errors
///
/// I/O failures pass through.
pub fn write_request(w: &mut impl Write, seq: u32, req: &Request) -> io::Result<()> {
    let mut frame = Vec::with_capacity(HEADER_LEN + 8);
    req.encode(seq, &mut frame);
    w.write_all(&frame)
}

/// Encodes and writes one response frame (no flush).
///
/// # Errors
///
/// I/O failures pass through.
pub fn write_response(w: &mut impl Write, seq: u32, resp: &Response) -> io::Result<()> {
    let mut frame = Vec::with_capacity(HEADER_LEN + 16);
    resp.encode(seq, &mut frame);
    w.write_all(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Next,
            Request::NextBatch { n: 1 },
            Request::NextBatch { n: MAX_BATCH },
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Forward { token: 7, port: 3, node_seq: 1 },
            Request::ForwardBatch { token: u64::MAX, port: 0, node_seq: 2, n: 64 },
            Request::NodeInfo,
            Request::Announce { node: 0, head: String::new() },
            Request::Announce { node: 1, head: "127.0.0.1:4040".to_string() },
            Request::Trace { max: MAX_TRACE_EVENTS },
            Request::Frontier { shard: 3, max: MAX_FRONTIER_OPS },
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Value { value: 0 },
            Response::Value { value: u64::MAX },
            Response::Batch { values: vec![] },
            Response::Batch { values: vec![7, 8, 9] },
            Response::Pong,
            Response::Stats(StatsSnapshot {
                active_connections: 1,
                total_connections: 2,
                rejected_connections: 3,
                requests: 4,
                ops: 5,
                batches: 6,
                deferred_accepts: 7,
                reactor_wakeups: 8,
                reactor_events: 9,
            }),
            Response::Bye,
            Response::Error(ErrorCode::Busy),
            Response::Error(ErrorCode::Cluster),
            Response::NodeInfo(NodeInfo {
                node: 1,
                nodes: 2,
                fan: 8,
                shards: 4,
                head: "127.0.0.1:9000".to_string(),
            }),
            Response::NodeInfo(NodeInfo::default()),
            Response::Trace { events: vec![] },
            Response::Trace {
                events: vec![
                    TraceEvent { shard: 0, enter_ns: 10, exit_ns: 20, value: 0 },
                    TraceEvent { shard: 3, enter_ns: 15, exit_ns: 35, value: 1 },
                ],
            },
            Response::Frontier { frontier: ShardFrontier::default() },
            Response::Frontier {
                frontier: ShardFrontier {
                    shard: 5,
                    ops: vec![
                        RawOp { process: 5, enter_ns: 10, exit_ns: 20, value: 3 },
                        RawOp { process: 5, enter_ns: 15, exit_ns: 35, value: 1 },
                    ],
                    watermark: Some(15),
                    finished: true,
                    dropped: 2,
                    skipped: 40,
                    candidate_non_lin: 1,
                    non_sc: 1,
                    qqc_floor: 4,
                    candidate_qqc_max: 2,
                },
            },
        ]
    }

    /// Strips the length prefix after checking it matches the payload.
    fn payload(frame: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        &frame[4..]
    }

    #[test]
    fn requests_round_trip() {
        for (i, req) in requests().into_iter().enumerate() {
            let seq = 1000 + i as u32;
            let mut frame = Vec::new();
            req.encode(seq, &mut frame);
            let (got_seq, got) = Request::decode(payload(&frame)).unwrap();
            assert_eq!((got_seq, got), (seq, req));
        }
    }

    #[test]
    fn responses_round_trip() {
        for (i, resp) in responses().into_iter().enumerate() {
            let seq = 77 + i as u32;
            let mut frame = Vec::new();
            resp.encode(seq, &mut frame);
            let (got_seq, got) = Response::decode(payload(&frame)).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        for req in requests() {
            let mut frame = Vec::new();
            req.encode(9, &mut frame);
            let p = payload(&frame).to_vec();
            // Every strict prefix of the payload fails to decode.
            for cut in 0..p.len() {
                assert!(Request::decode(&p[..cut]).is_err(), "{req:?} cut at {cut}");
            }
        }
        for resp in responses() {
            let mut frame = Vec::new();
            resp.encode(9, &mut frame);
            let p = payload(&frame).to_vec();
            for cut in 0..p.len() {
                assert!(Response::decode(&p[..cut]).is_err(), "{resp:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let mut frame = Vec::new();
        Request::Next.encode(3, &mut frame);
        let mut p = payload(&frame).to_vec();
        p[0] = 99; // version
        assert_eq!(Request::decode(&p), Err(WireError::BadVersion(99)));
        p[0] = VERSION;
        p[1] = 0x7f; // opcode
        assert_eq!(Request::decode(&p), Err(WireError::BadOpcode(0x7f)));
        // A request opcode is not a response and vice versa.
        p[1] = 0x01;
        assert_eq!(Response::decode(&p), Err(WireError::BadOpcode(0x01)));
        let mut rframe = Vec::new();
        Response::Pong.encode(3, &mut rframe);
        assert_eq!(
            Request::decode(payload(&rframe)),
            Err(WireError::BadOpcode(0x83))
        );
    }

    /// Hand-builds a version-1 payload (no length prefix): the bytes a
    /// pre-cluster client actually emits.
    fn v1_payload(opcode: u8, seq: u32, body: &[u8]) -> Vec<u8> {
        let mut p = vec![1u8, opcode];
        p.extend_from_slice(&seq.to_le_bytes());
        p.extend_from_slice(body);
        p
    }

    #[test]
    fn v1_frames_still_decode_for_the_legacy_opcode_set() {
        assert_eq!(
            Request::decode_versioned(&v1_payload(0x03, 41, &[])),
            Ok((41, 1, Request::Ping))
        );
        assert_eq!(
            Request::decode_versioned(&v1_payload(0x02, 9, &5u32.to_le_bytes())),
            Ok((9, 1, Request::NextBatch { n: 5 }))
        );
        assert_eq!(
            Response::decode(&v1_payload(0x81, 9, &7u64.to_le_bytes())),
            Ok((9, Response::Value { value: 7 }))
        );
    }

    #[test]
    fn v1_frames_reject_cluster_opcodes() {
        let body = [0u8; 16];
        assert_eq!(
            Request::decode(&v1_payload(0x06, 1, &body)),
            Err(WireError::BadOpcode(0x06))
        );
        assert_eq!(
            Request::decode(&v1_payload(0x08, 1, &[])),
            Err(WireError::BadOpcode(0x08))
        );
        assert_eq!(
            Response::decode(&v1_payload(0x88, 1, &0u32.to_le_bytes())),
            Err(WireError::BadOpcode(0x88))
        );
    }

    #[test]
    fn responses_can_echo_the_request_version() {
        let mut out = Vec::new();
        Response::Pong.encode_versioned(4, 1, &mut out);
        assert_eq!(out[4], 1, "version byte echoes the request's");
        let (seq, resp) = Response::decode(payload(&out)).unwrap();
        assert_eq!((seq, resp), (4, Response::Pong));
        // The default stamp is the current version.
        let mut out2 = Vec::new();
        Response::Pong.encode(4, &mut out2);
        assert_eq!(out2[4], VERSION);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = Vec::new();
        Request::Ping.encode(1, &mut frame);
        let mut p = payload(&frame).to_vec();
        p.push(0);
        assert_eq!(Request::decode(&p), Err(WireError::TrailingBytes(0x03)));
        let mut rframe = Vec::new();
        Response::Value { value: 4 }.encode(1, &mut rframe);
        let mut rp = payload(&rframe).to_vec();
        rp.extend_from_slice(&[0, 0]);
        assert_eq!(Response::decode(&rp), Err(WireError::TrailingBytes(0x81)));
    }

    #[test]
    fn batch_length_must_match_count() {
        let mut frame = Vec::new();
        Response::Batch { values: vec![1, 2] }.encode(5, &mut frame);
        let mut p = payload(&frame).to_vec();
        // Claim 3 values while carrying 2.
        p[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(
            Response::decode(&p),
            Err(WireError::Truncated { opcode: 0x82, .. })
        ));
    }

    #[test]
    fn bad_error_codes_are_rejected() {
        let mut frame = Vec::new();
        Response::Error(ErrorCode::Malformed).encode(2, &mut frame);
        let mut p = payload(&frame).to_vec();
        *p.last_mut().unwrap() = 250;
        assert_eq!(Response::decode(&p), Err(WireError::BadErrorCode(250)));
    }

    #[test]
    fn frame_reader_round_trips_and_bounds_lengths() {
        let mut bytes = Vec::new();
        Request::NextBatch { n: 3 }.encode(1, &mut bytes);
        Request::Shutdown.encode(2, &mut bytes);
        let mut cursor = io::Cursor::new(bytes);
        let mut buf = Vec::new();
        let p1 = read_frame(&mut cursor, &mut buf).unwrap().unwrap().to_vec();
        assert_eq!(Request::decode(&p1).unwrap(), (1, Request::NextBatch { n: 3 }));
        let p2 = read_frame(&mut cursor, &mut buf).unwrap().unwrap().to_vec();
        assert_eq!(Request::decode(&p2).unwrap(), (2, Request::Shutdown));
        assert!(read_frame(&mut cursor, &mut buf).unwrap().is_none()); // clean EOF

        // Oversized length word: rejected before any allocation attempt.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        assert_eq!(
            read_frame(&mut cursor, &mut buf).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Undersized too (a length that cannot hold the header).
        let tiny = 2u32.to_le_bytes();
        let mut cursor = io::Cursor::new(tiny.to_vec());
        assert_eq!(
            read_frame(&mut cursor, &mut buf).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // A stream cut mid-payload is UnexpectedEof, not a clean close.
        let mut bytes = Vec::new();
        Request::Next.encode(7, &mut bytes);
        bytes.truncate(bytes.len() - 2);
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cursor, &mut buf).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn frame_decoder_yields_each_frame_exactly_once_across_any_split() {
        // A stream of four frames of different shapes.
        let mut stream = Vec::new();
        Request::Next.encode(1, &mut stream);
        Request::NextBatch { n: 9 }.encode(2, &mut stream);
        Request::Stats.encode(3, &mut stream);
        Request::Shutdown.encode(4, &mut stream);
        let expect = [
            (1, Request::Next),
            (2, Request::NextBatch { n: 9 }),
            (3, Request::Stats),
            (4, Request::Shutdown),
        ];
        // Feed in every possible 2-way split, plus byte-by-byte.
        let mut splits: Vec<Vec<&[u8]>> =
            (0..=stream.len()).map(|cut| vec![&stream[..cut], &stream[cut..]]).collect();
        splits.push(stream.chunks(1).collect());
        for chunks in splits {
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for chunk in chunks {
                dec.extend(chunk);
                while let Some(p) = dec.next_frame().unwrap() {
                    got.push(Request::decode(p).unwrap());
                }
            }
            assert_eq!(got, expect, "split delivery changed the frame stream");
            assert_eq!(dec.buffered(), 0, "stream must end at a frame boundary");
        }
    }

    #[test]
    fn frame_decoder_rejects_bad_length_words_and_stays_put() {
        for bad in [0u32, 1, (HEADER_LEN - 1) as u32, (MAX_FRAME + 1) as u32] {
            let mut dec = FrameDecoder::new();
            dec.extend(&bad.to_le_bytes());
            dec.extend(&[0; 8]);
            assert_eq!(dec.next_frame(), Err(WireError::BadLength(bad as usize)));
            // The error is sticky: no resync is attempted.
            assert_eq!(dec.next_frame(), Err(WireError::BadLength(bad as usize)));
        }
    }

    #[test]
    fn frame_decoder_reports_mid_frame_state() {
        let mut stream = Vec::new();
        Request::Ping.encode(8, &mut stream);
        let mut dec = FrameDecoder::new();
        dec.extend(&stream[..stream.len() - 1]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(dec.buffered() > 0, "mid-frame EOF must be detectable");
        dec.extend(&stream[stream.len() - 1..]);
        let p = dec.next_frame().unwrap().unwrap();
        assert_eq!(Request::decode(p).unwrap(), (8, Request::Ping));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_compacts_without_losing_data() {
        // Push enough consumed frames to cross the compaction threshold,
        // interleaved with partial-frame polls, and check nothing skews.
        let mut one = Vec::new();
        Request::NextBatch { n: 5 }.encode(0, &mut one);
        let mut dec = FrameDecoder::new();
        let rounds = 4096 / one.len() + 8;
        for i in 0..rounds {
            // Half the frame, poll (forces the partial-frame path), rest.
            let cut = one.len() / 2;
            dec.extend(&one[..cut]);
            assert!(dec.next_frame().unwrap().is_none());
            dec.extend(&one[cut..]);
            let p = dec.next_frame().unwrap().expect("complete frame");
            assert_eq!(
                Request::decode(p).unwrap(),
                (0, Request::NextBatch { n: 5 }),
                "round {i}"
            );
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn write_helpers_emit_parseable_frames() {
        let mut out = Vec::new();
        write_request(&mut out, 5, &Request::Ping).unwrap();
        write_response(&mut out, 5, &Response::Pong).unwrap();
        let mut cursor = io::Cursor::new(out);
        let mut buf = Vec::new();
        let p = read_frame(&mut cursor, &mut buf).unwrap().unwrap().to_vec();
        assert_eq!(Request::decode(&p).unwrap(), (5, Request::Ping));
        let p = read_frame(&mut cursor, &mut buf).unwrap().unwrap().to_vec();
        assert_eq!(Response::decode(&p).unwrap(), (5, Response::Pong));
    }
}
