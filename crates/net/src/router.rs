//! The cluster router: one node's share of a partitioned counting
//! network, plus the peer link that carries tokens to the next node.
//!
//! # The fabric
//!
//! A [`Partition`] plan splits a uniform network's layers across `N`
//! nodes, node `k` owning a contiguous layer range. Each node compiles
//! only its own sub-network ([`Partition::sub_network`]); the cut between
//! node `k` and node `k+1` is `w` wires wide (the network fan), and a
//! token leaving node `k` on cut position `p` enters node `k+1` on source
//! `p` — both sides derive the cut from the same whole-network plan, so
//! no port translation table ever crosses the wire.
//!
//! A client operation enters at the **head** (node 0), traverses the
//! head's layers, and is forwarded ([`Request::Forward`]) hop by hop down
//! the chain; the **tail** (node `N-1`) owns the output counters and the
//! value flows back along the reverse path, one nested response per hop.
//! Forwarding is strictly downstream — node `k` only ever blocks on node
//! `k+1`, and the tail blocks on nobody — so the linear chain cannot
//! deadlock.
//!
//! # Exactly-once counting
//!
//! The never-retry rule of [`crate::client`] applies per hop: once a
//! `Forward` frame has been written the hop is never resent (the token
//! may already be counted downstream), the peer connection is torn down,
//! and the failure propagates back to the client as
//! [`ErrorCode::Cluster`](crate::wire::ErrorCode::Cluster). Dialing —
//! before anything is sent — retries freely.

use crate::client::response_error;
use crate::wire::{read_frame, write_request, Request, Response};
use cnet_core::trace::{MergeAuditor, ShardFrontier};
use cnet_runtime::{CompiledNetwork, ProcessCounter, SharedNetworkCounter};
use cnet_topology::{Network, Partition, PartitionError};
use cnet_util::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use cnet_util::sync::{CachePadded, Mutex};
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a cluster node could not be assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The partition plan itself was rejected.
    Partition(PartitionError),
    /// The node index is outside `0..nodes`.
    BadNode {
        /// The offending index.
        node: usize,
        /// The chain length.
        nodes: usize,
    },
    /// A non-tail node was given no downstream peer address.
    MissingPeer {
        /// The node that needs a peer.
        node: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Partition(e) => write!(f, "partition plan rejected: {e}"),
            ClusterError::BadNode { node, nodes } => {
                write!(f, "node {node} out of range for a {nodes}-node chain")
            }
            ClusterError::MissingPeer { node } => {
                write!(f, "node {node} is not the tail and needs a --peers address")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<PartitionError> for ClusterError {
    fn from(e: PartitionError) -> ClusterError {
        ClusterError::Partition(e)
    }
}

/// One blocking connection to a downstream peer.
struct PeerConn {
    stream: TcpStream,
    buf: Vec<u8>,
    seq: u32,
}

impl PeerConn {
    fn dial(addr: &str) -> io::Result<PeerConn> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "peer address resolved to nothing")
        })?;
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PeerConn { stream, buf: Vec::new(), seq: 0 })
    }

    /// Sends every request, then reads every response, matching sequence
    /// numbers in order — one write burst per hop even when a batched
    /// traversal fans out over several cut positions.
    fn calls(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let mut out = Vec::new();
        let first = self.seq;
        for req in reqs {
            write_request(&mut out, self.seq, req)?;
            self.seq = self.seq.wrapping_add(1);
        }
        self.stream.write_all(&out)?;
        let mut resps = Vec::with_capacity(reqs.len());
        for i in 0..reqs.len() {
            let expect = first.wrapping_add(i as u32);
            let payload = read_frame(&mut self.stream, &mut self.buf)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed mid-conversation")
            })?;
            let (seq, resp) = Response::decode(payload)?;
            if seq != expect {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("peer sequence mismatch: sent {expect}, got {seq}"),
                ));
            }
            resps.push(resp);
        }
        Ok(resps)
    }
}

/// A pooled client for one downstream node: `lanes` independent
/// connections so concurrent reactor threads (or slots) never share a
/// stream. Lane `l` maps to slot `l % lanes`. Dialing retries with
/// backoff; a failure after a request has been written tears the lane
/// down without resending (see the module docs).
pub struct RemoteNode {
    addr: String,
    lanes: Box<[CachePadded<Mutex<Option<PeerConn>>>]>,
}

impl fmt::Debug for RemoteNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteNode")
            .field("addr", &self.addr)
            .field("lanes", &self.lanes.len())
            .finish()
    }
}

/// Dial attempts per peer call (nothing has been sent yet, so retrying
/// is safe) and the first backoff, doubled per attempt.
const PEER_DIAL_ATTEMPTS: u32 = 20;
const PEER_DIAL_BACKOFF: Duration = Duration::from_millis(5);

impl RemoteNode {
    /// A pool of `lanes` connection slots toward `addr` (dialed lazily).
    pub fn new(addr: String, lanes: usize) -> RemoteNode {
        RemoteNode {
            addr,
            lanes: (0..lanes.max(1)).map(|_| CachePadded::new(Mutex::new(None))).collect(),
        }
    }

    /// The downstream address this link dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Runs one pipelined conversation on `lane`'s connection.
    fn with_lane<T>(
        &self,
        lane: usize,
        f: impl FnOnce(&mut PeerConn) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut slot = self.lanes[lane % self.lanes.len()].lock();
        if slot.is_none() {
            let mut backoff = PEER_DIAL_BACKOFF;
            let mut last = None;
            for attempt in 0..PEER_DIAL_ATTEMPTS {
                match PeerConn::dial(&self.addr) {
                    Ok(conn) => {
                        *slot = Some(conn);
                        break;
                    }
                    Err(e) => {
                        last = Some(e);
                        if attempt + 1 < PEER_DIAL_ATTEMPTS {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(PEER_DIAL_BACKOFF * 100);
                        }
                    }
                }
            }
            if slot.is_none() {
                return Err(last.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, "peer dial failed")
                }));
            }
        }
        let conn = slot.as_mut().expect("dialed above");
        let result = f(conn);
        if result.is_err() {
            *slot = None; // never resend on a torn conversation
        }
        result
    }

    /// One request, one response, on `lane`.
    pub fn call(&self, lane: usize, req: &Request) -> io::Result<Response> {
        self.with_lane(lane, |conn| {
            Ok(conn.calls(std::slice::from_ref(req))?.pop().expect("one response"))
        })
    }

    /// Pipelines `reqs` on `lane` and returns the responses in order.
    pub fn call_many(&self, lane: usize, reqs: &[Request]) -> io::Result<Vec<Response>> {
        self.with_lane(lane, |conn| conn.calls(reqs))
    }
}

/// A node's executable share of the network: relay nodes traverse and
/// forward, the tail traverses and counts.
enum StageKind {
    /// Nodes `0..N-1`: balancer layers only; exits cross the cut.
    Relay {
        engine: CompiledNetwork,
        balancers: Box<[CachePadded<AtomicUsize>]>,
    },
    /// Node `N-1`: balancer layers plus the output counters.
    Tail { counter: SharedNetworkCounter },
}

/// One process of the counting fabric: node `node` of an `N`-node chain
/// over a partitioned network, holding its compiled layer range and (on
/// every node but the tail) the peer link to node `node+1`.
///
/// The head (node 0) doubles as a [`ProcessCounter`]: a client `Next`
/// enters the fabric here exactly like a thread enters the shared-memory
/// network, which is what lets [`crate::server::CounterServer`] serve a
/// whole cluster through the same data path as a single process.
pub struct ClusterNode {
    node: usize,
    nodes: usize,
    fan: usize,
    stage: StageKind,
    downstream: Option<RemoteNode>,
    /// Fabric-entry token ids (diagnostic identity carried by `Forward`).
    tokens: AtomicU64,
    /// Client-facing address of the head, propagated down the chain by
    /// `Announce`; empty until learned.
    head: Mutex<String>,
}

impl fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterNode")
            .field("node", &self.node)
            .field("nodes", &self.nodes)
            .field("fan", &self.fan)
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Assembles node `node` of an `nodes`-node chain over `net`,
    /// partitioned by [`Partition::contiguous`]. `peers` lists the
    /// downstream node addresses in chain order (`node+1`, `node+2`, …);
    /// only the first is dialed — each node relays onward. `lanes` sizes
    /// the peer connection pool (use the server's connection-slot count).
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on a rejected plan, an out-of-range node index, or
    /// a missing peer address for a non-tail node.
    pub fn new(
        net: &Network,
        node: usize,
        nodes: usize,
        peers: &[String],
        lanes: usize,
    ) -> Result<ClusterNode, ClusterError> {
        let plan = Partition::contiguous(net, nodes)?;
        if node >= nodes {
            return Err(ClusterError::BadNode { node, nodes });
        }
        let fan = plan.fan();
        let engine = CompiledNetwork::compile(&plan.sub_network(net, node));
        let (stage, downstream) = if node + 1 == nodes {
            (StageKind::Tail { counter: SharedNetworkCounter::from_compiled(engine) }, None)
        } else {
            let peer =
                peers.first().ok_or(ClusterError::MissingPeer { node })?.clone();
            let balancers = engine.new_balancer_states();
            (
                StageKind::Relay { engine, balancers },
                Some(RemoteNode::new(peer, lanes)),
            )
        };
        Ok(ClusterNode {
            node,
            nodes,
            fan,
            stage,
            downstream,
            tokens: AtomicU64::new(0),
            head: Mutex::new(String::new()),
        })
    }

    /// This node's chain index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Chain length.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The network fan `w` (the width of every cut).
    pub fn fan(&self) -> usize {
        self.fan
    }

    /// Whether this is the entry node clients count through.
    pub fn is_head(&self) -> bool {
        self.node == 0
    }

    /// Whether this node owns the output counters.
    pub fn is_tail(&self) -> bool {
        self.node + 1 == self.nodes
    }

    /// The head's client-facing address as currently known (empty until
    /// announced down the chain; the head itself learns it at bind time).
    pub fn head_addr(&self) -> String {
        self.head.lock().clone()
    }

    /// Records the head's client-facing address.
    pub fn set_head_addr(&self, addr: String) {
        *self.head.lock() = addr;
    }

    /// Introduces this node to its downstream peer, propagating the
    /// head's address ([`Request::Announce`]). A no-op on the tail.
    ///
    /// # Errors
    ///
    /// I/O failures on the peer link, or a non-`Pong` answer.
    pub fn announce_downstream(&self, lane: usize) -> io::Result<()> {
        let Some(down) = &self.downstream else { return Ok(()) };
        let req = Request::Announce { node: self.node as u32, head: self.head_addr() };
        match down.call(lane, &req)? {
            Response::Pong => Ok(()),
            other => Err(response_error(&other)),
        }
    }

    /// Runs one token that is already inside the fabric: traverse this
    /// node's layers from cut position `port`, then count (tail) or
    /// forward across the next cut carrying `token` (relay). `lane` picks
    /// the peer connection.
    ///
    /// # Errors
    ///
    /// Peer-link I/O failures and downstream refusals.
    pub fn step(&self, lane: usize, token: u64, port: usize) -> io::Result<u64> {
        assert!(port < self.fan, "cut position {port} out of range");
        match &self.stage {
            StageKind::Tail { counter } => Ok(counter.increment_from(port)),
            StageKind::Relay { engine, balancers } => {
                let exit = engine.traverse(port, balancers);
                let down = self.downstream.as_ref().expect("relay has a downstream");
                let req = Request::Forward {
                    token,
                    port: exit as u32,
                    node_seq: (self.node + 1) as u32,
                };
                match down.call(lane, &req)? {
                    Response::Value { value } => Ok(value),
                    other => Err(response_error(&other)),
                }
            }
        }
    }

    /// Runs `n` tokens entering together on cut position `port` — the
    /// batched counterpart of [`step`](Self::step). A relay node pays at
    /// most one atomic per balancer for the whole batch
    /// ([`CompiledNetwork::traverse_batch`]), then forwards one
    /// `ForwardBatch` per occupied cut position, pipelined in a single
    /// write burst. Values come back grouped by cut position; the set is
    /// what matters (a counting network never promises per-token order).
    ///
    /// # Errors
    ///
    /// Peer-link I/O failures, downstream refusals, and a downstream
    /// batch of the wrong length.
    pub fn step_batch(
        &self,
        lane: usize,
        token: u64,
        port: usize,
        n: usize,
    ) -> io::Result<Vec<u64>> {
        assert!(port < self.fan, "cut position {port} out of range");
        if n == 0 {
            return Ok(Vec::new());
        }
        match &self.stage {
            StageKind::Tail { counter } => {
                let mut values = Vec::with_capacity(n);
                counter.increment_batch_from(port, n, &mut values);
                Ok(values)
            }
            StageKind::Relay { engine, balancers } => {
                let mut sink_counts = Vec::new();
                engine.traverse_batch(port, n, balancers, &mut sink_counts);
                let down = self.downstream.as_ref().expect("relay has a downstream");
                let node_seq = (self.node + 1) as u32;
                let mut reqs = Vec::new();
                let mut offset = 0u64;
                for (exit, &count) in sink_counts.iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    reqs.push(Request::ForwardBatch {
                        token: token.wrapping_add(offset),
                        port: exit as u32,
                        node_seq,
                        n: count as u32,
                    });
                    offset += count as u64;
                }
                let mut values = Vec::with_capacity(n);
                for (req, resp) in reqs.iter().zip(down.call_many(lane, &reqs)?) {
                    let Request::ForwardBatch { n: want, .. } = req else { unreachable!() };
                    match resp {
                        Response::Batch { values: got } if got.len() == *want as usize => {
                            values.extend(got);
                        }
                        Response::Batch { values: got } => {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                format!("forwarded {want} tokens, got {} values", got.len()),
                            ));
                        }
                        other => return Err(response_error(&other)),
                    }
                }
                Ok(values)
            }
        }
    }

    /// A client operation entering the fabric: stamps a fresh token id and
    /// runs it from entry port `process % fan`. Call on the head — entry
    /// ports of any other node are interior cut positions, and counting
    /// from them would skip the upstream layers.
    ///
    /// # Errors
    ///
    /// Peer-link I/O failures and downstream refusals.
    pub fn ingress(&self, lane: usize, process: usize) -> io::Result<u64> {
        let token = self.tokens.fetch_add(1, Ordering::Relaxed);
        self.step(lane, token, process % self.fan)
    }

    /// `n` client operations entering together on `process`'s entry port.
    ///
    /// # Errors
    ///
    /// Same as [`ingress`](Self::ingress).
    pub fn ingress_batch(&self, lane: usize, process: usize, n: usize) -> io::Result<Vec<u64>> {
        let token = self.tokens.fetch_add(n as u64, Ordering::Relaxed);
        self.step_batch(lane, token, process % self.fan, n)
    }
}

/// The cluster-wide audit merger: folds [`ShardFrontier`]s fetched from
/// every node ([`Request::Frontier`] / `RemoteCounter::fetch_frontier`)
/// into one [`MergeAuditor`], remapping each node's local shard space into
/// a disjoint global one (node `k`'s shard `s` becomes `offset(k) + s`).
///
/// This is what "per-node shard monitors merged across the wire" means
/// concretely: each node ships its monitors' partial verdicts and buffered
/// events, and the collector's merged verdict is bit-identical to what the
/// sequential auditor would produce on the concatenated per-shard streams
/// — the [`MergeAuditor`]'s release rule is deterministic in stream
/// contents, independent of fetch interleaving.
///
/// All nodes must share one machine clock for the merged verdict to be
/// meaningful — the stamps are node-local monotonic nanoseconds.
#[derive(Debug)]
pub struct FrontierCollector {
    merged: MergeAuditor,
    offsets: Vec<usize>,
    shards_per_node: Vec<usize>,
}

impl FrontierCollector {
    /// A collector over a chain whose node `k` serves
    /// `shards_per_node[k]` recorder shards.
    pub fn new(shards_per_node: &[usize]) -> FrontierCollector {
        let mut offsets = Vec::with_capacity(shards_per_node.len());
        let mut total = 0usize;
        for &n in shards_per_node {
            offsets.push(total);
            total += n;
        }
        FrontierCollector {
            merged: MergeAuditor::new(total.max(1)),
            offsets,
            shards_per_node: shards_per_node.to_vec(),
        }
    }

    /// The global shard-space size (sum over nodes).
    pub fn total_shards(&self) -> usize {
        self.shards_per_node.iter().sum()
    }

    /// Node `node`'s offset into the global shard space.
    pub fn offset(&self, node: usize) -> usize {
        self.offsets[node]
    }

    /// Folds one frontier fetched from `node` (its `shard` still local to
    /// that node) into the merged audit; returns how many events became
    /// releasable. The op `process` ids are remapped along with the shard,
    /// so per-process SC checks stay per-global-shard.
    ///
    /// # Panics
    ///
    /// Panics if `node` or the frontier's local shard is out of range.
    pub fn ingest(&mut self, node: usize, mut frontier: ShardFrontier) -> usize {
        assert!(
            frontier.shard < self.shards_per_node[node],
            "node {node} frontier for local shard {} of {}",
            frontier.shard,
            self.shards_per_node[node]
        );
        let global = self.offsets[node] + frontier.shard;
        frontier.shard = global;
        for op in &mut frontier.ops {
            op.process = global;
        }
        self.merged.ingest(frontier)
    }

    /// Declares every shard's stream complete and releases everything
    /// still buffered (call once all nodes report dry).
    pub fn finish(&mut self) {
        for shard in 0..self.merged.shard_count() {
            self.merged.finish_shard(shard);
        }
        self.merged.merge();
    }

    /// The merged auditor (exact global verdict + per-shard stats).
    pub fn merged(&self) -> &MergeAuditor {
        &self.merged
    }

    /// Mutable access, e.g. for [`MergeAuditor::summary`].
    pub fn merged_mut(&mut self) -> &mut MergeAuditor {
        &mut self.merged
    }
}

impl ProcessCounter for ClusterNode {
    /// Panics on peer-link failures — the trait is infallible; the server
    /// uses the fallible [`ClusterNode::ingress`] path instead.
    fn next_for(&self, process: usize) -> u64 {
        match self.ingress(process, process) {
            Ok(value) => value,
            Err(e) => panic!("cluster hop from node {} failed: {e}", self.node),
        }
    }

    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        match self.ingress_batch(process, process, n) {
            Ok(values) => values,
            Err(e) => panic!("cluster hop from node {} failed: {e}", self.node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::construct::bitonic;

    #[test]
    fn a_single_node_chain_is_just_the_network() {
        let net = bitonic(4).unwrap();
        let node = ClusterNode::new(&net, 0, 1, &[], 2).unwrap();
        assert!(node.is_head() && node.is_tail());
        assert_eq!(node.fan(), 4);
        let mut values: Vec<u64> = (0..32).map(|i| node.next_for(i)).collect();
        values.extend(node.next_batch_for(1, 16));
        values.sort_unstable();
        assert_eq!(values, (0..48).collect::<Vec<_>>());
    }

    #[test]
    fn relay_nodes_require_a_peer() {
        let net = bitonic(4).unwrap();
        let err = ClusterNode::new(&net, 0, 2, &[], 1).unwrap_err();
        assert_eq!(err, ClusterError::MissingPeer { node: 0 });
        let err = ClusterNode::new(&net, 5, 2, &[], 1).unwrap_err();
        assert_eq!(err, ClusterError::BadNode { node: 5, nodes: 2 });
        let err = ClusterNode::new(&net, 0, 99, &[], 1).unwrap_err();
        assert!(matches!(err, ClusterError::Partition(_)), "{err}");
    }

    #[test]
    fn the_tail_counts_without_any_peer_link() {
        let net = bitonic(8).unwrap();
        let tail = ClusterNode::new(&net, 1, 2, &[], 1).unwrap();
        assert!(tail.is_tail() && !tail.is_head());
        // Tokens entering the tail on cut positions count through the
        // final layers; sequentially the values are a permutation.
        let mut values: Vec<u64> =
            (0..24).map(|i| tail.step(0, i as u64, i % 8).unwrap()).collect();
        values.sort_unstable();
        assert_eq!(values, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn frontier_collector_matches_the_sequential_auditor() {
        use cnet_core::trace::{RawOp, ShardMonitor, StreamingAuditor};

        // Two nodes, two shards each; interleaved clean streams.
        let mk = |shard: usize, base: u64| {
            let mut mon = ShardMonitor::new(shard);
            for i in 0..50u64 {
                let t = base + 4 * i;
                mon.observe(RawOp {
                    process: shard,
                    enter_ns: t,
                    exit_ns: t + 2,
                    value: base + i,
                });
            }
            mon.take_frontier(true)
        };
        let mut collector = FrontierCollector::new(&[2, 2]);
        assert_eq!(collector.total_shards(), 4);
        assert_eq!(collector.offset(1), 2);
        collector.ingest(0, mk(0, 0));
        collector.ingest(0, mk(1, 1));
        collector.ingest(1, mk(0, 2));
        collector.ingest(1, mk(1, 3));
        collector.finish();
        assert_eq!(collector.merged().operations(), 200);
        // The same events through the sequential pipeline, global shards.
        let mut seq = cnet_core::trace::EventMerger::new(4);
        for g in 0..4usize {
            for i in 0..50u64 {
                let t = g as u64 + 4 * i;
                seq.push(
                    g,
                    RawOp { process: g, enter_ns: t, exit_ns: t + 2, value: g as u64 + i },
                );
            }
            seq.finish(g);
        }
        let mut auditor = StreamingAuditor::new();
        seq.drain_into(&mut auditor);
        assert_eq!(collector.merged_mut().summary(), auditor.summary());
    }

    #[test]
    fn frontier_collector_remaps_shards_and_carries_stats() {
        use cnet_core::trace::{RawOp, ShardFrontier};

        let mut collector = FrontierCollector::new(&[1, 3]);
        let f = ShardFrontier {
            shard: 2,
            ops: vec![RawOp { process: 2, enter_ns: 5, exit_ns: 6, value: 0 }],
            watermark: Some(5),
            finished: true,
            dropped: 7,
            skipped: 11,
            ..Default::default()
        };
        collector.ingest(1, f);
        collector.finish();
        let stats = collector.merged().shard_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[3].dropped, 7); // node 1 shard 2 -> global 3
        assert_eq!(stats[3].skipped, 11);
        assert_eq!(collector.merged().dropped(), 7);
        assert_eq!(collector.merged().skipped(), 11);
    }

    #[test]
    fn cluster_errors_render_their_cause() {
        let msg = ClusterError::MissingPeer { node: 3 }.to_string();
        assert!(msg.contains("node 3"), "{msg}");
        let net = bitonic(2).unwrap();
        let msg = ClusterNode::new(&net, 0, 9, &[], 1).unwrap_err().to_string();
        assert!(msg.contains("partition plan rejected"), "{msg}");
    }
}
