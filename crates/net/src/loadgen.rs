//! Multi-threaded load generator for a running counting service.
//!
//! The generator drives [`LoadGenConfig::connections`] pooled client
//! connections from [`LoadGenConfig::threads`] worker threads —
//! decoupled, because the interesting regime for the reactor server is
//! *many mostly-idle connections*: 10,000 sockets cannot each have a
//! thread on either side of the wire. Worker `w` owns the connection
//! slots `{c : c % threads == w}` (disjoint across workers, so the
//! client's per-slot sequence numbering and never-retry guarantee are
//! untouched) and round-robins one burst per connection, which makes
//! every connection periodically active and the rest idle — exactly the
//! load shape an epoll server must not degrade under.
//!
//! Bursts are [`LoadGenConfig::batch`] operations; two [`LoadGenMode`]s
//! decide what a burst is on the wire:
//!
//! * [`Batch`](LoadGenMode::Batch) (the default) — one `NextBatch` frame
//!   per burst: the server claims the whole burst through the backend's
//!   batched path (one atomic per balancer per batch) and records one
//!   widened audit interval;
//! * [`Pipeline`](LoadGenMode::Pipeline) — `batch` single `Next` frames
//!   written back-to-back before any response is read: the per-token
//!   traversal path, amortizing only the socket flush.
//!
//! Every burst's round-trip time lands in a per-worker
//! [`LatencyHistogram`] (merged into [`LoadGenReport::latency`]), so a
//! run reports end-to-end p50/p99/p999 alongside throughput. All
//! connections are dialed and warmed before the timed region starts, so
//! the percentiles are steady-state round trips — TCP handshakes never
//! pollute the tail. The run also
//! returns (optionally) every value received, so callers can check the
//! permutation property — `n` increments return exactly `0..n` — end to
//! end across the wire.

use crate::client::{ClientConfig, RemoteCounter};
use cnet_util::hist::LatencyHistogram;
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Instant;

/// What a load-generator burst looks like on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadGenMode {
    /// One `NextBatch` frame per burst — exercises the server's batched
    /// traversal fast path.
    #[default]
    Batch,
    /// `batch` pipelined `Next` frames per burst — exercises the
    /// per-token path with amortized flushes.
    Pipeline,
}

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadGenConfig {
    /// Worker threads.
    pub threads: usize,
    /// Pooled client connections, shared out across the workers
    /// (`0` = one per worker, the pre-reactor behaviour).
    pub connections: usize,
    /// Operations per worker thread.
    pub ops_per_thread: usize,
    /// Burst size (1 = one round trip per op).
    pub batch: usize,
    /// What a burst is on the wire.
    pub mode: LoadGenMode,
    /// Keep every received value for permutation checking.
    pub collect_values: bool,
    /// Treat the target as **any** node of a counting cluster: handshake
    /// with [`Request::NodeInfo`](crate::wire::Request::NodeInfo) first
    /// and re-dial the head if the contacted node is a relay or the tail.
    pub route: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            threads: 4,
            connections: 0,
            ops_per_thread: 1000,
            batch: 32,
            mode: LoadGenMode::default(),
            collect_values: false,
            route: false,
        }
    }
}

/// What a load-generator run measured.
#[derive(Clone, Debug)]
pub struct LoadGenReport {
    /// Worker threads that ran.
    pub threads: usize,
    /// Pooled connections the workers drove.
    pub connections: usize,
    /// Total operations completed across all workers.
    pub total_ops: u64,
    /// Wall-clock duration of the measured region, in seconds.
    pub seconds: f64,
    /// Burst round-trip times (one sample per burst), merged across
    /// workers.
    pub latency: LatencyHistogram,
    /// Every value received, in no particular order (only when
    /// [`LoadGenConfig::collect_values`] is set).
    pub values: Option<Vec<u64>>,
}

impl LoadGenReport {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.total_ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Whether the collected values are exactly the permutation
    /// `0..total_ops` — the counting-service correctness criterion.
    /// `None` when values were not collected.
    pub fn is_permutation(&self) -> Option<bool> {
        let values = self.values.as_ref()?;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        Some(
            sorted.len() as u64 == self.total_ops
                && sorted.iter().copied().eq(0..self.total_ops),
        )
    }
}

/// Runs the load: `threads` workers over `connections` pooled client
/// connections, each worker completing `ops_per_thread` operations in
/// bursts of `batch` (see [`LoadGenMode`] for what a burst is on the
/// wire), round-robining bursts over its share of the connections.
///
/// Before the timed region every worker dials and pings each of its
/// connections, then all workers release together: the latency histogram
/// and throughput measure steady-state traffic over open sockets, not
/// connection setup (with 1k+ mostly-idle connections the handshake
/// bursts would otherwise *be* the p99).
///
/// # Errors
///
/// Connection failures and any worker's first I/O error (remaining
/// workers still drain before the error is returned).
pub fn run_loadgen(addr: impl ToSocketAddrs, cfg: &LoadGenConfig) -> io::Result<LoadGenReport> {
    let threads = cfg.threads.max(1);
    let connections = if cfg.connections == 0 { threads } else { cfg.connections };
    let batch = cfg.batch.max(1);
    let client = Arc::new(if cfg.route {
        RemoteCounter::connect_routed(addr, connections)?
    } else {
        RemoteCounter::with_config(
            addr,
            ClientConfig { pool: connections, ..ClientConfig::default() },
        )?
    });
    // Workers warm up, meet at the barrier, then the measured region
    // starts; the main thread joins the same barrier to stamp `start`.
    let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let client = Arc::clone(&client);
            let barrier = Arc::clone(&barrier);
            let ops = cfg.ops_per_thread;
            let collect = cfg.collect_values;
            let mode = cfg.mode;
            // Worker w's disjoint connection share. With fewer connections
            // than workers, worker w borrows slot w % connections — slots
            // are mutex-guarded in the client, so sharing is safe, merely
            // contended.
            let mine: Vec<usize> = if connections >= threads {
                (w..connections).step_by(threads).collect()
            } else {
                vec![w % connections]
            };
            std::thread::spawn(move || -> io::Result<(Vec<u64>, LatencyHistogram)> {
                // Dial and warm every owned connection, then wait for the
                // other workers — unconditionally, so a warmup failure
                // cannot strand the main thread at the barrier.
                let warmup: io::Result<()> =
                    mine.iter().try_for_each(|&slot| client.ping(slot));
                barrier.wait();
                warmup?;
                let mut values_out = Vec::with_capacity(if collect { ops } else { 0 });
                let mut latency = LatencyHistogram::new();
                let mut done = 0usize;
                let mut turn = 0usize;
                while done < ops {
                    let burst = batch.min(ops - done);
                    let slot = mine[turn % mine.len()];
                    turn += 1;
                    let t0 = Instant::now();
                    let values = match mode {
                        LoadGenMode::Batch => client.next_batch(slot, burst)?,
                        LoadGenMode::Pipeline => client.next_pipelined(slot, burst)?,
                    };
                    latency.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    done += values.len();
                    if collect {
                        values_out.extend(values);
                    }
                }
                Ok((values_out, latency))
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut values = cfg.collect_values.then(Vec::new);
    let mut latency = LatencyHistogram::new();
    let mut first_err = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok((mine, hist))) => {
                if let Some(all) = &mut values {
                    all.extend(mine);
                }
                latency.merge(&hist);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| {
                    Some(io::Error::other("load-generator worker panicked"))
                });
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(LoadGenReport {
        threads,
        connections,
        total_ops: (threads * cfg.ops_per_thread) as u64,
        seconds,
        latency,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CounterServer, ServerConfig};
    use cnet_runtime::FetchAddCounter;

    #[test]
    fn loadgen_values_form_a_permutation() {
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 8, ..ServerConfig::default() },
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 4,
                ops_per_thread: 250,
                batch: 16,
                mode: LoadGenMode::Batch,
                collect_values: true,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.total_ops, 1000);
        assert_eq!(report.connections, 4, "connections default to threads");
        assert_eq!(report.is_permutation(), Some(true));
        assert!(report.ops_per_sec() > 0.0);
        // One latency sample per burst: 16 bursts per worker.
        assert_eq!(report.latency.count(), 4 * 16);
        assert!(report.latency.quantile(0.99) >= report.latency.quantile(0.50));
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.ops, 1000);
        // Batch mode really used NextBatch frames: 16 bursts per worker.
        assert_eq!(stats.batches, 4 * 16);
    }

    #[test]
    fn pipeline_mode_also_yields_a_permutation() {
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 8, ..ServerConfig::default() },
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 2,
                ops_per_thread: 100,
                batch: 8,
                mode: LoadGenMode::Pipeline,
                collect_values: true,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.is_permutation(), Some(true));
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.ops, 200);
        assert_eq!(stats.batches, 0, "pipeline mode sends single Next frames");
    }

    #[test]
    fn loadgen_without_collection_reports_throughput_only() {
        let server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 2,
                ops_per_thread: 100,
                batch: 10,
                mode: LoadGenMode::Batch,
                collect_values: false,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.total_ops, 200);
        assert!(report.values.is_none());
        assert_eq!(report.is_permutation(), None);
    }

    #[test]
    fn more_connections_than_threads_still_yields_a_permutation() {
        // 24 mostly-idle connections driven by 3 workers: each worker
        // round-robins its disjoint 8-connection share.
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 32, processes: 8, ..ServerConfig::default() },
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 3,
                connections: 24,
                ops_per_thread: 240,
                batch: 10,
                mode: LoadGenMode::Batch,
                collect_values: true,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.connections, 24);
        assert_eq!(report.total_ops, 720);
        assert_eq!(report.is_permutation(), Some(true));
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.ops, 720);
        // All 24 connections were actually dialed and served: each worker
        // runs 24 bursts over its 8 connections.
        assert_eq!(stats.total_connections, 24);
    }

    #[test]
    fn routed_loadgen_against_the_tail_counts_through_the_head() {
        use crate::router::ClusterNode;
        use cnet_topology::construct::bitonic;

        let net = bitonic(4).unwrap();
        let cfg = ServerConfig { max_connections: 8, processes: 4, ..ServerConfig::default() };
        let tail = Arc::new(ClusterNode::new(&net, 1, 2, &[], 8).unwrap());
        let tail_server =
            CounterServer::start_cluster("127.0.0.1:0", Arc::clone(&tail), None, cfg.clone())
                .unwrap();
        let peers = vec![tail_server.local_addr().to_string()];
        let head = Arc::new(ClusterNode::new(&net, 0, 2, &peers, 8).unwrap());
        let _head_server =
            CounterServer::start_cluster("127.0.0.1:0", head, None, cfg).unwrap();

        // Point the generator at the *tail*; routing must land it on the
        // head (poll briefly: the head announces itself asynchronously).
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        let report = loop {
            let run = run_loadgen(
                tail_server.local_addr(),
                &LoadGenConfig {
                    threads: 2,
                    ops_per_thread: 100,
                    batch: 10,
                    collect_values: true,
                    route: true,
                    ..LoadGenConfig::default()
                },
            );
            match run {
                Ok(r) => break r,
                Err(e) if Instant::now() < deadline => {
                    assert_eq!(e.kind(), io::ErrorKind::AddrNotAvailable, "{e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => panic!("routing never became available: {e}"),
            }
        };
        assert_eq!(report.is_permutation(), Some(true));
    }

    #[test]
    fn fewer_connections_than_threads_shares_slots_safely() {
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 4, ..ServerConfig::default() },
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 4,
                connections: 2,
                ops_per_thread: 100,
                batch: 5,
                mode: LoadGenMode::Batch,
                collect_values: true,
                ..LoadGenConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.connections, 2);
        assert_eq!(report.is_permutation(), Some(true));
        server.shutdown();
        assert_eq!(server.stats().total_connections, 2);
    }
}
