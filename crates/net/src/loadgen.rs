//! Multi-threaded load generator for a running counting service.
//!
//! Each worker thread owns one connection-pool slot (`pool == threads`)
//! and pushes its share of the total operation count through the socket in
//! bursts of [`LoadGenConfig::batch`]. Two [`LoadGenMode`]s decide what a
//! burst is on the wire:
//!
//! * [`Batch`](LoadGenMode::Batch) (the default) — one `NextBatch` frame
//!   per burst: the server claims the whole burst through the backend's
//!   batched path (one atomic per balancer per batch) and records one
//!   widened audit interval;
//! * [`Pipeline`](LoadGenMode::Pipeline) — `batch` single `Next` frames
//!   written back-to-back before any response is read: the per-token
//!   traversal path, amortizing only the socket flush.
//!
//! The run returns wall-clock throughput plus (optionally) every value
//! received, so callers can check the permutation property — `n`
//! increments return exactly `0..n` — end to end across the wire.

use crate::client::{ClientConfig, RemoteCounter};
use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Instant;

/// What a load-generator burst looks like on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LoadGenMode {
    /// One `NextBatch` frame per burst — exercises the server's batched
    /// traversal fast path.
    #[default]
    Batch,
    /// `batch` pipelined `Next` frames per burst — exercises the
    /// per-token path with amortized flushes.
    Pipeline,
}

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadGenConfig {
    /// Worker threads (and client connections).
    pub threads: usize,
    /// Operations per worker thread.
    pub ops_per_thread: usize,
    /// Burst size (1 = one round trip per op).
    pub batch: usize,
    /// What a burst is on the wire.
    pub mode: LoadGenMode,
    /// Keep every received value for permutation checking.
    pub collect_values: bool,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            threads: 4,
            ops_per_thread: 1000,
            batch: 32,
            mode: LoadGenMode::default(),
            collect_values: false,
        }
    }
}

/// What a load-generator run measured.
#[derive(Clone, Debug)]
pub struct LoadGenReport {
    /// Worker threads that ran.
    pub threads: usize,
    /// Total operations completed across all workers.
    pub total_ops: u64,
    /// Wall-clock duration of the measured region, in seconds.
    pub seconds: f64,
    /// Every value received, in no particular order (only when
    /// [`LoadGenConfig::collect_values`] is set).
    pub values: Option<Vec<u64>>,
}

impl LoadGenReport {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.total_ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Whether the collected values are exactly the permutation
    /// `0..total_ops` — the counting-service correctness criterion.
    /// `None` when values were not collected.
    pub fn is_permutation(&self) -> Option<bool> {
        let values = self.values.as_ref()?;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        Some(
            sorted.len() as u64 == self.total_ops
                && sorted.iter().copied().eq(0..self.total_ops),
        )
    }
}

/// Runs the load: `threads` workers, each completing `ops_per_thread`
/// operations in bursts of `batch` (see [`LoadGenMode`] for what a burst
/// is on the wire).
///
/// # Errors
///
/// Connection failures and any worker's first I/O error (remaining
/// workers still drain before the error is returned).
pub fn run_loadgen(addr: impl ToSocketAddrs, cfg: &LoadGenConfig) -> io::Result<LoadGenReport> {
    let threads = cfg.threads.max(1);
    let batch = cfg.batch.max(1);
    let client = Arc::new(RemoteCounter::with_config(
        addr,
        ClientConfig { pool: threads, ..ClientConfig::default() },
    )?);
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|slot| {
            let client = Arc::clone(&client);
            let ops = cfg.ops_per_thread;
            let collect = cfg.collect_values;
            let mode = cfg.mode;
            std::thread::spawn(move || -> io::Result<Vec<u64>> {
                let mut mine = Vec::with_capacity(if collect { ops } else { 0 });
                let mut done = 0usize;
                while done < ops {
                    let burst = batch.min(ops - done);
                    let values = match mode {
                        LoadGenMode::Batch => client.next_batch(slot, burst)?,
                        LoadGenMode::Pipeline => client.next_pipelined(slot, burst)?,
                    };
                    done += values.len();
                    if collect {
                        mine.extend(values);
                    }
                }
                Ok(mine)
            })
        })
        .collect();
    let mut values = cfg.collect_values.then(Vec::new);
    let mut first_err = None;
    for worker in workers {
        match worker.join() {
            Ok(Ok(mine)) => {
                if let Some(all) = &mut values {
                    all.extend(mine);
                }
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or_else(|| {
                    Some(io::Error::other("load-generator worker panicked"))
                });
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(LoadGenReport {
        threads,
        total_ops: (threads * cfg.ops_per_thread) as u64,
        seconds,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{CounterServer, ServerConfig};
    use cnet_runtime::FetchAddCounter;

    #[test]
    fn loadgen_values_form_a_permutation() {
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 8, ..ServerConfig::default() },
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 4,
                ops_per_thread: 250,
                batch: 16,
                mode: LoadGenMode::Batch,
                collect_values: true,
            },
        )
        .unwrap();
        assert_eq!(report.total_ops, 1000);
        assert_eq!(report.is_permutation(), Some(true));
        assert!(report.ops_per_sec() > 0.0);
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.ops, 1000);
        // Batch mode really used NextBatch frames: 16 bursts per worker.
        assert_eq!(stats.batches, 4 * 16);
    }

    #[test]
    fn pipeline_mode_also_yields_a_permutation() {
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 8, ..ServerConfig::default() },
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 2,
                ops_per_thread: 100,
                batch: 8,
                mode: LoadGenMode::Pipeline,
                collect_values: true,
            },
        )
        .unwrap();
        assert_eq!(report.is_permutation(), Some(true));
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.ops, 200);
        assert_eq!(stats.batches, 0, "pipeline mode sends single Next frames");
    }

    #[test]
    fn loadgen_without_collection_reports_throughput_only() {
        let server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads: 2,
                ops_per_thread: 100,
                batch: 10,
                mode: LoadGenMode::Batch,
                collect_values: false,
            },
        )
        .unwrap();
        assert_eq!(report.total_ops, 200);
        assert!(report.values.is_none());
        assert_eq!(report.is_permutation(), None);
    }
}
