//! The sharded epoll-reactor counting server.
//!
//! # Threading model
//!
//! One **acceptor** thread owns the listening socket (non-blocking, polled
//! so shutdown is never stuck in `accept`). Accepted connections are
//! assigned a **slot** — an index below [`ServerConfig::max_connections`]
//! — switched to nonblocking mode, and handed to one of
//! [`ServerConfig::reactors`] **reactor** threads (default: one per CPU
//! core). Reactor `r` owns exactly the connections whose `slot % reactors
//! == r`: it registers them in its private level-triggered poller
//! (`cnet_util::poll`, epoll on Linux), sleeps in one `epoll_wait` for
//! all of them, and serves readiness events single-threadedly. A
//! thousand idle connections therefore cost a thousand fds and one
//! sleeping thread — not a thousand sleeping threads, which is what
//! capped the previous thread-per-connection design at a few hundred
//! clients.
//!
//! # Per-connection state machine
//!
//! Each connection advances through [`Phase`]s driven by readiness:
//!
//! ```text
//! ReadingHeader ──bytes──▶ ReadingBody ──frame──▶ Executing ──▶ Writing
//!       ▲                                                          │
//!       └────────────────── response flushed ──────────────────────┘
//!                      (any error / EOF / Bye ──▶ Closing)
//! ```
//!
//! `ReadingHeader`/`ReadingBody` live inside an incremental
//! [`FrameDecoder`](crate::wire::FrameDecoder) — a nonblocking read may
//! deliver half a length prefix or ten pipelined frames; the decoder
//! resumes at any byte boundary and yields each frame exactly once.
//! `Executing` runs the backend call on the reactor thread itself
//! (counter operations are sub-microsecond — a lock-free traversal, not
//! blocking I/O — so shipping them to a worker pool would cost more than
//! it saves). `Writing` buffers responses and flushes until `WouldBlock`,
//! raising write interest only while output is pending — every frame
//! buffered in one readiness event is answered with one `write` burst,
//! preserving the old server's pipelining amortization. `Closing` flushes
//! what remains and frees the slot.
//!
//! A connection's slot doubles as its identity everywhere else:
//!
//! * **process id** — the backend sees `slot % processes`, so a
//!   counting-network backend routes each connection to a stable input
//!   wire, exactly like a thread in the shared-memory runtime;
//! * **stats shard** — each slot owns a cache-padded statistics record
//!   ([`CounterServer::stats`] aggregates them on demand);
//! * **recorder shard** — with a [`TraceRecorder`] attached, the slot is
//!   the recorder shard. The reactor keeps the recorder's single-writer
//!   contract structurally: shard `s` is only ever touched by reactor
//!   `s % reactors`, on that one thread, and a slot is flushed
//!   (`TraceRecorder::flush`) before it is released for reuse — so live
//!   audits keep working unchanged across the rewrite.
//!
//! # Backpressure
//!
//! At the connection limit the acceptor either **rejects** (answers
//! [`ErrorCode::Busy`] and closes — the client sees a clean refusal, not a
//! hang) or **defers the accept** (holds the fresh connection unserved
//! until a slot frees; counted in
//! [`StatsSnapshot::deferred_accepts`]), per [`Backpressure`].
//!
//! # Shutdown
//!
//! [`CounterServer::shutdown`] (also run on drop) drains gracefully: stop
//! accepting, wake every reactor, give each connection one final read
//! pass so frames already in flight are answered (increments get
//! [`ErrorCode::ShuttingDown`] once the stop flag is up; `Ping`/`Stats`
//! still answer), flush with a bounded deadline, then join every thread
//! via the shared [`Drain`] idiom. A client can trigger the same thing
//! remotely with a [`Request::Shutdown`] frame — the server acknowledges
//! with [`Response::Bye`] and wakes whoever is parked in
//! [`CounterServer::wait_for_shutdown_request`].

use crate::router::ClusterNode;
use crate::wire::{
    write_response, ErrorCode, FrameDecoder, NodeInfo, Request, Response, StatsSnapshot,
    TraceEvent, MAX_BATCH, MAX_FRONTIER_OPS, MAX_TRACE_EVENTS,
};
use cnet_core::trace::{RawOp, ShardMonitor};
use cnet_runtime::drain::Drain;
use cnet_runtime::{ProcessCounter, TraceRecorder};
use cnet_util::poll::{Interest, Poller, Waker};
use cnet_util::sync::{CachePadded, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// What the acceptor does when every connection slot is taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Answer [`ErrorCode::Busy`] and close the new connection.
    #[default]
    Reject,
    /// Defer the accept: hold the new connection unserved until a slot
    /// frees (or the server stops).
    Block,
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connection slots: the maximum number of concurrently served
    /// connections, and the recorder-shard space when auditing.
    pub max_connections: usize,
    /// Policy at the connection limit.
    pub backpressure: Backpressure,
    /// Logical process-id space: slot `s` performs backend operations as
    /// process `s % processes` (match the backend's fan-in for
    /// counting-network backends).
    pub processes: usize,
    /// Reactor threads sharing the connections (slot `s` is owned by
    /// reactor `s % reactors`). `0` means one per available CPU core;
    /// always clamped to `1..=max_connections`.
    pub reactors: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            backpressure: Backpressure::Reject,
            processes: 8,
            reactors: 0,
        }
    }
}

/// Per-slot statistics, one cache line each so reactors never share.
#[derive(Debug, Default)]
struct SlotStats {
    requests: AtomicU64,
    ops: AtomicU64,
    batches: AtomicU64,
}

/// Slot allocation and shutdown signalling, under one lock + condvar.
#[derive(Debug)]
struct Gate {
    free: Vec<usize>,
    active: usize,
}

/// One recorder shard's server-side audit state for the frontier protocol
/// ([`Request::Frontier`]): the node-local monitor (partial verdict), the
/// buffered tail a `max`-bounded response could not carry, and the
/// lifetime drop/skip totals already folded into the monitor.
#[derive(Debug)]
struct AuditShard {
    monitor: ShardMonitor,
    pending: VecDeque<RawOp>,
    seen_dropped: u64,
    seen_skipped: u64,
}

impl AuditShard {
    fn new(shard: usize) -> AuditShard {
        AuditShard {
            monitor: ShardMonitor::new(shard),
            pending: VecDeque::new(),
            seen_dropped: 0,
            seen_skipped: 0,
        }
    }
}

/// The acceptor-facing side of one reactor thread.
struct ReactorShared {
    /// Interrupts the reactor's `epoll_wait` (new connection, shutdown).
    waker: Waker,
    /// Freshly accepted connections awaiting registration, drained by the
    /// owning reactor at the top of every loop.
    inbox: Mutex<Vec<(usize, TcpStream)>>,
    /// Returns from the readiness wait.
    wakeups: CachePadded<AtomicU64>,
    /// Events delivered across all wakeups.
    events: CachePadded<AtomicU64>,
}

struct Shared {
    backend: Arc<dyn ProcessCounter + Send + Sync>,
    recorder: Option<Arc<TraceRecorder>>,
    /// Cluster identity and forwarding state; `None` for a plain
    /// single-process server.
    cluster: Option<Arc<ClusterNode>>,
    /// This server's own client-facing address (learned at bind).
    advertise: String,
    /// Recorder events drained but not yet shipped by a [`Request::Trace`]
    /// conversation; the lock serializes drains (single-drainer contract).
    trace_pending: Mutex<VecDeque<TraceEvent>>,
    /// Per-shard monitors for the frontier protocol ([`Request::Frontier`]);
    /// one entry per recorder shard (empty when auditing is off). Each
    /// shard's lock serializes its pullers (the recorder's
    /// one-puller-per-shard contract).
    audit_shards: Box<[Mutex<AuditShard>]>,
    cfg: ServerConfig,
    /// Stop serving: acceptor and reactors exit, handlers refuse
    /// increments.
    stop: AtomicBool,
    /// A `Shutdown` frame arrived (remote shutdown request).
    shutdown_requested: AtomicBool,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
    reactors: Box<[ReactorShared]>,
    slot_stats: Box<[CachePadded<SlotStats>]>,
    total_connections: CachePadded<AtomicU64>,
    rejected_connections: CachePadded<AtomicU64>,
    deferred_accepts: CachePadded<AtomicU64>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

/// A running counting service over any [`ProcessCounter`] backend.
///
/// # Example
///
/// ```
/// use cnet_net::server::{CounterServer, ServerConfig};
/// use cnet_net::client::RemoteCounter;
/// use cnet_runtime::{FetchAddCounter, ProcessCounter};
/// use std::sync::Arc;
///
/// let mut server = CounterServer::start(
///     "127.0.0.1:0",
///     Arc::new(FetchAddCounter::new()),
///     ServerConfig::default(),
/// )?;
/// let client = RemoteCounter::connect(server.local_addr(), 1)?;
/// assert_eq!(client.next_for(0), 0);
/// assert_eq!(client.next_for(0), 1);
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct CounterServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Drain,
    reactor_threads: Drain,
    down: bool,
}

impl CounterServer {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`local_addr`](Self::local_addr)) and starts serving `backend`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures (including a failure to
    /// create the per-reactor pollers).
    pub fn start(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ProcessCounter + Send + Sync>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        CounterServer::start_inner(addr, backend, None, None, cfg)
    }

    /// Like [`start`](Self::start), additionally recording every increment
    /// served into `recorder` (slot `s` writes shard `s`), so the online
    /// monitors can audit the service across the socket boundary.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; fails with `InvalidInput` if the recorder
    /// has fewer shards than `cfg.max_connections`.
    pub fn with_recorder(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ProcessCounter + Send + Sync>,
        recorder: Arc<TraceRecorder>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        check_shards(&recorder, &cfg)?;
        CounterServer::start_inner(addr, backend, Some(recorder), None, cfg)
    }

    /// Starts one node of a counting cluster: the node's own layer range
    /// runs behind the same reactor data path, with [`Request::Forward`]
    /// hops accepted from upstream peers and (on the head) client
    /// increments entering the fabric. With a `recorder`, every *client*
    /// operation this node serves is recorded — forwarded hops are not
    /// (the head records them once; recording each hop again would
    /// duplicate values in the merged cluster history).
    ///
    /// The head announces its address down the chain on startup, so any
    /// node can point clients at the head ([`Request::NodeInfo`]).
    ///
    /// # Errors
    ///
    /// Propagates bind failures; fails with `InvalidInput` if the
    /// recorder has fewer shards than `cfg.max_connections`.
    pub fn start_cluster(
        addr: impl ToSocketAddrs,
        cluster: Arc<ClusterNode>,
        recorder: Option<Arc<TraceRecorder>>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        if let Some(rec) = recorder.clone() {
            check_shards(&rec, &cfg)?;
        }
        let backend: Arc<dyn ProcessCounter + Send + Sync> = Arc::clone(&cluster) as _;
        CounterServer::start_inner(addr, backend, recorder, Some(cluster), cfg)
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ProcessCounter + Send + Sync>,
        recorder: Option<Arc<TraceRecorder>>,
        cluster: Option<Arc<ClusterNode>>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        let max_connections = cfg.max_connections.max(1);
        let reactors = match cfg.reactors {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
        .clamp(1, max_connections);
        let cfg = ServerConfig {
            max_connections,
            processes: cfg.processes.max(1),
            reactors,
            ..cfg
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Build the pollers up front so fd exhaustion or an unsupported
        // platform surfaces here, as a start error, not in a thread.
        let mut pollers = Vec::with_capacity(reactors);
        let mut handles = Vec::with_capacity(reactors);
        for _ in 0..reactors {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, WAKE_TOKEN)?;
            pollers.push(poller);
            handles.push(ReactorShared {
                waker,
                inbox: Mutex::new(Vec::new()),
                wakeups: CachePadded::new(AtomicU64::new(0)),
                events: CachePadded::new(AtomicU64::new(0)),
            });
        }
        // The head learns its client-facing address at bind time and
        // pushes it down the chain so every node can redirect clients.
        if let Some(c) = &cluster {
            if c.is_head() {
                c.set_head_addr(addr.to_string());
                let announcer = Arc::clone(c);
                std::thread::spawn(move || {
                    let _ = announcer.announce_downstream(0);
                });
            }
        }
        let audit_shards = recorder
            .as_ref()
            .map(|r| (0..r.shards()).map(|s| Mutex::new(AuditShard::new(s))).collect())
            .unwrap_or_default();
        let shared = Arc::new(Shared {
            backend,
            recorder,
            cluster,
            advertise: addr.to_string(),
            trace_pending: Mutex::new(VecDeque::new()),
            audit_shards,
            cfg,
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            gate: Mutex::new(Gate {
                free: (0..cfg.max_connections).rev().collect(),
                active: 0,
            }),
            gate_cv: Condvar::new(),
            reactors: handles.into_boxed_slice(),
            slot_stats: (0..cfg.max_connections).map(|_| CachePadded::default()).collect(),
            total_connections: CachePadded::new(AtomicU64::new(0)),
            rejected_connections: CachePadded::new(AtomicU64::new(0)),
            deferred_accepts: CachePadded::new(AtomicU64::new(0)),
        });
        let mut reactor_threads = Drain::with_capacity(reactors);
        for (r, poller) in pollers.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            reactor_threads.push(std::thread::spawn(move || reactor_loop(&shared, r, poller)));
        }
        let mut acceptor = Drain::with_capacity(1);
        let shared2 = Arc::clone(&shared);
        acceptor.push(std::thread::spawn(move || accept_loop(&shared2, &listener)));
        Ok(CounterServer { addr, shared, acceptor, reactor_threads, down: false })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder increments are streamed into, when auditing.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.shared.recorder.as_ref()
    }

    /// Aggregates the per-slot statistics into one snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Whether a client has sent a [`Request::Shutdown`] frame.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Blocks until a remote shutdown request arrives (or the server is
    /// shut down locally).
    pub fn wait_for_shutdown_request(&self) {
        let mut gate = self.shared.gate.lock();
        while !self.shared.shutdown_requested.load(Ordering::Acquire)
            && !self.shared.stop.load(Ordering::Acquire)
        {
            gate = self
                .shared
                .gate_cv
                .wait_timeout(gate, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Drains and stops the server: no new connections, every reactor
    /// answers the frames already in flight (increments get
    /// `ShuttingDown`), flushes with a bounded deadline, and every thread
    /// is joined. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.shared.stop.store(true, Ordering::Release);
        self.shared.gate_cv.notify_all();
        self.acceptor.join_all();
        for r in self.shared.reactors.iter() {
            let _ = r.waker.wake();
        }
        self.reactor_threads.join_all();
    }
}

impl Drop for CounterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Every connection slot is a recorder shard; refuse a recorder that
/// cannot hold them all.
fn check_shards(recorder: &Arc<TraceRecorder>, cfg: &ServerConfig) -> io::Result<()> {
    if recorder.shards() < cfg.max_connections {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "recorder has {} shards for {} connection slots",
                recorder.shards(),
                cfg.max_connections
            ),
        ));
    }
    Ok(())
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let mut s = StatsSnapshot {
        active_connections: shared.gate.lock().active as u64,
        total_connections: shared.total_connections.load(Ordering::Relaxed),
        rejected_connections: shared.rejected_connections.load(Ordering::Relaxed),
        deferred_accepts: shared.deferred_accepts.load(Ordering::Relaxed),
        ..StatsSnapshot::default()
    };
    for slot in shared.slot_stats.iter() {
        s.requests += slot.requests.load(Ordering::Relaxed);
        s.ops += slot.ops.load(Ordering::Relaxed);
        s.batches += slot.batches.load(Ordering::Relaxed);
    }
    for r in shared.reactors.iter() {
        s.reactor_wakeups += r.wakeups.load(Ordering::Relaxed);
        s.reactor_events += r.events.load(Ordering::Relaxed);
    }
    s
}

/// Acquires a connection slot per the backpressure policy; `None` means
/// the connection should be refused (or the server is stopping). Under
/// [`Backpressure::Block`] this parks the acceptor — a deferred accept —
/// and counts the deferral.
fn acquire_slot(shared: &Shared) -> Option<usize> {
    let mut gate = shared.gate.lock();
    let mut deferred = false;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        if let Some(slot) = gate.free.pop() {
            gate.active += 1;
            if deferred {
                shared.deferred_accepts.fetch_add(1, Ordering::Relaxed);
            }
            return Some(slot);
        }
        match shared.cfg.backpressure {
            Backpressure::Reject => return None,
            Backpressure::Block => {
                deferred = true;
                gate = shared
                    .gate_cv
                    .wait_timeout(gate, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
    }
}

fn release_slot(shared: &Shared, slot: usize) {
    let mut gate = shared.gate.lock();
    gate.free.push(slot);
    gate.active -= 1;
    drop(gate);
    shared.gate_cv.notify_all();
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                match acquire_slot(shared) {
                    Some(slot) => {
                        shared.total_connections.fetch_add(1, Ordering::Relaxed);
                        if stream.set_nonblocking(true).is_err() {
                            release_slot(shared, slot);
                            continue;
                        }
                        // Hand the connection to its owning reactor. The
                        // wake is advisory: every reactor also drains its
                        // inbox on the 50ms timeout safety net.
                        let r = slot % shared.cfg.reactors;
                        shared.reactors[r].inbox.lock().push((slot, stream));
                        let _ = shared.reactors[r].waker.wake();
                    }
                    None if shared.stop.load(Ordering::Acquire) => break,
                    None => {
                        shared.rejected_connections.fetch_add(1, Ordering::Relaxed);
                        // Best-effort refusal so the client sees Busy, not
                        // a silent close (the stream is still blocking
                        // here, so the small write completes).
                        let mut w = BufWriter::new(stream);
                        let _ = write_response(&mut w, 0, &Response::Error(ErrorCode::Busy));
                        let _ = w.flush();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Token the per-reactor waker is registered under; distinct from every
/// slot token (slots are bounded by `max_connections`).
const WAKE_TOKEN: u64 = u64::MAX;

/// Reactor read chunk and per-event read budget. Level-triggered polling
/// re-reports a socket that still has bytes after the budget, so a large
/// burst shares the reactor fairly instead of monopolizing it.
const READ_CHUNK: usize = 16 * 1024;
const READS_PER_EVENT: usize = 4;

/// How the state machine phases map to code is described in the module
/// docs; `Closing` additionally flags "answer nothing more, flush and
/// free the slot".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Waiting for (the rest of) a length prefix + header.
    ReadingHeader,
    /// A frame's length is known; waiting for the rest of its payload.
    ReadingBody,
    /// A decoded request is running against the backend.
    Executing,
    /// A response is buffered and not yet fully flushed.
    Writing,
    /// Terminal: flush pending output, then free the slot.
    Closing,
}

/// One live connection, owned by exactly one reactor.
struct Conn {
    stream: TcpStream,
    slot: usize,
    process: usize,
    decoder: FrameDecoder,
    /// Encoded responses awaiting the socket; `out_pos..` is unsent.
    out: Vec<u8>,
    out_pos: usize,
    phase: Phase,
    /// Whether the poller currently watches write readiness.
    write_interest: bool,
}

impl Conn {
    fn new(slot: usize, process: usize, stream: TcpStream) -> Conn {
        Conn {
            stream,
            slot,
            process,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            phase: Phase::ReadingHeader,
            write_interest: false,
        }
    }

    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Re-derives the resting phase after a readiness pass.
    fn settle_phase(&mut self) {
        if self.phase == Phase::Closing {
            return;
        }
        self.phase = if self.pending_out() {
            Phase::Writing
        } else if self.decoder.buffered() > 0 {
            Phase::ReadingBody
        } else {
            Phase::ReadingHeader
        };
    }
}

fn reactor_loop(shared: &Arc<Shared>, r: usize, mut poller: Poller) {
    let me = &shared.reactors[r];
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut events = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    while !shared.stop.load(Ordering::Acquire) {
        // The timeout is a safety net (missed wake, slow inbox); the
        // steady state is event-driven.
        match poller.wait(&mut events, Some(Duration::from_millis(50))) {
            Ok(_) => {}
            Err(_) => {
                // A failing poller cannot make progress; parking briefly
                // keeps a transient error (EMFILE pressure) from spinning.
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
        }
        me.wakeups.fetch_add(1, Ordering::Relaxed);
        me.events.fetch_add(events.len() as u64, Ordering::Relaxed);
        adopt_inbox(shared, r, &poller, &mut conns);
        for i in 0..events.len() {
            let ev = events[i];
            if ev.token == WAKE_TOKEN {
                me.waker.drain();
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue; // already closed earlier in this batch
            };
            if !handle_ready(shared, conn, &mut scratch) {
                let conn = conns.remove(&ev.token).expect("present");
                close_conn(shared, &poller, conn);
                continue;
            }
            update_interest(&poller, conn);
        }
    }
    drain_reactor(shared, &poller, conns, &mut scratch);
    drain_inbox_slots(shared, r);
}

/// Registers freshly accepted connections pushed by the acceptor.
fn adopt_inbox(
    shared: &Arc<Shared>,
    r: usize,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
) {
    let fresh: Vec<(usize, TcpStream)> =
        std::mem::take(&mut *shared.reactors[r].inbox.lock());
    for (slot, stream) in fresh {
        debug_assert_eq!(slot % shared.cfg.reactors, r, "slot routed to wrong reactor");
        match poller.register(&stream, slot as u64, Interest::READABLE) {
            Ok(()) => {
                let process = slot % shared.cfg.processes;
                conns.insert(slot as u64, Conn::new(slot, process, stream));
            }
            Err(_) => release_slot(shared, slot),
        }
    }
}

/// Serves one readiness event. Returns `false` when the connection is
/// finished (flushed + closing, or a hard error) and must be closed.
fn handle_ready(shared: &Shared, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    // Flush first: frees buffer space and detects dead peers early.
    if !flush_out(conn) {
        return false;
    }
    if conn.phase != Phase::Closing {
        for _ in 0..READS_PER_EVENT {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    // EOF. Frames already received still get answers
                    // (the peer may have half-closed after a burst).
                    conn.phase = Phase::Closing;
                    break;
                }
                Ok(n) => {
                    conn.decoder.extend(&scratch[..n]);
                    if n < scratch.len() {
                        break; // drained the kernel buffer
                    }
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => return false,
            }
        }
        process_frames(shared, conn);
    }
    if !flush_out(conn) {
        return false;
    }
    conn.settle_phase();
    // Closing and fully flushed: nothing left to do for this peer.
    !(conn.phase == Phase::Closing && !conn.pending_out())
}

/// Decodes and executes every complete frame buffered on `conn`.
fn process_frames(shared: &Shared, conn: &mut Conn) {
    loop {
        if conn.phase == Phase::Closing {
            return;
        }
        // Decode to owned values before touching `conn` again (the
        // payload borrows the decoder's buffer). The frame's protocol
        // version rides along so the response answers in the same
        // dialect (a v1 client's Ping gets a v1 Pong).
        let decoded: Result<(u32, u8, Request), _> = match conn.decoder.next_frame() {
            Ok(Some(payload)) => Request::decode_versioned(payload),
            Ok(None) => return,
            Err(e) => Err(e),
        };
        match decoded {
            Ok((seq, version, req)) => execute(shared, conn, seq, version, req),
            Err(_) => {
                // Cannot trust anything in the frame, including its seq.
                Response::Error(ErrorCode::Malformed).encode(0, &mut conn.out);
                conn.phase = Phase::Closing;
                return;
            }
        }
    }
}

/// Runs one decoded request against the backend and buffers the
/// response, stamped with the request's protocol `version` so old
/// clients are answered in their own dialect.
fn execute(shared: &Shared, conn: &mut Conn, seq: u32, version: u8, req: Request) {
    let stats = &shared.slot_stats[conn.slot];
    stats.requests.fetch_add(1, Ordering::Relaxed);
    match req {
        Request::Next => {
            if shared.stop.load(Ordering::Acquire) {
                Response::Error(ErrorCode::ShuttingDown)
                    .encode_versioned(seq, version, &mut conn.out);
                conn.phase = Phase::Closing;
                return;
            }
            conn.phase = Phase::Executing;
            // A client increment enters the fabric at the head; on any
            // other cluster node the entry ports are interior cut
            // positions, so counting from them is refused.
            let value = match &shared.cluster {
                None => Ok(shared.backend.next_for(conn.process)),
                Some(c) if c.is_head() => {
                    c.ingress(conn.slot, conn.process).map_err(|_| ())
                }
                Some(_) => Err(()),
            };
            match value {
                Ok(value) => {
                    if let Some(rec) = &shared.recorder {
                        rec.record(conn.slot, value);
                    }
                    stats.ops.fetch_add(1, Ordering::Relaxed);
                    Response::Value { value }.encode_versioned(seq, version, &mut conn.out);
                }
                Err(_) => Response::Error(ErrorCode::Cluster)
                    .encode_versioned(seq, version, &mut conn.out),
            }
        }
        Request::NextBatch { n } => {
            if shared.stop.load(Ordering::Acquire) {
                Response::Error(ErrorCode::ShuttingDown)
                    .encode_versioned(seq, version, &mut conn.out);
                conn.phase = Phase::Closing;
                return;
            }
            if n == 0 || n > MAX_BATCH {
                Response::Error(ErrorCode::BadBatch)
                    .encode_versioned(seq, version, &mut conn.out);
                return;
            }
            // One batched backend call — a counting-network backend pays
            // one atomic per balancer for the whole batch — and one
            // widened recorder interval covering every value in it (PR 3's
            // interval stamping keeps that audit-sound).
            conn.phase = Phase::Executing;
            let values = match &shared.cluster {
                None => Ok(shared.backend.next_batch_for(conn.process, n as usize)),
                Some(c) if c.is_head() => {
                    c.ingress_batch(conn.slot, conn.process, n as usize).map_err(|_| ())
                }
                Some(_) => Err(()),
            };
            match values {
                Ok(values) => {
                    if let Some(rec) = &shared.recorder {
                        rec.record_batch(conn.slot, &values);
                    }
                    stats.ops.fetch_add(u64::from(n), Ordering::Relaxed);
                    stats.batches.fetch_add(1, Ordering::Relaxed);
                    Response::Batch { values }.encode_versioned(seq, version, &mut conn.out);
                }
                Err(_) => Response::Error(ErrorCode::Cluster)
                    .encode_versioned(seq, version, &mut conn.out),
            }
        }
        Request::Forward { token, port, node_seq } => {
            if shared.stop.load(Ordering::Acquire) {
                Response::Error(ErrorCode::ShuttingDown)
                    .encode_versioned(seq, version, &mut conn.out);
                conn.phase = Phase::Closing;
                return;
            }
            let resp = match &shared.cluster {
                Some(c) if node_seq as usize == c.node() && (port as usize) < c.fan() => {
                    conn.phase = Phase::Executing;
                    // Forwarded hops are counted in this node's op stats
                    // but never recorded: the head already recorded the
                    // client operation, and a second event per hop would
                    // fabricate duplicates in the merged cluster history.
                    match c.step(conn.slot, token, port as usize) {
                        Ok(value) => {
                            stats.ops.fetch_add(1, Ordering::Relaxed);
                            Response::Value { value }
                        }
                        Err(_) => Response::Error(ErrorCode::Cluster),
                    }
                }
                _ => Response::Error(ErrorCode::Cluster),
            };
            resp.encode_versioned(seq, version, &mut conn.out);
        }
        Request::ForwardBatch { token, port, node_seq, n } => {
            if shared.stop.load(Ordering::Acquire) {
                Response::Error(ErrorCode::ShuttingDown)
                    .encode_versioned(seq, version, &mut conn.out);
                conn.phase = Phase::Closing;
                return;
            }
            if n == 0 || n > MAX_BATCH {
                Response::Error(ErrorCode::BadBatch)
                    .encode_versioned(seq, version, &mut conn.out);
                return;
            }
            let resp = match &shared.cluster {
                Some(c) if node_seq as usize == c.node() && (port as usize) < c.fan() => {
                    conn.phase = Phase::Executing;
                    match c.step_batch(conn.slot, token, port as usize, n as usize) {
                        Ok(values) => {
                            stats.ops.fetch_add(u64::from(n), Ordering::Relaxed);
                            stats.batches.fetch_add(1, Ordering::Relaxed);
                            Response::Batch { values }
                        }
                        Err(_) => Response::Error(ErrorCode::Cluster),
                    }
                }
                _ => Response::Error(ErrorCode::Cluster),
            };
            resp.encode_versioned(seq, version, &mut conn.out);
        }
        Request::NodeInfo => {
            let shards = shared.recorder.as_ref().map_or(0, |r| r.shards() as u32);
            let info = match &shared.cluster {
                Some(c) => NodeInfo {
                    node: c.node() as u32,
                    nodes: c.nodes() as u32,
                    fan: c.fan() as u32,
                    shards,
                    head: c.head_addr(),
                },
                // A plain server is its own one-node cluster; fan 0 means
                // "not partitioned".
                None => NodeInfo {
                    node: 0,
                    nodes: 1,
                    fan: 0,
                    shards,
                    head: shared.advertise.clone(),
                },
            };
            Response::NodeInfo(info).encode_versioned(seq, version, &mut conn.out);
        }
        Request::Announce { node: _, head } => {
            // Learn the head's address once and relay it onward; repeat
            // announcements are acknowledged without re-propagating.
            if let Some(c) = &shared.cluster {
                if !head.is_empty() && c.head_addr().is_empty() {
                    c.set_head_addr(head);
                    let _ = c.announce_downstream(conn.slot);
                }
            }
            Response::Pong.encode_versioned(seq, version, &mut conn.out);
        }
        Request::Trace { max } => {
            let mut events = Vec::new();
            if let Some(rec) = &shared.recorder {
                let mut pending = shared.trace_pending.lock();
                if pending.is_empty() {
                    // Drain published events only: shards of closed
                    // connections were flushed in `close_conn`, and a live
                    // shard must not be flushed from this thread (the
                    // recorder's single-writer contract). Audit after the
                    // load-generating clients have disconnected.
                    rec.drain_each(|shard, enter_ns, exit_ns, value| {
                        pending.push_back(TraceEvent {
                            shard: shard as u32,
                            enter_ns,
                            exit_ns,
                            value,
                        });
                    });
                }
                let take = (max.min(MAX_TRACE_EVENTS) as usize).min(pending.len());
                events.extend(pending.drain(..take));
            }
            Response::Trace { events }.encode_versioned(seq, version, &mut conn.out);
        }
        Request::Frontier { shard, max } => {
            let resp = match &shared.recorder {
                Some(rec) if (shard as usize) < shared.audit_shards.len() => {
                    let sh = shard as usize;
                    let state = &mut *shared.audit_shards[sh].lock();
                    // Pull published events only — shards of closed
                    // connections were flushed in `close_conn`, a live
                    // shard's partial batch arrives on a later pull.
                    rec.pull_shard(sh, |enter_ns, exit_ns, value| {
                        state.monitor.observe(RawOp {
                            process: sh,
                            enter_ns,
                            exit_ns,
                            value,
                        });
                    });
                    let (dropped, skipped) = (rec.dropped_on(sh), rec.skipped_on(sh));
                    state.monitor.add_dropped(dropped - state.seen_dropped);
                    state.monitor.add_skipped(skipped - state.seen_skipped);
                    state.seen_dropped = dropped;
                    state.seen_skipped = skipped;
                    let mut f = state.monitor.take_frontier(false);
                    state.pending.extend(f.ops.drain(..));
                    let take =
                        (max.min(MAX_FRONTIER_OPS) as usize).min(state.pending.len());
                    f.ops = state.pending.drain(..take).collect();
                    if !state.pending.is_empty() {
                        // Ops held back for the next response bound what
                        // the peer may assume about the future: only the
                        // last *shipped* enter is a sound watermark.
                        f.watermark = f.ops.last().map(|op| op.enter_ns);
                    }
                    Response::Frontier { frontier: f }
                }
                // Auditing off: an empty, finished frontier tells the
                // puller it will never see events from this shard.
                None => Response::Frontier {
                    frontier: cnet_core::trace::ShardFrontier {
                        shard: shard as usize,
                        finished: true,
                        ..Default::default()
                    },
                },
                // Shard out of range on an audited server: a client bug.
                Some(_) => Response::Error(ErrorCode::Malformed),
            };
            resp.encode_versioned(seq, version, &mut conn.out);
        }
        Request::Ping => Response::Pong.encode_versioned(seq, version, &mut conn.out),
        Request::Stats => {
            Response::Stats(snapshot(shared)).encode_versioned(seq, version, &mut conn.out);
        }
        Request::Shutdown => {
            Response::Bye.encode_versioned(seq, version, &mut conn.out);
            shared.shutdown_requested.store(true, Ordering::Release);
            shared.gate_cv.notify_all();
            conn.phase = Phase::Closing;
        }
    }
}

/// Writes pending output until done or `WouldBlock`. Returns `false` on a
/// hard write error (dead peer — responses are lost, like a broken pipe
/// under the old design).
fn flush_out(conn: &mut Conn) -> bool {
    while conn.pending_out() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.out_pos += n,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(_) => return false,
        }
    }
    if conn.out_pos > 0 {
        conn.out.clear();
        conn.out_pos = 0;
    }
    true
}

/// Raises or lowers write interest to match pending output. Level
/// triggering makes spurious write events expensive at scale, so the
/// interest is only widened while a response is actually stuck.
fn update_interest(poller: &Poller, conn: &mut Conn) {
    let want_write = conn.pending_out();
    if want_write != conn.write_interest {
        let interest =
            if want_write { Interest::READABLE_WRITABLE } else { Interest::READABLE };
        if poller.modify(&conn.stream, conn.slot as u64, interest).is_ok() {
            conn.write_interest = want_write;
        }
    }
}

/// Deregisters, flushes the recorder shard, and frees the slot. Runs on
/// the owning reactor thread — the single-writer handoff point: the shard
/// is quiesced before the slot can be reused.
fn close_conn(shared: &Shared, poller: &Poller, conn: Conn) {
    let _ = poller.deregister(&conn.stream);
    if let Some(rec) = &shared.recorder {
        rec.flush(conn.slot);
    }
    release_slot(shared, conn.slot);
}

/// Final drain at reactor exit: one more read pass per connection so
/// frames already in flight are answered (increments see the stop flag
/// and get `ShuttingDown`), then a bounded-deadline flush and close.
fn drain_reactor(
    shared: &Arc<Shared>,
    poller: &Poller,
    mut conns: HashMap<u64, Conn>,
    scratch: &mut [u8],
) {
    for conn in conns.values_mut() {
        if conn.phase != Phase::Closing {
            loop {
                match conn.stream.read(scratch) {
                    Ok(0) => break,
                    Ok(n) => {
                        conn.decoder.extend(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
            process_frames(shared, conn);
        }
        // Bounded flush: responses are small, so this is one write in
        // practice; a stuck peer cannot hold shutdown hostage.
        let mut budget = 200;
        while conn.pending_out() && budget > 0 {
            if !flush_out(conn) {
                break;
            }
            if conn.pending_out() {
                std::thread::sleep(Duration::from_millis(1));
                budget -= 1;
            }
        }
    }
    for (_, conn) in conns.drain() {
        close_conn(shared, poller, conn);
    }
}

/// Frees slots of connections the acceptor handed over after the reactor
/// had already stopped (they were never registered, so closing the stream
/// by drop is all the teardown they need).
fn drain_inbox_slots(shared: &Shared, r: usize) {
    let leftovers: Vec<(usize, TcpStream)> =
        std::mem::take(&mut *shared.reactors[r].inbox.lock());
    for (slot, _stream) in leftovers {
        release_slot(shared, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{read_frame, write_request};
    use cnet_runtime::FetchAddCounter;

    fn fetch_add_server(cfg: ServerConfig) -> CounterServer {
        CounterServer::start("127.0.0.1:0", Arc::new(FetchAddCounter::new()), cfg).unwrap()
    }

    /// A minimal raw client for exercising the wire directly.
    struct Raw {
        stream: TcpStream,
        buf: Vec<u8>,
        seq: u32,
    }

    impl Raw {
        fn connect(addr: SocketAddr) -> Raw {
            Raw { stream: TcpStream::connect(addr).unwrap(), buf: Vec::new(), seq: 0 }
        }

        fn send(&mut self, req: &Request) -> u32 {
            let seq = self.seq;
            self.seq += 1;
            write_request(&mut self.stream, seq, req).unwrap();
            seq
        }

        fn recv(&mut self) -> (u32, Response) {
            let payload = read_frame(&mut self.stream, &mut self.buf).unwrap().unwrap();
            Response::decode(payload).unwrap()
        }
    }

    #[test]
    fn serves_values_and_batches_with_seq_echo() {
        let mut server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        let s0 = c.send(&Request::Next);
        assert_eq!(c.recv(), (s0, Response::Value { value: 0 }));
        let s1 = c.send(&Request::NextBatch { n: 4 });
        assert_eq!(c.recv(), (s1, Response::Batch { values: vec![1, 2, 3, 4] }));
        let s2 = c.send(&Request::Ping);
        assert_eq!(c.recv(), (s2, Response::Pong));
        let s3 = c.send(&Request::Stats);
        let (seq, resp) = c.recv();
        assert_eq!(seq, s3);
        let Response::Stats(stats) = resp else { panic!("expected stats, got {resp:?}") };
        assert_eq!(stats.ops, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 4); // the Stats request itself counted
        assert_eq!(stats.active_connections, 1);
        assert!(stats.reactor_wakeups > 0, "reactor must have woken to serve");
        server.shutdown();
        let final_stats = server.stats();
        assert_eq!(final_stats.total_connections, 1);
        assert_eq!(final_stats.ops, 5);
    }

    #[test]
    fn pipelined_requests_all_get_answers() {
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        // Burst of requests before reading anything.
        let seqs: Vec<u32> = (0..32).map(|_| c.send(&Request::Next)).collect();
        let mut values = Vec::new();
        for expected_seq in seqs {
            let (seq, resp) = c.recv();
            assert_eq!(seq, expected_seq);
            let Response::Value { value } = resp else { panic!("{resp:?}") };
            values.push(value);
        }
        values.sort_unstable();
        assert_eq!(values, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn reject_backpressure_answers_busy() {
        let server = fetch_add_server(ServerConfig {
            max_connections: 1,
            backpressure: Backpressure::Reject,
            processes: 1,
            reactors: 1,
        });
        let mut first = Raw::connect(server.local_addr());
        let s = first.send(&Request::Next);
        assert_eq!(first.recv(), (s, Response::Value { value: 0 }));
        // Second connection: refused with Busy.
        let mut second = Raw::connect(server.local_addr());
        let (_, resp) = second.recv();
        assert_eq!(resp, Response::Error(ErrorCode::Busy));
        // The slot frees once the first client leaves.
        drop(first.stream);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut served = false;
        while std::time::Instant::now() < deadline {
            let mut c = Raw::connect(server.local_addr());
            c.send(&Request::Ping);
            if let (_, Response::Pong) = c.recv() {
                served = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(served, "slot never freed after client disconnect");
        assert!(server.stats().rejected_connections >= 1);
    }

    #[test]
    fn block_backpressure_defers_the_accept_until_a_slot_frees() {
        let server = fetch_add_server(ServerConfig {
            max_connections: 1,
            backpressure: Backpressure::Block,
            processes: 1,
            reactors: 1,
        });
        let addr = server.local_addr();
        let mut first = Raw::connect(addr);
        let s = first.send(&Request::Next);
        assert_eq!(first.recv(), (s, Response::Value { value: 0 }));
        // Second connection parks; it is served after the first leaves.
        let waiter = std::thread::spawn(move || {
            let mut c = Raw::connect(addr);
            c.send(&Request::Next);
            c.recv()
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(first.stream);
        let (_, resp) = waiter.join().unwrap();
        assert_eq!(resp, Response::Value { value: 1 });
        assert!(
            server.stats().deferred_accepts >= 1,
            "the parked accept must be counted as deferred"
        );
    }

    #[test]
    fn malformed_frames_get_an_error_and_a_close() {
        use std::io::Read as _;
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        // A syntactically valid frame with a bogus opcode.
        let mut frame = Vec::new();
        Request::Ping.encode(3, &mut frame);
        frame[5] = 0x6f; // corrupt the opcode byte (len(4) + version(1))
        c.stream.write_all(&frame).unwrap();
        let (_, resp) = c.recv();
        assert_eq!(resp, Response::Error(ErrorCode::Malformed));
        // The server closed the connection after the error.
        let mut rest = Vec::new();
        c.stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    #[test]
    fn corrupt_framing_closes_the_connection() {
        use std::io::Read as _;
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        // A length word over MAX_FRAME: unrecoverable framing corruption.
        c.stream
            .write_all(&(((crate::wire::MAX_FRAME + 1) as u32).to_le_bytes()))
            .unwrap();
        let (_, resp) = c.recv();
        assert_eq!(resp, Response::Error(ErrorCode::Malformed));
        let mut rest = Vec::new();
        c.stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    #[test]
    fn shutdown_frame_drains_the_server() {
        use std::io::Read as _;
        let mut server = fetch_add_server(ServerConfig::default());
        assert!(!server.shutdown_requested());
        let mut c = Raw::connect(server.local_addr());
        let s0 = c.send(&Request::Next);
        assert_eq!(c.recv(), (s0, Response::Value { value: 0 }));
        let s1 = c.send(&Request::Shutdown);
        assert_eq!(c.recv(), (s1, Response::Bye));
        server.wait_for_shutdown_request();
        assert!(server.shutdown_requested());
        server.shutdown();
        // Fresh connections are no longer accepted/served.
        if let Ok(mut stream) = TcpStream::connect(server.local_addr()) {
            let _ = write_request(&mut stream, 0, &Request::Ping);
            let mut rest = Vec::new();
            let _ = stream.read_to_end(&mut rest);
            assert!(rest.is_empty(), "a drained server must not serve");
        }
    }

    #[test]
    fn bad_batch_sizes_are_refused_without_closing() {
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        let s0 = c.send(&Request::NextBatch { n: 0 });
        assert_eq!(c.recv(), (s0, Response::Error(ErrorCode::BadBatch)));
        let s1 = c.send(&Request::NextBatch { n: MAX_BATCH + 1 });
        assert_eq!(c.recv(), (s1, Response::Error(ErrorCode::BadBatch)));
        // Connection still usable.
        let s2 = c.send(&Request::Next);
        assert_eq!(c.recv(), (s2, Response::Value { value: 0 }));
    }

    #[test]
    fn recorder_sees_every_served_increment() {
        let recorder = Arc::new(TraceRecorder::new(4, 1024));
        let mut server = CounterServer::with_recorder(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            Arc::clone(&recorder),
            ServerConfig { max_connections: 4, ..ServerConfig::default() },
        )
        .unwrap();
        let mut c = Raw::connect(server.local_addr());
        let s = c.send(&Request::NextBatch { n: 100 });
        let (_, resp) = c.recv();
        assert_eq!(s, 0);
        let Response::Batch { values } = resp else { panic!("{resp:?}") };
        assert_eq!(values.len(), 100);
        drop(c);
        server.shutdown();
        let mut auditor = cnet_core::trace::StreamingAuditor::new();
        cnet_runtime::recorder::drain_remaining(&recorder, &mut auditor);
        assert_eq!(auditor.operations(), 100);
        assert!(auditor.is_clean(), "{}", auditor.summary());
    }

    #[test]
    fn with_recorder_validates_shard_count() {
        let recorder = Arc::new(TraceRecorder::new(2, 16));
        let err = CounterServer::with_recorder(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            recorder,
            ServerConfig { max_connections: 8, ..ServerConfig::default() },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn many_reactors_shard_connections_disjointly() {
        // More reactors than connections is clamped; more connections
        // than reactors shards them. Either way every client is served.
        let server = fetch_add_server(ServerConfig {
            max_connections: 8,
            backpressure: Backpressure::Reject,
            processes: 8,
            reactors: 3,
        });
        let mut clients: Vec<Raw> =
            (0..8).map(|_| Raw::connect(server.local_addr())).collect();
        let seqs: Vec<u32> = clients.iter_mut().map(|c| c.send(&Request::Next)).collect();
        let mut values = Vec::new();
        for (c, s) in clients.iter_mut().zip(seqs) {
            let (seq, resp) = c.recv();
            assert_eq!(seq, s);
            let Response::Value { value } = resp else { panic!("{resp:?}") };
            values.push(value);
        }
        values.sort_unstable();
        assert_eq!(values, (0..8).collect::<Vec<u64>>());
    }

    /// The bytes a pre-cluster (protocol v1) client actually puts on the
    /// wire: `[len][version=1][opcode][seq]` + body.
    fn v1_frame(opcode: u8, seq: u32, body: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&((6 + body.len()) as u32).to_le_bytes());
        f.push(1); // protocol version 1
        f.push(opcode);
        f.extend_from_slice(&seq.to_le_bytes());
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn v1_clients_are_answered_in_their_own_dialect() {
        // Regression: the server must answer a v1 Ping instead of
        // dropping the connection, and the response must itself be a v1
        // frame so the old client's strict decoder accepts it.
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        c.stream.write_all(&v1_frame(0x03, 7, &[])).unwrap();
        let payload = read_frame(&mut c.stream, &mut c.buf).unwrap().unwrap();
        assert_eq!(payload[0], 1, "response version must echo the request's");
        assert_eq!(Response::decode(payload).unwrap(), (7, Response::Pong));
        // Counting works too, still stamped v1.
        c.stream.write_all(&v1_frame(0x01, 8, &[])).unwrap();
        let payload = read_frame(&mut c.stream, &mut c.buf).unwrap().unwrap();
        assert_eq!(payload[0], 1);
        assert_eq!(
            Response::decode(payload).unwrap(),
            (8, Response::Value { value: 0 })
        );
        // A cluster opcode in a v1 frame is malformed: old clients never
        // see half-understood cluster traffic.
        c.stream.write_all(&v1_frame(0x08, 9, &[])).unwrap();
        let (_, resp) = c.recv();
        assert_eq!(resp, Response::Error(ErrorCode::Malformed));
    }

    #[test]
    fn a_plain_server_answers_node_info_as_a_one_node_cluster() {
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        let s = c.send(&Request::NodeInfo);
        let (seq, resp) = c.recv();
        assert_eq!(seq, s);
        let Response::NodeInfo(info) = resp else { panic!("{resp:?}") };
        assert_eq!((info.node, info.nodes, info.fan), (0, 1, 0));
        assert_eq!(info.head, server.local_addr().to_string());
    }

    #[test]
    fn trace_chunks_drain_the_recorder_over_the_wire() {
        let recorder = Arc::new(TraceRecorder::new(4, 1024));
        let server = CounterServer::with_recorder(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            Arc::clone(&recorder),
            ServerConfig { max_connections: 4, ..ServerConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        {
            let mut c = Raw::connect(addr);
            c.send(&Request::NextBatch { n: 10 });
            c.recv();
        } // disconnect flushes the slot's shard
        // Poll until the reactor has processed the close (the flush runs
        // in close_conn on the reactor thread).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < 10 && std::time::Instant::now() < deadline {
            let mut c = Raw::connect(addr);
            // Chunked fetch: 4 events at a time.
            loop {
                c.send(&Request::Trace { max: 4 });
                let (_, resp) = c.recv();
                let Response::Trace { events } = resp else { panic!("{resp:?}") };
                if events.is_empty() {
                    break;
                }
                assert!(events.len() <= 4);
                got.extend(events);
            }
            if got.len() < 10 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        let mut values: Vec<u64> = got.iter().map(|e| e.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
        assert!(got.iter().all(|e| e.exit_ns >= e.enter_ns));
    }

    #[test]
    fn frontier_chunks_carry_the_partial_verdict_over_the_wire() {
        // Sampling on (1-in-2): the frontier must carry skip accounting.
        let recorder = Arc::new(TraceRecorder::with_sampling(4, 1024, 2));
        let server = CounterServer::with_recorder(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            Arc::clone(&recorder),
            ServerConfig { max_connections: 4, ..ServerConfig::default() },
        )
        .unwrap();
        let addr = server.local_addr();
        {
            // Singles, not a batch: sampling gates whole batches together,
            // so only the single path exercises the 1-in-k alternation.
            let mut c = Raw::connect(addr);
            for _ in 0..20 {
                c.send(&Request::Next);
                c.recv();
            }
        } // disconnect flushes the slot's shard (and settles the window)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut ops = Vec::new();
        let mut skipped = 0;
        while ops.len() < 10 && std::time::Instant::now() < deadline {
            let mut c = Raw::connect(addr);
            for shard in 0..4u32 {
                // Chunked fetch: 4 ops at a time until the shard runs dry.
                loop {
                    c.send(&Request::Frontier { shard, max: 4 });
                    let (_, resp) = c.recv();
                    let Response::Frontier { frontier } = resp else { panic!("{resp:?}") };
                    assert_eq!(frontier.shard, shard as usize);
                    assert!(frontier.ops.len() <= 4);
                    skipped = skipped.max(frontier.skipped);
                    if frontier.ops.is_empty() {
                        break;
                    }
                    ops.extend(frontier.ops);
                }
            }
            if ops.len() < 10 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        // 20 increments at 1-in-2 sampling: 10 recorded, 10 skipped.
        let mut values: Vec<u64> = ops.iter().map(|op| op.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..20).filter(|v| v % 2 == 1).collect::<Vec<u64>>());
        assert_eq!(skipped, 10);
        // Out-of-range shard on an audited server is refused.
        let mut c = Raw::connect(addr);
        c.send(&Request::Frontier { shard: 99, max: 4 });
        let (_, resp) = c.recv();
        assert!(matches!(resp, Response::Error(ErrorCode::Malformed)), "{resp:?}");
    }

    #[test]
    fn frontier_without_a_recorder_reports_a_finished_empty_shard() {
        let server = CounterServer::start(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            ServerConfig { max_connections: 2, ..ServerConfig::default() },
        )
        .unwrap();
        let mut c = Raw::connect(server.local_addr());
        c.send(&Request::Frontier { shard: 0, max: 16 });
        let (_, resp) = c.recv();
        let Response::Frontier { frontier } = resp else { panic!("{resp:?}") };
        assert!(frontier.finished && frontier.ops.is_empty());
    }

    #[test]
    fn a_two_node_cluster_serves_the_whole_permutation() {
        use crate::client::RemoteCounter;
        use cnet_topology::construct::bitonic;

        let net = bitonic(8).unwrap();
        let cfg = ServerConfig { max_connections: 8, processes: 8, reactors: 2, ..ServerConfig::default() };
        // Tail first (it owns the counters and needs no peer), then the
        // head pointed at it — the verify-script startup order.
        let tail = Arc::new(ClusterNode::new(&net, 1, 2, &[], cfg.max_connections).unwrap());
        let tail_server =
            CounterServer::start_cluster("127.0.0.1:0", Arc::clone(&tail), None, cfg).unwrap();
        let peers = vec![tail_server.local_addr().to_string()];
        let head = Arc::new(ClusterNode::new(&net, 0, 2, &peers, cfg.max_connections).unwrap());
        let head_server =
            CounterServer::start_cluster("127.0.0.1:0", Arc::clone(&head), None, cfg).unwrap();

        let client = RemoteCounter::connect(head_server.local_addr(), 2).unwrap();
        let mut values = Vec::new();
        for i in 0..64 {
            values.push(client.try_next(i % 8).unwrap());
        }
        values.extend(client.next_batch(3, 100).unwrap());
        values.sort_unstable();
        assert_eq!(values, (0..164).collect::<Vec<u64>>(), "cluster permutation broke");

        // NodeInfo from both nodes; the tail learns the head's address
        // from the startup announcement.
        let info = client.node_info().unwrap();
        assert_eq!((info.node, info.nodes, info.fan), (0, 2, 8));
        let tail_client = RemoteCounter::connect(tail_server.local_addr(), 1).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut tail_info = tail_client.node_info().unwrap();
        while tail_info.head.is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            tail_info = tail_client.node_info().unwrap();
        }
        assert_eq!((tail_info.node, tail_info.nodes), (1, 2));
        assert_eq!(tail_info.head, head_server.local_addr().to_string());

        // Routed connect against the tail lands on the head and counts.
        let routed = RemoteCounter::connect_routed(tail_server.local_addr(), 1).unwrap();
        assert_eq!(routed.addr(), head_server.local_addr());
        assert_eq!(routed.try_next(0).unwrap(), 164);

        // A client Next against the tail is refused: its entry ports are
        // interior cut positions.
        assert!(tail_client.try_next(0).is_err());
    }

    #[test]
    fn forward_hops_validate_their_target_node() {
        use cnet_topology::construct::bitonic;
        let net = bitonic(4).unwrap();
        let tail = Arc::new(ClusterNode::new(&net, 1, 2, &[], 2).unwrap());
        let server = CounterServer::start_cluster(
            "127.0.0.1:0",
            tail,
            None,
            ServerConfig::default(),
        )
        .unwrap();
        let mut c = Raw::connect(server.local_addr());
        // Wrong node_seq: this node is 1, not 2.
        let s = c.send(&Request::Forward { token: 0, port: 0, node_seq: 2 });
        assert_eq!(c.recv(), (s, Response::Error(ErrorCode::Cluster)));
        // Out-of-range cut position.
        let s = c.send(&Request::Forward { token: 0, port: 99, node_seq: 1 });
        assert_eq!(c.recv(), (s, Response::Error(ErrorCode::Cluster)));
        // A correct hop counts.
        let s = c.send(&Request::Forward { token: 0, port: 2, node_seq: 1 });
        let (seq, resp) = c.recv();
        assert_eq!(seq, s);
        assert!(matches!(resp, Response::Value { .. }), "{resp:?}");
        // Forwarding to a plain (non-cluster) server is refused too.
        let plain = fetch_add_server(ServerConfig::default());
        let mut p = Raw::connect(plain.local_addr());
        let s = p.send(&Request::Forward { token: 0, port: 0, node_seq: 0 });
        assert_eq!(p.recv(), (s, Response::Error(ErrorCode::Cluster)));
    }

    #[test]
    fn slow_reader_gets_every_pipelined_response() {
        // Force the Writing phase: pipeline enough batch responses to
        // overrun the socket buffer while the client is not reading, then
        // read everything back. Exercises partial flush + write interest.
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        let burst = 64u32;
        let per = 4096u32;
        let seqs: Vec<u32> =
            (0..burst).map(|_| c.send(&Request::NextBatch { n: per })).collect();
        std::thread::sleep(Duration::from_millis(100)); // let responses pile up
        let mut all = Vec::new();
        for s in seqs {
            let (seq, resp) = c.recv();
            assert_eq!(seq, s);
            let Response::Batch { values } = resp else { panic!("{resp:?}") };
            assert_eq!(values.len(), per as usize);
            all.extend(values);
        }
        all.sort_unstable();
        let want: Vec<u64> = (0..u64::from(burst * per)).collect();
        assert_eq!(all, want);
    }
}
