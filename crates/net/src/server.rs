//! The sharded thread-per-connection counting server.
//!
//! # Threading model
//!
//! One **acceptor** thread owns the listening socket (non-blocking, polled
//! so shutdown is never stuck in `accept`). Each accepted connection is
//! assigned a **slot** — an index below
//! [`ServerConfig::max_connections`] — and served by its own thread: a
//! read-decode-serve-write loop over buffered halves of the stream.
//! Requests already buffered are served before the writer flushes, so a
//! pipelining client pays one flush per burst, not per request.
//!
//! A connection's slot doubles as its identity everywhere else:
//!
//! * **process id** — the backend sees `slot % processes`, so a
//!   counting-network backend routes each connection to a stable input
//!   wire, exactly like a thread in the shared-memory runtime;
//! * **stats shard** — each slot owns a cache-padded statistics record
//!   ([`CounterServer::stats`] aggregates them on demand), so serving
//!   threads never contend on bookkeeping;
//! * **recorder shard** — with a [`TraceRecorder`] attached, the slot is
//!   the recorder shard, preserving the recorder's single-writer contract
//!   (a slot is freed only after its handler quiesces and flushes).
//!
//! # Backpressure
//!
//! At the connection limit the acceptor either **rejects** (answers
//! [`ErrorCode::Busy`] and closes — the client sees a clean refusal, not a
//! hang) or **blocks** (holds the fresh connection unserved until a slot
//! frees), per [`Backpressure`].
//!
//! # Shutdown
//!
//! [`CounterServer::shutdown`] (also run on drop) drains gracefully: stop
//! accepting, shut down the read half of every live connection (handlers
//! answer what they have already read, then see end-of-stream and exit),
//! join every thread via the shared [`Drain`] idiom. A client can trigger
//! the same thing remotely with a [`Request::Shutdown`] frame — the server
//! acknowledges with [`Response::Bye`] and wakes whoever is parked in
//! [`CounterServer::wait_for_shutdown_request`].

use crate::wire::{
    read_frame, write_response, ErrorCode, Request, Response, StatsSnapshot, MAX_BATCH,
};
use cnet_runtime::drain::Drain;
use cnet_runtime::{ProcessCounter, TraceRecorder};
use cnet_util::sync::{CachePadded, Mutex};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Duration;

/// What the acceptor does when every connection slot is taken.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Answer [`ErrorCode::Busy`] and close the new connection.
    #[default]
    Reject,
    /// Park the new connection until a slot frees (or the server stops).
    Block,
}

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Connection slots: the maximum number of concurrently served
    /// connections, and the recorder-shard space when auditing.
    pub max_connections: usize,
    /// Policy at the connection limit.
    pub backpressure: Backpressure,
    /// Logical process-id space: slot `s` performs backend operations as
    /// process `s % processes` (match the backend's fan-in for
    /// counting-network backends).
    pub processes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_connections: 64, backpressure: Backpressure::Reject, processes: 8 }
    }
}

/// Per-slot statistics, one cache line each so serving threads never share.
#[derive(Debug, Default)]
struct SlotStats {
    requests: AtomicU64,
    ops: AtomicU64,
    batches: AtomicU64,
}

/// Slot allocation and shutdown signalling, under one lock + condvar.
#[derive(Debug)]
struct Gate {
    free: Vec<usize>,
    active: usize,
}

struct Shared {
    backend: Arc<dyn ProcessCounter + Send + Sync>,
    recorder: Option<Arc<TraceRecorder>>,
    cfg: ServerConfig,
    /// Stop serving: acceptor exits, handlers refuse increments.
    stop: AtomicBool,
    /// A `Shutdown` frame arrived (remote shutdown request).
    shutdown_requested: AtomicBool,
    gate: Mutex<Gate>,
    gate_cv: Condvar,
    /// Live stream handles per slot, for read-half shutdown at drain time.
    conns: Mutex<Vec<Option<TcpStream>>>,
    /// Per-connection threads, joined at shutdown.
    workers: Mutex<Drain>,
    slot_stats: Box<[CachePadded<SlotStats>]>,
    total_connections: CachePadded<AtomicU64>,
    rejected_connections: CachePadded<AtomicU64>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

/// A running counting service over any [`ProcessCounter`] backend.
///
/// # Example
///
/// ```
/// use cnet_net::server::{CounterServer, ServerConfig};
/// use cnet_net::client::RemoteCounter;
/// use cnet_runtime::{FetchAddCounter, ProcessCounter};
/// use std::sync::Arc;
///
/// let mut server = CounterServer::start(
///     "127.0.0.1:0",
///     Arc::new(FetchAddCounter::new()),
///     ServerConfig::default(),
/// )?;
/// let client = RemoteCounter::connect(server.local_addr(), 1)?;
/// assert_eq!(client.next_for(0), 0);
/// assert_eq!(client.next_for(0), 1);
/// server.shutdown();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct CounterServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Drain,
    down: bool,
}

impl CounterServer {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`local_addr`](Self::local_addr)) and starts serving `backend`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn start(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ProcessCounter + Send + Sync>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        CounterServer::start_inner(addr, backend, None, cfg)
    }

    /// Like [`start`](Self::start), additionally recording every increment
    /// served into `recorder` (slot `s` writes shard `s`), so the online
    /// monitors can audit the service across the socket boundary.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; fails with `InvalidInput` if the recorder
    /// has fewer shards than `cfg.max_connections`.
    pub fn with_recorder(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ProcessCounter + Send + Sync>,
        recorder: Arc<TraceRecorder>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        if recorder.shards() < cfg.max_connections {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "recorder has {} shards for {} connection slots",
                    recorder.shards(),
                    cfg.max_connections
                ),
            ));
        }
        CounterServer::start_inner(addr, backend, Some(recorder), cfg)
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn ProcessCounter + Send + Sync>,
        recorder: Option<Arc<TraceRecorder>>,
        cfg: ServerConfig,
    ) -> io::Result<CounterServer> {
        let cfg = ServerConfig {
            max_connections: cfg.max_connections.max(1),
            processes: cfg.processes.max(1),
            ..cfg
        };
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            recorder,
            cfg,
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            gate: Mutex::new(Gate {
                free: (0..cfg.max_connections).rev().collect(),
                active: 0,
            }),
            gate_cv: Condvar::new(),
            conns: Mutex::new((0..cfg.max_connections).map(|_| None).collect()),
            workers: Mutex::new(Drain::new()),
            slot_stats: (0..cfg.max_connections).map(|_| CachePadded::default()).collect(),
            total_connections: CachePadded::new(AtomicU64::new(0)),
            rejected_connections: CachePadded::new(AtomicU64::new(0)),
        });
        let mut acceptor = Drain::with_capacity(1);
        let shared2 = Arc::clone(&shared);
        acceptor.push(std::thread::spawn(move || accept_loop(&shared2, &listener)));
        Ok(CounterServer { addr, shared, acceptor, down: false })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The recorder increments are streamed into, when auditing.
    pub fn recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.shared.recorder.as_ref()
    }

    /// Aggregates the per-slot statistics into one snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.shared)
    }

    /// Whether a client has sent a [`Request::Shutdown`] frame.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::Acquire)
    }

    /// Blocks until a remote shutdown request arrives (or the server is
    /// shut down locally).
    pub fn wait_for_shutdown_request(&self) {
        let mut gate = self.shared.gate.lock();
        while !self.shared.shutdown_requested.load(Ordering::Acquire)
            && !self.shared.stop.load(Ordering::Acquire)
        {
            gate = self
                .shared
                .gate_cv
                .wait_timeout(gate, Duration::from_millis(100))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// Drains and stops the server: no new connections, every handler
    /// answers the requests it has already read and exits, every thread is
    /// joined. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        self.shared.stop.store(true, Ordering::Release);
        self.shared.gate_cv.notify_all();
        self.acceptor.join_all();
        // End-of-stream every live connection's read half: blocked readers
        // wake with EOF, pending responses still flush out the write half.
        for conn in self.shared.conns.lock().iter().flatten() {
            let _ = conn.shutdown(SockShutdown::Read);
        }
        self.shared.workers.lock().join_all();
    }
}

impl Drop for CounterServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let mut s = StatsSnapshot {
        active_connections: shared.gate.lock().active as u64,
        total_connections: shared.total_connections.load(Ordering::Relaxed),
        rejected_connections: shared.rejected_connections.load(Ordering::Relaxed),
        ..StatsSnapshot::default()
    };
    for slot in shared.slot_stats.iter() {
        s.requests += slot.requests.load(Ordering::Relaxed);
        s.ops += slot.ops.load(Ordering::Relaxed);
        s.batches += slot.batches.load(Ordering::Relaxed);
    }
    s
}

/// Acquires a connection slot per the backpressure policy; `None` means
/// the connection should be refused (or the server is stopping).
fn acquire_slot(shared: &Shared) -> Option<usize> {
    let mut gate = shared.gate.lock();
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return None;
        }
        if let Some(slot) = gate.free.pop() {
            gate.active += 1;
            return Some(slot);
        }
        match shared.cfg.backpressure {
            Backpressure::Reject => return None,
            Backpressure::Block => {
                gate = shared
                    .gate_cv
                    .wait_timeout(gate, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
    }
}

fn release_slot(shared: &Shared, slot: usize) {
    shared.conns.lock()[slot] = None;
    let mut gate = shared.gate.lock();
    gate.free.push(slot);
    gate.active -= 1;
    drop(gate);
    shared.gate_cv.notify_all();
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                match acquire_slot(shared) {
                    Some(slot) => {
                        shared.total_connections.fetch_add(1, Ordering::Relaxed);
                        if let Ok(clone) = stream.try_clone() {
                            shared.conns.lock()[slot] = Some(clone);
                        }
                        let worker_shared = Arc::clone(shared);
                        let handle = std::thread::spawn(move || {
                            let _ = serve_connection(&worker_shared, slot, stream);
                            if let Some(rec) = &worker_shared.recorder {
                                rec.flush(slot);
                            }
                            release_slot(&worker_shared, slot);
                        });
                        shared.workers.lock().push(handle);
                    }
                    None if shared.stop.load(Ordering::Acquire) => break,
                    None => {
                        shared.rejected_connections.fetch_add(1, Ordering::Relaxed);
                        // Best-effort refusal so the client sees Busy, not
                        // a silent close.
                        let mut w = BufWriter::new(stream);
                        let _ = write_response(&mut w, 0, &Response::Error(ErrorCode::Busy));
                        let _ = w.flush();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection until end-of-stream, a malformed frame, or
/// shutdown. Buffered requests are served before the writer flushes, so
/// pipelined bursts cost one flush.
fn serve_connection(shared: &Shared, slot: usize, stream: TcpStream) -> io::Result<()> {
    let process = slot % shared.cfg.processes;
    let stats = &shared.slot_stats[slot];
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut buf = Vec::new();
    loop {
        // Flush only when no request is already buffered (a non-blocking
        // check — `fill_buf` would park before the responses went out):
        // the pipelining amortization point.
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
        let Some(payload) = read_frame(&mut reader, &mut buf)? else {
            break; // clean close
        };
        let (seq, req) = match Request::decode(payload) {
            Ok(decoded) => decoded,
            Err(_) => {
                // Cannot trust anything in the frame, including its seq.
                write_response(&mut writer, 0, &Response::Error(ErrorCode::Malformed))?;
                writer.flush()?;
                break;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Next => {
                if shared.stop.load(Ordering::Acquire) {
                    write_response(&mut writer, seq, &Response::Error(ErrorCode::ShuttingDown))?;
                    writer.flush()?;
                    break;
                }
                let value = shared.backend.next_for(process);
                if let Some(rec) = &shared.recorder {
                    rec.record(slot, value);
                }
                stats.ops.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, seq, &Response::Value { value })?;
            }
            Request::NextBatch { n } => {
                if shared.stop.load(Ordering::Acquire) {
                    write_response(&mut writer, seq, &Response::Error(ErrorCode::ShuttingDown))?;
                    writer.flush()?;
                    break;
                }
                if n == 0 || n > MAX_BATCH {
                    write_response(&mut writer, seq, &Response::Error(ErrorCode::BadBatch))?;
                    continue;
                }
                // One batched backend call — a counting-network backend
                // pays one atomic per balancer for the whole batch — and
                // one widened recorder interval covering every value in it
                // (PR 3's interval stamping keeps that audit-sound).
                let values = shared.backend.next_batch_for(process, n as usize);
                if let Some(rec) = &shared.recorder {
                    rec.record_batch(slot, &values);
                }
                stats.ops.fetch_add(u64::from(n), Ordering::Relaxed);
                stats.batches.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, seq, &Response::Batch { values })?;
            }
            Request::Ping => write_response(&mut writer, seq, &Response::Pong)?,
            Request::Stats => {
                write_response(&mut writer, seq, &Response::Stats(snapshot(shared)))?
            }
            Request::Shutdown => {
                write_response(&mut writer, seq, &Response::Bye)?;
                writer.flush()?;
                shared.shutdown_requested.store(true, Ordering::Release);
                shared.gate_cv.notify_all();
                break;
            }
        }
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::write_request;
    use cnet_runtime::FetchAddCounter;
    use std::io::Read;

    fn fetch_add_server(cfg: ServerConfig) -> CounterServer {
        CounterServer::start("127.0.0.1:0", Arc::new(FetchAddCounter::new()), cfg).unwrap()
    }

    /// A minimal raw client for exercising the wire directly.
    struct Raw {
        stream: TcpStream,
        buf: Vec<u8>,
        seq: u32,
    }

    impl Raw {
        fn connect(addr: SocketAddr) -> Raw {
            Raw { stream: TcpStream::connect(addr).unwrap(), buf: Vec::new(), seq: 0 }
        }

        fn send(&mut self, req: &Request) -> u32 {
            let seq = self.seq;
            self.seq += 1;
            write_request(&mut self.stream, seq, req).unwrap();
            seq
        }

        fn recv(&mut self) -> (u32, Response) {
            let payload = read_frame(&mut self.stream, &mut self.buf).unwrap().unwrap();
            Response::decode(payload).unwrap()
        }
    }

    #[test]
    fn serves_values_and_batches_with_seq_echo() {
        let mut server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        let s0 = c.send(&Request::Next);
        assert_eq!(c.recv(), (s0, Response::Value { value: 0 }));
        let s1 = c.send(&Request::NextBatch { n: 4 });
        assert_eq!(c.recv(), (s1, Response::Batch { values: vec![1, 2, 3, 4] }));
        let s2 = c.send(&Request::Ping);
        assert_eq!(c.recv(), (s2, Response::Pong));
        let s3 = c.send(&Request::Stats);
        let (seq, resp) = c.recv();
        assert_eq!(seq, s3);
        let Response::Stats(stats) = resp else { panic!("expected stats, got {resp:?}") };
        assert_eq!(stats.ops, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.requests, 4); // the Stats request itself counted
        assert_eq!(stats.active_connections, 1);
        server.shutdown();
        let final_stats = server.stats();
        assert_eq!(final_stats.total_connections, 1);
        assert_eq!(final_stats.ops, 5);
    }

    #[test]
    fn pipelined_requests_all_get_answers() {
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        // Burst of requests before reading anything.
        let seqs: Vec<u32> = (0..32).map(|_| c.send(&Request::Next)).collect();
        let mut values = Vec::new();
        for expected_seq in seqs {
            let (seq, resp) = c.recv();
            assert_eq!(seq, expected_seq);
            let Response::Value { value } = resp else { panic!("{resp:?}") };
            values.push(value);
        }
        values.sort_unstable();
        assert_eq!(values, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn reject_backpressure_answers_busy() {
        let server = fetch_add_server(ServerConfig {
            max_connections: 1,
            backpressure: Backpressure::Reject,
            processes: 1,
        });
        let mut first = Raw::connect(server.local_addr());
        let s = first.send(&Request::Next);
        assert_eq!(first.recv(), (s, Response::Value { value: 0 }));
        // Second connection: refused with Busy.
        let mut second = Raw::connect(server.local_addr());
        let (_, resp) = second.recv();
        assert_eq!(resp, Response::Error(ErrorCode::Busy));
        // The slot frees once the first client leaves.
        drop(first.stream);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut served = false;
        while std::time::Instant::now() < deadline {
            let mut c = Raw::connect(server.local_addr());
            c.send(&Request::Ping);
            if let (_, Response::Pong) = c.recv() {
                served = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(served, "slot never freed after client disconnect");
        assert!(server.stats().rejected_connections >= 1);
    }

    #[test]
    fn block_backpressure_serves_once_a_slot_frees() {
        let server = fetch_add_server(ServerConfig {
            max_connections: 1,
            backpressure: Backpressure::Block,
            processes: 1,
        });
        let addr = server.local_addr();
        let mut first = Raw::connect(addr);
        let s = first.send(&Request::Next);
        assert_eq!(first.recv(), (s, Response::Value { value: 0 }));
        // Second connection parks; it is served after the first leaves.
        let waiter = std::thread::spawn(move || {
            let mut c = Raw::connect(addr);
            c.send(&Request::Next);
            c.recv()
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(first.stream);
        let (_, resp) = waiter.join().unwrap();
        assert_eq!(resp, Response::Value { value: 1 });
    }

    #[test]
    fn malformed_frames_get_an_error_and_a_close() {
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        // A syntactically valid frame with a bogus opcode.
        let mut frame = Vec::new();
        Request::Ping.encode(3, &mut frame);
        frame[5] = 0x6f; // corrupt the opcode byte (len(4) + version(1))
        use std::io::Write as _;
        c.stream.write_all(&frame).unwrap();
        let (_, resp) = c.recv();
        assert_eq!(resp, Response::Error(ErrorCode::Malformed));
        // The server closed the connection after the error.
        let mut rest = Vec::new();
        c.stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
    }

    #[test]
    fn shutdown_frame_drains_the_server() {
        let mut server = fetch_add_server(ServerConfig::default());
        assert!(!server.shutdown_requested());
        let mut c = Raw::connect(server.local_addr());
        let s0 = c.send(&Request::Next);
        assert_eq!(c.recv(), (s0, Response::Value { value: 0 }));
        let s1 = c.send(&Request::Shutdown);
        assert_eq!(c.recv(), (s1, Response::Bye));
        server.wait_for_shutdown_request();
        assert!(server.shutdown_requested());
        server.shutdown();
        // Fresh connections are no longer accepted/served.
        if let Ok(mut stream) = TcpStream::connect(server.local_addr()) {
            let _ = write_request(&mut stream, 0, &Request::Ping);
            let mut rest = Vec::new();
            let _ = stream.read_to_end(&mut rest);
            assert!(rest.is_empty(), "a drained server must not serve");
        }
    }

    #[test]
    fn bad_batch_sizes_are_refused_without_closing() {
        let server = fetch_add_server(ServerConfig::default());
        let mut c = Raw::connect(server.local_addr());
        let s0 = c.send(&Request::NextBatch { n: 0 });
        assert_eq!(c.recv(), (s0, Response::Error(ErrorCode::BadBatch)));
        let s1 = c.send(&Request::NextBatch { n: MAX_BATCH + 1 });
        assert_eq!(c.recv(), (s1, Response::Error(ErrorCode::BadBatch)));
        // Connection still usable.
        let s2 = c.send(&Request::Next);
        assert_eq!(c.recv(), (s2, Response::Value { value: 0 }));
    }

    #[test]
    fn recorder_sees_every_served_increment() {
        let recorder = Arc::new(TraceRecorder::new(4, 1024));
        let mut server = CounterServer::with_recorder(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            Arc::clone(&recorder),
            ServerConfig { max_connections: 4, ..ServerConfig::default() },
        )
        .unwrap();
        let mut c = Raw::connect(server.local_addr());
        let s = c.send(&Request::NextBatch { n: 100 });
        let (_, resp) = c.recv();
        assert_eq!(s, 0);
        let Response::Batch { values } = resp else { panic!("{resp:?}") };
        assert_eq!(values.len(), 100);
        drop(c);
        server.shutdown();
        let mut auditor = cnet_core::trace::StreamingAuditor::new();
        cnet_runtime::recorder::drain_remaining(&recorder, &mut auditor);
        assert_eq!(auditor.operations(), 100);
        assert!(auditor.is_clean(), "{}", auditor.summary());
    }

    #[test]
    fn with_recorder_validates_shard_count() {
        let recorder = Arc::new(TraceRecorder::new(2, 16));
        let err = CounterServer::with_recorder(
            "127.0.0.1:0",
            Arc::new(FetchAddCounter::new()),
            recorder,
            ServerConfig { max_connections: 8, ..ServerConfig::default() },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
