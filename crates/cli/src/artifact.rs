//! Schedule artifacts: saving adversarial or simulated schedules to disk
//! and replaying them later, for reproducible experiments.

use cnet_sim::TimedTokenSpec;
use cnet_util::{json, json_struct};

/// A saved schedule: the network it targets plus the token specs.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleArtifact {
    /// The network family (`bitonic`, `periodic`, `tree`, `block`,
    /// `merger`).
    pub family: String,
    /// The fan `w`.
    pub w: usize,
    /// A free-form note about how the schedule was produced.
    pub note: String,
    /// The token schedules.
    pub specs: Vec<TimedTokenSpec>,
}

json_struct!(ScheduleArtifact { family, w, note, specs });

impl ScheduleArtifact {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message on serialization failure.
    pub fn to_json(&self) -> Result<String, String> {
        Ok(json::to_string_pretty(self))
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message on malformed input.
    pub fn from_json(text: &str) -> Result<ScheduleArtifact, String> {
        json::from_str(text).map_err(|e| format!("parse schedule: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_sim::adversary::bitonic_three_wave;
    use cnet_topology::construct::bitonic;

    #[test]
    fn round_trips_through_json() {
        let net = bitonic(8).unwrap();
        let sched = bitonic_three_wave(&net, 1.0, 4.0).unwrap();
        let artifact = ScheduleArtifact {
            family: "bitonic".to_string(),
            w: 8,
            note: "Proposition 5.3 waves at ratio 4".to_string(),
            specs: sched.specs,
        };
        let json = artifact.to_json().unwrap();
        let back = ScheduleArtifact::from_json(&json).unwrap();
        assert_eq!(artifact, back);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(ScheduleArtifact::from_json("{").unwrap_err().contains("parse schedule"));
        assert!(ScheduleArtifact::from_json("{\"family\": 3}").is_err());
    }
}
