//! The `cnet` subcommands.

use crate::args::{parse_network, Options};
use crate::artifact::ScheduleArtifact;
use cnet_core::audit::audit;
use cnet_core::conditions::TimingCondition;
use cnet_core::op::Op;
use cnet_sim::adversary::{holding_race, three_wave};
use cnet_sim::engine::run;
use cnet_sim::timing::TimingParams;
use cnet_sim::validate::validate;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_runtime::{drive_audited, AuditedRun, ProcessCounter, TraceRecorder, Traced, Workload};
use cnet_topology::analysis::split::split_sequence;
use cnet_topology::analysis::{influence_radius, Valencies};
use cnet_topology::Network;
use std::fmt::Write as _;
use std::sync::Arc;

/// The tool's usage text.
pub fn usage() -> String {
    "usage: cnet <command> <family> <w> [--flag value ...]\n\
     \x20      cnet bench <w> [--flag value ...]\n\
     \x20      cnet audit <w> [--flag value ...]\n\
     \n\
     commands:\n\
     \x20 info      structural report: depth, size, split structure, thresholds\n\
     \x20 dot       Graphviz DOT of the network to stdout\n\
     \x20 simulate  random timed schedule; flags: --processes --tokens --ratio\n\
     \x20           --local-delay --seed --save <file>\n\
     \x20 waves     Theorem 5.11 three-wave adversary; flags: --ell --ratio\n\
     \x20           --save <file>\n\
     \x20 race      holding race adversary; flags: --ratio --shared (0/1)\n\
     \x20           --save <file>\n\
     \x20 replay    re-run a saved schedule; flags: --from <file>\n\
     \x20 run       threaded shared-memory run; flags: --threads --ops\n\
     \x20 bench     throughput sweep over every counter and family; flags:\n\
     \x20           --threads 1,2,4,8 --batch 1,16,64 --ops --repeats\n\
     \x20           --out <file.json> --sweep consistency (audited qqc rows:\n\
     \x20           the throughput-vs-inconsistency frontier, merged into\n\
     \x20           --out) --sweep audit (retention-vs-audit-cost curve:\n\
     \x20           off-path drain, live shard stealers, 1-in-k sampling)\n\
     \x20           --sub-counters K (relaxed bank / elimination slot count)\n\
     \x20 audit     threaded run through the trace recorder with live online\n\
     \x20           consistency monitors; flags: --backend compiled|graph_walk|\n\
     \x20           combining|diffracting|fetch_add|lock|relaxed|elimination|\n\
     \x20           remote|cluster --family --threads --ops --sub-counters K\n\
     \x20           --addr HOST:PORT (backend remote audits a live serve;\n\
     \x20           backend cluster fetches and merges every node's trace\n\
     \x20           shards, --addr ADDR1,ADDR2,...); exits nonzero on a\n\
     \x20           violations verdict, except for the deliberately relaxed\n\
     \x20           backends, whose measured QQC lateness is the report\n\
     \x20 serve     counting service on a TCP socket; blocks until a client\n\
     \x20           sends Shutdown; flags: --backend compiled|fetch_add|lock|\n\
     \x20           diffracting|combining|relaxed|elimination --family\n\
     \x20           --sub-counters K --addr 127.0.0.1:0 --max-conns\n\
     \x20           --processes --reactors N (0 = one per core) --backpressure\n\
     \x20           reject|block --audit 0/1 --port-file <file>\n\
     \x20           --cluster K/N --peers ADDR (serve layer range K of an N-node\n\
     \x20           partition, forwarding to the downstream peer)\n\
     \x20 loadgen   hammer a running serve; flags: --addr HOST:PORT --threads\n\
     \x20           --connections M (pooled, 0 = one per thread) --ops (total)\n\
     \x20           --batch --mode batch|pipeline --check 0/1 --shutdown 0/1\n\
     \x20           --out <file.json> --label C --network N\n\
     \x20           --cluster 0/1 (route to the head of a counting cluster)\n\
     \x20           (--ops 0 --shutdown 1 sends only the shutdown handshake —\n\
     \x20           the way to drain a relay/tail node that serves no clients)\n\
     \n\
     families: bitonic (b), periodic (p), tree (t), block (l), merger (m)\n"
        .to_string()
}

/// Executes an argument vector, returning the rendered output.
///
/// # Errors
///
/// Returns a user-facing message for any malformed invocation or failed
/// construction.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    // `bench` and `audit` take no family argument — `bench` sweeps every
    // family at once, `audit` selects one via `--family`.
    if let [command, rest @ ..] = args {
        if command == "bench" {
            return cmd_bench(rest);
        }
        if command == "audit" {
            return cmd_audit(rest);
        }
        if command == "serve" {
            return cmd_serve(rest);
        }
        if command == "loadgen" {
            return cmd_loadgen(rest);
        }
    }
    let [command, family, w, rest @ ..] = args else {
        return Err("expected: cnet <command> <family> <w> [flags]".to_string());
    };
    let net = parse_network(family, w)?;
    let opts = Options::parse(rest)?;
    match command.as_str() {
        "info" => {
            opts.allow(&[])?;
            cmd_info(&net)
        }
        "dot" => {
            opts.allow(&[])?;
            Ok(cnet_topology::dot::to_dot(&net, "network"))
        }
        "simulate" => cmd_simulate(&net, family, w, &opts),
        "waves" => cmd_waves(&net, family, w, &opts),
        "race" => cmd_race(&net, family, w, &opts),
        "replay" => cmd_replay(&net, &opts),
        "run" => cmd_run(&net, &opts),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Writes the schedule artifact when `--save` was given; returns the
/// message to prepend to the output.
fn maybe_save(
    opts: &Options,
    family: &str,
    w: &str,
    note: &str,
    specs: &[cnet_sim::TimedTokenSpec],
) -> Result<String, String> {
    let Some(path) = opts.get("save") else { return Ok(String::new()) };
    let artifact = ScheduleArtifact {
        family: family.to_string(),
        w: w.parse().map_err(|_| format!("'{w}' is not a valid width"))?,
        note: note.to_string(),
        specs: specs.to_vec(),
    };
    std::fs::write(path, artifact.to_json()?)
        .map_err(|e| format!("write {path}: {e}"))?;
    Ok(format!("schedule saved to {path}\n"))
}

fn cmd_info(net: &Network) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "{net}");
    let _ = writeln!(out, "  fan-in:       {}", net.fan_in());
    let _ = writeln!(out, "  fan-out:      {}", net.fan_out());
    let _ = writeln!(out, "  size:         {} balancers", net.size());
    let _ = writeln!(out, "  depth d(G):   {}", net.depth());
    let _ = writeln!(out, "  shallowness:  {}", net.shallowness());
    let _ = writeln!(out, "  uniform:      {}", net.is_uniform());
    let _ = writeln!(out, "  regular:      {}", net.is_regular());
    if let Ok(irad) = influence_radius(net) {
        let _ = writeln!(out, "  irad(G):      {irad}");
        let _ = writeln!(
            out,
            "  MPT97 necessary threshold (c_max/c_min): {:.3}",
            net.depth() as f64 / irad as f64 + 1.0
        );
    }
    let val = Valencies::compute(net);
    if let Ok(sd) = cnet_topology::analysis::split_depth(net, &val) {
        let _ = writeln!(out, "  split depth:  {sd}");
    }
    if let Ok(seq) = split_sequence(net) {
        let _ = writeln!(out, "  split number: {}", seq.split_number());
        let depths: Vec<String> =
            (0..seq.split_number()).map(|l| seq.stage_depth(l).to_string()).collect();
        let _ = writeln!(out, "  stage depths: {}", depths.join(", "));
        let _ = writeln!(
            out,
            "  continuously complete / uniformly splittable: {} / {}",
            seq.is_continuously_complete(),
            seq.is_continuously_uniformly_splittable()
        );
    }
    let _ = writeln!(
        out,
        "  Theorem 4.1 local-delay bound: C_L > {}·(c_max − 2·c_min)",
        net.depth()
    );
    Ok(out)
}

fn cmd_simulate(net: &Network, family: &str, w: &str, opts: &Options) -> Result<String, String> {
    opts.allow(&["processes", "tokens", "ratio", "local-delay", "seed", "save"])?;
    let cfg = WorkloadConfig {
        processes: opts.usize_or("processes", net.fan_in().min(8))?,
        tokens_per_process: opts.usize_or("tokens", 5)?,
        c_min: 1.0,
        c_max: opts.f64_or("ratio", 2.0)?,
        local_delay: opts.f64_or("local-delay", 0.0)?,
        start_spread: 3.0,
    };
    if cfg.c_max < cfg.c_min {
        return Err("--ratio must be at least 1".to_string());
    }
    let specs = generate(net, &cfg, opts.u64_or("seed", 0)?);
    let mut out = maybe_save(opts, family, w, "random workload schedule", &specs)?;
    let exec = run(net, &specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_waves(net: &Network, family: &str, w: &str, opts: &Options) -> Result<String, String> {
    opts.allow(&["ell", "ratio", "save"])?;
    let ell = opts.usize_or("ell", 1)?;
    let probe = three_wave(net, ell, 1.0, 1.0e6).map_err(|e| e.to_string())?;
    let ratio = opts.f64_or("ratio", probe.required_ratio + 0.01)?;
    let sched = three_wave(net, ell, 1.0, ratio).map_err(|e| e.to_string())?;
    let mut out = maybe_save(
        opts,
        family,
        w,
        &format!("Theorem 5.11 three-wave schedule, ell={ell}, ratio={ratio}"),
        &sched.specs,
    )?;
    let exec = run(net, &sched.specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    let _ = writeln!(
        out,
        "three-wave adversary at level {ell}: threshold ratio {:.3}, using {:.3}",
        sched.required_ratio, ratio
    );
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_race(net: &Network, family: &str, w: &str, opts: &Options) -> Result<String, String> {
    opts.allow(&["ratio", "shared", "save"])?;
    let shared = opts.usize_or("shared", 1)? != 0;
    let ratio = opts.f64_or("ratio", net.depth() as f64 + 1.01)?;
    let race = holding_race(net, 1.0, ratio, shared).map_err(|e| e.to_string())?;
    let mut out = maybe_save(
        opts,
        family,
        w,
        &format!("holding-race schedule, ratio={ratio}, shared={shared}"),
        &race.specs,
    )?;
    let exec = run(net, &race.specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    let _ = writeln!(
        out,
        "holding race: threshold ratio {:.3}, using {:.3}, shared chaser: {shared}",
        race.required_ratio, ratio
    );
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_replay(net: &Network, opts: &Options) -> Result<String, String> {
    opts.allow(&["from"])?;
    let path = opts.get("from").ok_or("replay needs --from <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let artifact = ScheduleArtifact::from_json(&text)?;
    if artifact.w != net.fan_out().max(net.fan_in()) {
        return Err(format!(
            "artifact targets w={}, but the requested network has fan {}/{}",
            artifact.w,
            net.fan_in(),
            net.fan_out()
        ));
    }
    let exec = run(net, &artifact.specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    let mut out = format!("replayed {} ({}):\n", path, artifact.note);
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_run(net: &Network, opts: &Options) -> Result<String, String> {
    opts.allow(&["threads", "ops"])?;
    let workload = cnet_runtime::Workload {
        threads: opts.usize_or("threads", 4)?,
        increments_per_thread: opts.usize_or("ops", 1000)?,
    };
    let counter = cnet_runtime::SharedNetworkCounter::new(net);
    let records = cnet_runtime::drive(&counter, workload);
    let ops = cnet_runtime::history::to_ops(&records);
    let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
    values.sort_unstable();
    let dense = values == (0..values.len() as u64).collect::<Vec<_>>();
    let mut out = format!(
        "threaded run: {} threads x {} ops, values dense: {dense}\n\n",
        workload.threads, workload.increments_per_thread
    );
    let _ = write!(out, "{}", audit(&ops));
    Ok(out)
}

/// Parses a comma-separated list of positive integers from `--flag`.
fn parse_positive_list(
    opts: &Options,
    flag: &str,
    default: Vec<usize>,
) -> Result<Vec<usize>, String> {
    match opts.get(flag) {
        None => Ok(default),
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| format!("--{flag} expects positive integers, got '{t}'"))
            })
            .collect(),
    }
}

fn cmd_bench(args: &[String]) -> Result<String, String> {
    let [w, flags @ ..] = args else {
        return Err(
            "expected: cnet bench <w> [--threads 1,2,4,8] [--batch 1,16,64] [--ops N] \
             [--repeats N] [--out file]"
                .to_string(),
        );
    };
    let fan: usize = w.parse().map_err(|_| format!("'{w}' is not a valid width"))?;
    let opts = Options::parse(flags)?;
    opts.allow(&["threads", "batch", "ops", "repeats", "out", "net", "sweep", "sub-counters"])?;
    let threads = parse_positive_list(&opts, "threads", vec![1, 2, 4, 8])?;
    let batches = parse_positive_list(&opts, "batch", Vec::new())?;
    let cfg = cnet_bench::ThroughputConfig {
        fan,
        threads,
        ops_per_thread: opts.usize_or("ops", 20_000)?.max(1),
        repeats: opts.usize_or("repeats", 3)?.max(1),
        batches: batches.clone(),
    };
    if !fan.is_power_of_two() || fan < 2 {
        return Err(format!("unsupported width {fan}: expected a power of two >= 2"));
    }
    let sub_counters =
        opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
    match opts.get("sweep") {
        None => {}
        Some("consistency") => return cmd_bench_consistency(&cfg, sub_counters, &opts),
        Some("audit") => return cmd_bench_audit(&cfg, sub_counters, &opts),
        Some(other) => {
            return Err(format!("--sweep expects 'consistency' or 'audit', got '{other}'"));
        }
    }
    let mut report = cnet_bench::run_throughput_sweep(&cfg);
    if opts.usize_or("net", 0)? != 0 {
        // Loopback-TCP rows land in the same artifact (`"transport":
        // "tcp"`), so the socket tax reads off one file.
        let net_cfg = cnet_bench::NetThroughputConfig {
            fan,
            threads: cfg.threads.clone(),
            connections: 0,
            ops_per_thread: cfg.ops_per_thread,
            batch: 64,
            mode: cnet_net::LoadGenMode::Pipeline,
            repeats: cfg.repeats,
        };
        let net_rows = cnet_bench::run_net_throughput(&net_cfg)
            .map_err(|e| format!("networked sweep: {e}"))?;
        report.measurements.extend(net_rows);
        // The same compiled bitonic network partitioned across a two-node
        // loopback chain (`"nodes": 2`, schema v5): the forwarding tax
        // reads off against the single-server tcp cell above.
        let cluster_rows = cnet_bench::run_cluster_net_throughput(&net_cfg, 2)
            .map_err(|e| format!("cluster sweep: {e}"))?;
        report.measurements.extend(cluster_rows);
    }
    let mut out = format!(
        "== throughput sweep (Mops/s): w={}, {} ops/thread, best of {}, {} cores ==\n\n{}",
        report.fan,
        report.ops_per_thread,
        report.repeats,
        report.cores,
        report.summary()
    );
    let oversubscribed: Vec<usize> = cfg
        .threads
        .iter()
        .copied()
        .filter(|&t| t > report.cores)
        .collect();
    if !oversubscribed.is_empty() {
        let _ = writeln!(
            out,
            "\nWARNING: thread counts {:?} exceed the host's {} core(s) — those rows are \
             flagged \"oversubscribed\": true and measure time-slicing, not parallel scaling",
            oversubscribed, report.cores
        );
    }
    let top = *cfg.threads.iter().max().expect("at least one thread count");
    if let Some(s) = report.speedup("compiled", "graph_walk", "bitonic", top) {
        let _ = writeln!(
            out,
            "\ncompiled vs graph-walk traversal on bitonic B({}) at {top} threads: {s:.2}x",
            report.fan
        );
    }
    if let Some(r) = report.retention("compiled", "bitonic", top) {
        let _ = writeln!(
            out,
            "audited compiled on bitonic B({}) at {top} threads retains {:.1}% of un-audited throughput",
            report.fan,
            r * 100.0
        );
    }
    if let Some(&k) = batches.iter().filter(|&&k| k > 1).max() {
        if let Some(s) = report.batch_speedup("compiled", "bitonic", top, k) {
            let _ = writeln!(
                out,
                "batched traversal (k={k}) on bitonic B({}) at {top} threads: {s:.2}x the \
                 per-token path",
                report.fan
            );
        }
    }
    if let (Some(tcp), Some(mem)) =
        (report.net_cell("fetch_add", "-", top), report.cell("fetch_add", "-", top))
    {
        let _ = writeln!(
            out,
            "loopback TCP fetch_add at {top} threads: {:.2} Mops/s ({:.1}% of shared memory)",
            tcp.mops,
            tcp.mops / mem.mops * 100.0
        );
    }
    if let (Some(two), Some(one)) = (
        report.cluster_cell("compiled", "bitonic", top, 2),
        report.net_cell("compiled", "bitonic", top),
    ) {
        let _ = writeln!(
            out,
            "two-node partitioned B({}) at {top} threads: {:.2} Mops/s ({:.1}% of the \
             single-node tcp cell)",
            report.fan,
            two.mops,
            two.mops / one.mops * 100.0
        );
    }
    if let Some(path) = opts.get("out") {
        cnet_bench::write_json(std::path::Path::new(path), &report)
            .map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(out)
}

/// `cnet bench <w> --sweep audit`: the schema-v7
/// retention-versus-audit-cost curve. For each thread count the compiled
/// bitonic engine runs plain and then audited at every
/// [`cnet_bench::AUDIT_SWEEP_POINTS`] `(audit_threads, sample_k)`
/// combination — off-path draining, live shard-stealing, and 1-in-k
/// sampling — with each audited row carrying its paired retention; the
/// relaxed backends contribute plain/audited pairs so their retention
/// resolves too. With `--out` the rows are merged into the existing
/// artifact (replacing prior rows for the same cells) and the report
/// version is bumped to 7.
fn cmd_bench_audit(
    cfg: &cnet_bench::ThroughputConfig,
    sub_counters: usize,
    opts: &Options,
) -> Result<String, String> {
    let rows = cnet_bench::run_audit_sweep(cfg, sub_counters);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut curve = cnet_bench::Table::new(vec![
        "threads".to_string(),
        "backend".to_string(),
        "audit".to_string(),
        "sample".to_string(),
        "Mops/s".to_string(),
        "retention".to_string(),
    ]);
    for m in &rows {
        let label = if m.network == "-" {
            m.counter.clone()
        } else {
            format!("{}/{}", m.counter, m.network)
        };
        curve.row(vec![
            m.threads.to_string(),
            label,
            if !m.audited {
                "off".to_string()
            } else if m.audit_threads == 0 {
                "drain".to_string()
            } else {
                format!("live x{}", m.audit_threads)
            },
            if m.sample_k > 1 { format!("1/{}", m.sample_k) } else { "all".to_string() },
            format!("{:.2}", m.mops),
            m.retention.map_or("-".to_string(), |r| format!("{:.1}%", r * 100.0)),
        ]);
    }
    let mut out = format!(
        "== audit sweep (retention vs audit cost): w={}, {} ops/thread, best of {}, \
         {} cores ==\n\n{}",
        cfg.fan, cfg.ops_per_thread, cfg.repeats, cores, curve
    );
    let top = *cfg.threads.iter().max().expect("at least one thread count");
    if let Some(m) = rows.iter().find(|m| {
        m.audited
            && m.audit_threads == 0
            && m.sample_k == 1
            && m.counter == "compiled"
            && m.threads == top
    }) {
        if let Some(r) = m.retention {
            let _ = writeln!(
                out,
                "\nfully audited compiled B({}) at {top} threads retains {:.1}% of \
                 un-audited throughput (paired interleaved measurement)",
                cfg.fan,
                r * 100.0,
            );
        }
    }
    if let Some(path) = opts.get("out") {
        let p = std::path::Path::new(path);
        let mut report: cnet_bench::ThroughputReport = match std::fs::read_to_string(p) {
            Ok(text) => cnet_util::json::from_str(&text)
                .map_err(|e| format!("{path}: not a throughput report: {e}"))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                cnet_bench::ThroughputReport {
                    version: 7,
                    fan: cfg.fan,
                    ops_per_thread: cfg.ops_per_thread,
                    repeats: cfg.repeats,
                    cores,
                    measurements: Vec::new(),
                }
            }
            Err(e) => return Err(format!("read {path}: {e}")),
        };
        // Replace any prior row for the same cell (same counter, network,
        // threads, audited flag, and audit-pipeline parameters); qqc-
        // bearing consistency rows and tcp/cluster rows are untouched.
        report.measurements.retain(|m| {
            m.qqc_max.is_some()
                || m.transport != cnet_bench::Measurement::TRANSPORT_MEMORY
                || !rows.iter().any(|r| {
                    r.counter == m.counter
                        && r.network == m.network
                        && r.threads == m.threads
                        && r.audited == m.audited
                        && r.batch == m.batch
                        && r.audit_threads == m.audit_threads
                        && r.sample_k == m.sample_k
                })
        });
        report.measurements.extend(rows);
        report.version = report.version.max(7);
        cnet_bench::write_json(p, &report).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "audit rows merged into {path} (schema v{})", report.version);
    }
    Ok(out)
}

/// `cnet bench <w> --sweep consistency`: the schema-v6
/// throughput-versus-inconsistency frontier. Every backend — strict and
/// relaxed — runs audited through the QQC lateness meter, and the rows
/// carry the measured `qqc_max`/`qqc_mean`/`f_nl` from the same run the
/// throughput was timed on. With `--out` the rows are merged into the
/// existing artifact (replacing prior qqc-bearing rows for the same
/// cells, preserving everything else) and the report version is bumped
/// to at least 6.
fn cmd_bench_consistency(
    cfg: &cnet_bench::ThroughputConfig,
    sub_counters: usize,
    opts: &Options,
) -> Result<String, String> {
    let rows = cnet_bench::run_consistency_sweep(cfg, sub_counters);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut frontier = cnet_bench::Table::new(vec![
        "threads".to_string(),
        "backend".to_string(),
        "Mops/s".to_string(),
        "qqc_max".to_string(),
        "qqc_mean".to_string(),
        "F_nl".to_string(),
    ]);
    for m in &rows {
        let label = if m.network == "-" {
            m.counter.clone()
        } else {
            format!("{}/{}", m.counter, m.network)
        };
        frontier.row(vec![
            m.threads.to_string(),
            label,
            format!("{:.2}", m.mops),
            m.qqc_max.map_or("-".to_string(), |v| v.to_string()),
            m.qqc_mean.map_or("-".to_string(), |v| format!("{v:.2}")),
            m.f_nl.map_or("-".to_string(), |v| format!("{v:.4}")),
        ]);
    }
    let mut out = format!(
        "== consistency sweep (throughput vs measured inconsistency): w={}, k={}, \
         {} ops/thread, best of {}, {} cores ==\n\n{}",
        cfg.fan, sub_counters, cfg.ops_per_thread, cfg.repeats, cores, frontier
    );
    let top = *cfg.threads.iter().max().expect("at least one thread count");
    let strict = rows
        .iter()
        .find(|m| m.counter == "compiled" && m.network == "bitonic" && m.threads == top);
    let relaxed = rows.iter().find(|m| m.counter == "relaxed" && m.threads == top);
    if let (Some(s), Some(r)) = (strict, relaxed) {
        let _ = writeln!(
            out,
            "\nrelaxed (k={sub_counters}) vs compiled bitonic B({}) at {top} threads: \
             {:.2}x the throughput at qqc_max {} (vs {})",
            cfg.fan,
            r.mops / s.mops,
            r.qqc_max.unwrap_or(0),
            s.qqc_max.unwrap_or(0),
        );
    }
    let _ = writeln!(
        out,
        "every row handed out the exact multiset 0..n — relaxation shows up only as \
         reordering (qqc lateness), never as a lost or duplicated value"
    );
    if let Some(path) = opts.get("out") {
        let p = std::path::Path::new(path);
        let mut report: cnet_bench::ThroughputReport = match std::fs::read_to_string(p) {
            Ok(text) => cnet_util::json::from_str(&text)
                .map_err(|e| format!("{path}: not a throughput report: {e}"))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                cnet_bench::ThroughputReport {
                    version: 7,
                    fan: cfg.fan,
                    ops_per_thread: cfg.ops_per_thread,
                    repeats: cfg.repeats,
                    cores,
                    measurements: Vec::new(),
                }
            }
            Err(e) => return Err(format!("read {path}: {e}")),
        };
        // Replace any prior consistency rows for the same cells; plain,
        // batched, tcp, and cluster rows are untouched (regenerating them
        // is expensive and they carry no qqc fields).
        report.measurements.retain(|m| {
            m.qqc_max.is_none()
                || !rows.iter().any(|r| {
                    r.counter == m.counter && r.network == m.network && r.threads == m.threads
                })
        });
        report.measurements.extend(rows);
        report.version = report.version.max(7);
        cnet_bench::write_json(p, &report).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "consistency rows merged into {path} (schema v{})", report.version);
    }
    Ok(out)
}

/// Builds the serveable backend named by `--backend`.
fn serve_backend(
    backend: &str,
    family: &str,
    w: &str,
    fan: usize,
    sub_counters: usize,
) -> Result<Arc<dyn ProcessCounter + Send + Sync>, String> {
    match backend {
        "compiled" => {
            let net = parse_network(family, w)?;
            Ok(Arc::new(cnet_runtime::SharedNetworkCounter::new(&net)))
        }
        "fetch_add" => Ok(Arc::new(cnet_runtime::FetchAddCounter::new())),
        "lock" => Ok(Arc::new(cnet_runtime::LockCounter::new())),
        "diffracting" => Ok(Arc::new(cnet_runtime::DiffractingTree::new(fan, 4)?)),
        "combining" => {
            let net = parse_network(family, w)?;
            Ok(Arc::new(cnet_runtime::CombiningFunnel::new(
                cnet_runtime::SharedNetworkCounter::new(&net),
                fan,
            )))
        }
        "relaxed" => Ok(Arc::new(cnet_runtime::RelaxedCounter::new(sub_counters))),
        "elimination" => {
            let net = parse_network(family, w)?;
            Ok(Arc::new(cnet_runtime::EliminationCounter::new(&net, sub_counters)))
        }
        other => Err(format!(
            "unknown backend '{other}' (expected compiled, fetch_add, lock, diffracting, \
             combining, relaxed, or elimination)"
        )),
    }
}

/// Parses a `--cluster K/N` position: node K (0-based) of an N-node chain.
fn parse_cluster_position(spec: &str) -> Result<(usize, usize), String> {
    let err = || format!("--cluster expects K/N (e.g. 0/2), got '{spec}'");
    let (k, n) = spec.split_once('/').ok_or_else(err)?;
    let k: usize = k.trim().parse().map_err(|_| err())?;
    let n: usize = n.trim().parse().map_err(|_| err())?;
    if n == 0 || k >= n {
        return Err(format!("--cluster {spec}: node index must be below the node count"));
    }
    Ok((k, n))
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let [w, flags @ ..] = args else {
        return Err(
            "expected: cnet serve <w> [--backend B] [--family F] [--addr HOST:PORT] \
             [--max-conns N] [--processes N] [--reactors N] [--backpressure reject|block] \
             [--audit 0/1] [--audit-threads N] [--audit-sample k] [--port-file file] \
             [--cluster K/N --peers ADDR]"
                .to_string(),
        );
    };
    let fan: usize = w.parse().map_err(|_| format!("'{w}' is not a valid width"))?;
    let opts = Options::parse(flags)?;
    opts.allow(&[
        "backend",
        "family",
        "addr",
        "max-conns",
        "processes",
        "reactors",
        "backpressure",
        "audit",
        "audit-threads",
        "audit-sample",
        "port-file",
        "cluster",
        "peers",
        "sub-counters",
    ])?;
    let backend_name = opts.get("backend").unwrap_or("compiled").to_string();
    let family = opts.get("family").unwrap_or("bitonic").to_string();
    let addr = opts.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_connections = opts.usize_or("max-conns", 64)?.max(1);
    let cfg = cnet_net::server::ServerConfig {
        max_connections,
        processes: opts.usize_or("processes", fan)?.max(1),
        // 0 means one reactor per core (the server's own default).
        reactors: opts.usize_or("reactors", 0)?,
        backpressure: match opts.get("backpressure").unwrap_or("reject") {
            "reject" => cnet_net::server::Backpressure::Reject,
            "block" => cnet_net::server::Backpressure::Block,
            other => return Err(format!("--backpressure expects reject or block, got '{other}'")),
        },
    };
    let cluster_position = opts.get("cluster").map(parse_cluster_position).transpose()?;
    let audit = opts.usize_or("audit", 0)? != 0;
    let audit_threads = opts.usize_or("audit-threads", 0)?;
    let sample_k = opts.usize_or("audit-sample", 1)?.max(1);
    if (audit_threads > 0 || sample_k > 1) && !audit {
        return Err("--audit-threads/--audit-sample only make sense with --audit 1".to_string());
    }
    let recorder =
        audit.then(|| Arc::new(TraceRecorder::with_sampling(max_connections, 1 << 16, sample_k)));
    // The parallel audit pipeline: `--audit-threads N` workers steal ring
    // shards *while the server runs*, folding each shard into its own
    // `ShardMonitor`. The exact global verdict is assembled lazily after
    // shutdown by merging the final frontiers — the verdict is
    // bit-identical to the sequential drain on the same streams.
    let audit_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let audit_workers: Vec<_> = match &recorder {
        Some(rec) if audit_threads > 0 => (0..audit_threads.min(rec.shards()))
            .map(|worker| {
                let rec = Arc::clone(rec);
                let stop = Arc::clone(&audit_stop);
                let stride = audit_threads.min(rec.shards());
                std::thread::spawn(move || {
                    use cnet_core::trace::{RawOp, ShardMonitor};
                    let shards: Vec<usize> =
                        (worker..rec.shards()).step_by(stride).collect();
                    let mut monitors: Vec<ShardMonitor> =
                        shards.iter().map(|&s| ShardMonitor::new(s)).collect();
                    let mut seen = vec![(0u64, 0u64); shards.len()];
                    let mut stolen = 0usize;
                    loop {
                        // Read the flag *before* pulling: when it is set the
                        // final flush already happened, so a dry pass after
                        // seeing it means the shard is truly drained.
                        let stopped = stop.load(std::sync::atomic::Ordering::Acquire);
                        let mut moved = 0usize;
                        for (i, &sh) in shards.iter().enumerate() {
                            let mon = &mut monitors[i];
                            moved += rec.pull_shard(sh, |enter_ns, exit_ns, value| {
                                mon.observe(RawOp {
                                    process: sh,
                                    enter_ns,
                                    exit_ns,
                                    value,
                                });
                            });
                            let (d, k) = (rec.dropped_on(sh), rec.skipped_on(sh));
                            mon.add_dropped(d - seen[i].0);
                            mon.add_skipped(k - seen[i].1);
                            seen[i] = (d, k);
                        }
                        stolen += moved;
                        if moved == 0 {
                            if stopped {
                                break;
                            }
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                    }
                    let frontiers: Vec<_> =
                        monitors.iter_mut().map(|m| m.take_frontier(true)).collect();
                    (frontiers, stolen)
                })
            })
            .collect(),
        _ => Vec::new(),
    };
    let mut server = match cluster_position {
        Some((node, nodes)) => {
            // A cluster node *is* a partition of the compiled network — the
            // scalar backends have no layers to split.
            if backend_name != "compiled" {
                return Err(format!(
                    "--cluster partitions the compiled network; backend '{backend_name}' \
                     cannot be partitioned"
                ));
            }
            let peers: Vec<String> = opts
                .get("peers")
                .map(|p| p.split(',').map(|s| s.trim().to_string()).collect())
                .unwrap_or_default();
            let net = parse_network(&family, w)?;
            let cluster = cnet_net::ClusterNode::new(&net, node, nodes, &peers, max_connections)
                .map_err(|e| format!("cluster {node}/{nodes}: {e}"))?;
            cnet_net::server::CounterServer::start_cluster(
                &addr as &str,
                Arc::new(cluster),
                recorder.as_ref().map(Arc::clone),
                cfg,
            )
        }
        None => {
            if opts.get("peers").is_some() {
                return Err("--peers only makes sense with --cluster K/N".to_string());
            }
            let sub_counters =
                opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
            let backend = serve_backend(&backend_name, &family, w, fan, sub_counters)?;
            match &recorder {
                Some(rec) => cnet_net::server::CounterServer::with_recorder(
                    &addr as &str,
                    backend,
                    Arc::clone(rec),
                    cfg,
                ),
                None => cnet_net::server::CounterServer::start(&addr as &str, backend, cfg),
            }
        }
    }
    .map_err(|e| format!("serve {addr}: {e}"))?;
    let bound = server.local_addr();
    // Announce readiness on stderr immediately (stdout output is rendered
    // only after the command returns) so scripts can connect.
    match cluster_position {
        Some((node, nodes)) => {
            eprintln!("cnet serve: cluster node {node}/{nodes} listening on {bound}");
        }
        None => eprintln!("cnet serve: backend={backend_name} listening on {bound}"),
    }
    if let Some(path) = opts.get("port-file") {
        std::fs::write(path, bound.to_string()).map_err(|e| format!("write {path}: {e}"))?;
    }
    server.wait_for_shutdown_request();
    server.shutdown();
    let stats = server.stats();
    let mut out = format!(
        "cnet serve: drained after a remote shutdown request\n\
         connections: {} served, {} rejected, {} deferred accepts\n\
         requests:    {}\n\
         increments:  {} ({} batched frames)\n\
         reactor:     {} wakeups, {} events\n",
        stats.total_connections,
        stats.rejected_connections,
        stats.deferred_accepts,
        stats.requests,
        stats.ops,
        stats.batches,
        stats.reactor_wakeups,
        stats.reactor_events,
    );
    if let Some(rec) = &recorder {
        if audit_workers.is_empty() {
            let mut auditor = cnet_core::trace::StreamingAuditor::new();
            cnet_runtime::drain_remaining(rec, &mut auditor);
            let _ = writeln!(out, "audit: {}", auditor.summary());
        } else {
            // Writers are quiescent once `shutdown()` has joined the
            // reactors: settle every partial sampling window and publish
            // the tails, then let the stealers take one last dry pass.
            for sh in 0..rec.shards() {
                rec.flush(sh);
            }
            audit_stop.store(true, std::sync::atomic::Ordering::Release);
            let mut merged = cnet_core::trace::MergeAuditor::new(rec.shards());
            let mut stolen = 0usize;
            for handle in audit_workers {
                let (frontiers, worker_stolen) = handle.join().expect("audit worker panicked");
                stolen += worker_stolen;
                for frontier in frontiers {
                    merged.ingest(frontier);
                }
            }
            let _ = writeln!(
                out,
                "audit pipeline: {audit_threads} worker(s), {stolen} event(s) stolen live, \
                 {} dropped, {} skipped by 1-in-{sample_k} sampling",
                merged.dropped(),
                merged.skipped(),
            );
            let _ = writeln!(out, "audit: {}", merged.summary());
        }
    }
    Ok(out)
}

fn cmd_loadgen(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args)?;
    opts.allow(&[
        "addr", "threads", "connections", "ops", "batch", "mode", "check", "shutdown", "out",
        "label", "network", "cluster", "audit-sample",
    ])?;
    let addr = opts.get("addr").ok_or("loadgen needs --addr HOST:PORT")?.to_string();
    let threads = opts.usize_or("threads", 4)?.max(1);
    let connections = opts.usize_or("connections", 0)?;
    let total_ops = opts.usize_or("ops", 100_000)?;
    // `--ops 0` is a pure control invocation: no traffic, just the
    // shutdown handshake. It is the way to drain a cluster node that
    // serves no client traffic of its own — a relay or tail only
    // answers forwards, so a normal loadgen run against it would fail.
    if total_ops == 0 {
        if opts.usize_or("shutdown", 0)? == 0 {
            return Err("--ops 0 only makes sense with --shutdown 1".to_string());
        }
        let client = cnet_net::RemoteCounter::connect(&addr as &str, 1)
            .map_err(|e| format!("shutdown connect {addr}: {e}"))?;
        client.shutdown_server().map_err(|e| format!("shutdown {addr}: {e}"))?;
        return Ok(format!(
            "cnet loadgen: no traffic (--ops 0)\n\
             server shutdown requested and acknowledged ({addr})\n"
        ));
    }
    let check = opts.usize_or("check", 1)? != 0;
    let mode = match opts.get("mode").unwrap_or("batch") {
        "batch" => cnet_net::LoadGenMode::Batch,
        "pipeline" => cnet_net::LoadGenMode::Pipeline,
        other => return Err(format!("--mode expects batch or pipeline, got '{other}'")),
    };
    let batch = opts.usize_or("batch", 64)?.max(1);
    let route = opts.usize_or("cluster", 0)? != 0;
    let cfg = cnet_net::loadgen::LoadGenConfig {
        threads,
        connections,
        ops_per_thread: total_ops.div_ceil(threads),
        batch,
        mode,
        collect_values: check,
        route,
    };
    let report = cnet_net::loadgen::run_loadgen(&addr as &str, &cfg)
        .map_err(|e| format!("loadgen against {addr}: {e}"))?;
    let mut out = format!(
        "cnet loadgen: {} threads over {} connections x {} ops = {} increments \
         in {:.3}s ({:.0} ops/s)\n",
        report.threads,
        report.connections,
        cfg.ops_per_thread,
        report.total_ops,
        report.seconds,
        report.ops_per_sec(),
    );
    let (p50, p99, p999) = report.latency.percentiles();
    let us = |ns: u64| ns as f64 / 1.0e3;
    let _ = writeln!(
        out,
        "burst latency: p50 {:.1}us  p99 {:.1}us  p999 {:.1}us  ({} bursts sampled)",
        us(p50),
        us(p99),
        us(p999),
        report.latency.count(),
    );
    match report.is_permutation() {
        Some(true) => {
            let _ = writeln!(out, "permutation 0..{}: true", report.total_ops);
        }
        Some(false) => {
            return Err(format!(
                "values are NOT a permutation of 0..{} — the service broke the counting contract",
                report.total_ops
            ));
        }
        None => {}
    }
    // Chain size for the bench row, asked before any shutdown: every node
    // of a cluster reports the full node count; plain servers say 1.
    let nodes = if opts.get("out").is_some() {
        cnet_net::RemoteCounter::connect(&addr as &str, 1)
            .and_then(|c| c.node_info())
            .map_or(1, |info| (info.nodes as usize).max(1))
    } else {
        1
    };
    if opts.usize_or("shutdown", 0)? != 0 {
        let client = cnet_net::RemoteCounter::connect(&addr as &str, 1)
            .map_err(|e| format!("shutdown connect {addr}: {e}"))?;
        // Snapshot the reactor's counters before asking it to drain.
        let stats = client.server_stats().map_err(|e| format!("stats {addr}: {e}"))?;
        let per_wakeup = if stats.reactor_wakeups > 0 {
            stats.reactor_events as f64 / stats.reactor_wakeups as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "server reactor: {} open connections, {} epoll wakeups, {} events \
             ({per_wakeup:.2} events/wakeup), {} deferred accepts",
            stats.active_connections,
            stats.reactor_wakeups,
            stats.reactor_events,
            stats.deferred_accepts,
        );
        client.shutdown_server().map_err(|e| format!("shutdown {addr}: {e}"))?;
        let _ = writeln!(out, "server shutdown requested and acknowledged");
    }
    if let Some(path) = opts.get("out") {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut row = cnet_bench::Measurement::timed(
            opts.get("label").unwrap_or("fetch_add"),
            opts.get("network").unwrap_or("-"),
            threads,
            report.total_ops as usize,
            report.seconds,
        );
        row.mops = report.ops_per_sec() / 1.0e6;
        row.transport = cnet_bench::Measurement::TRANSPORT_TCP.to_string();
        row.batch = match mode {
            cnet_net::LoadGenMode::Batch => batch,
            cnet_net::LoadGenMode::Pipeline => 1,
        };
        row.oversubscribed = threads > cores;
        row.connections = report.connections;
        row.p50_ns = Some(p50);
        row.p99_ns = Some(p99);
        row.p999_ns = Some(p999);
        row.nodes = nodes;
        // Row metadata only: the sampling stride is a *server-side* knob
        // (`serve --audit-sample k`); tagging the row keeps the artifact
        // honest about what the audited server was actually recording.
        row.sample_k = opts.usize_or("audit-sample", 1)?.max(1);
        merge_net_row(std::path::Path::new(path), row)?;
        let _ = writeln!(out, "tcp throughput row merged into {path}");
    }
    Ok(out)
}

/// Appends (or replaces) a networked-throughput row in a
/// `BENCH_throughput.json` report (schema v2 through v7), creating a
/// minimal v7 report when the file does not exist yet. Row identity
/// includes the connection count and the cluster node count, so
/// connection-scaling and node-scaling sweeps keep one row per cell
/// instead of overwriting.
fn merge_net_row(
    path: &std::path::Path,
    row: cnet_bench::Measurement,
) -> Result<(), String> {
    let mut report: cnet_bench::ThroughputReport = match std::fs::read_to_string(path) {
        Ok(text) => cnet_util::json::from_str(&text)
            .map_err(|e| format!("{}: not a throughput report: {e}", path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => cnet_bench::ThroughputReport {
            version: 7,
            fan: 0,
            ops_per_thread: 0,
            repeats: 1,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            measurements: Vec::new(),
        },
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    report.measurements.retain(|m| {
        !(m.transport == row.transport
            && m.counter == row.counter
            && m.network == row.network
            && m.threads == row.threads
            && m.batch == row.batch
            && m.connections == row.connections
            && m.nodes == row.nodes)
    });
    report.measurements.push(row);
    cnet_bench::write_json(path, &report).map_err(|e| format!("write {}: {e}", path.display()))
}

/// The common shape of a serial or parallel audited run, as rendered by
/// `cnet audit`: the exact global auditor plus the coverage accounting
/// (recorded / ring-dropped / sampling-skipped, and per-shard drops so a
/// hot shard can be named).
struct CliAuditRun {
    auditor: cnet_core::trace::StreamingAuditor,
    recorded: usize,
    dropped: u64,
    skipped: u64,
    per_shard_dropped: Vec<u64>,
}

/// Drives an audited run, collecting a bounded set of "live" lines each
/// time the in-flight auditor's violation counts grow. With
/// `audit_threads > 0` the run goes through the sharded steal pipeline
/// ([`cnet_runtime::drive_audited_parallel`]); the merged verdict is
/// bit-identical to the serial drain on the same streams.
fn audit_workload<C: ProcessCounter>(
    counter: &C,
    recorder: &TraceRecorder,
    workload: Workload,
    audit_threads: usize,
    live: &mut Vec<String>,
) -> (CliAuditRun, usize) {
    let mut batches = 0usize;
    let mut seen = (0usize, 0usize);
    let mut live_line = |ops: usize, nl: usize, nsc: usize, f_nl: f64, f_nsc: f64| {
        let now = (nl, nsc);
        if now > seen && live.len() < 8 {
            live.push(format!(
                "  [live @ {ops} ops] non-linearizable: {nl}  non-SC: {nsc}  \
                 F_nl={f_nl:.4} F_nsc={f_nsc:.4}"
            ));
            seen = now;
        }
    };
    if audit_threads == 0 {
        let run: AuditedRun = drive_audited(counter, recorder, workload, |a| {
            batches += 1;
            live_line(
                a.operations(),
                a.non_linearizable(),
                a.non_sequentially_consistent(),
                a.f_nl(),
                a.f_nsc(),
            );
        });
        let per_shard_dropped =
            (0..recorder.shards()).map(|s| recorder.dropped_on(s)).collect();
        (
            CliAuditRun {
                auditor: run.auditor,
                recorded: run.recorded,
                dropped: run.dropped,
                skipped: recorder.skipped(),
                per_shard_dropped,
            },
            batches,
        )
    } else {
        let run = cnet_runtime::drive_audited_parallel(
            counter,
            recorder,
            workload,
            audit_threads,
            |m| {
                batches += 1;
                let a = m.auditor();
                live_line(
                    a.operations(),
                    a.non_linearizable(),
                    a.non_sequentially_consistent(),
                    a.f_nl(),
                    a.f_nsc(),
                );
            },
        );
        let mut merged = run.auditor;
        merged.merge();
        let per_shard_dropped = merged.shard_stats().iter().map(|s| s.dropped).collect();
        (
            CliAuditRun {
                auditor: merged.auditor().clone(),
                recorded: run.recorded,
                dropped: run.dropped,
                skipped: run.skipped,
                per_shard_dropped,
            },
            batches,
        )
    }
}

/// Fetches every node's recorded trace shards over the wire, remaps them
/// into one global shard space, k-way merges them in enter order, and
/// renders a cluster-wide consistency verdict. Returns `Err` (nonzero
/// exit) when the merged history shows violations.
///
/// All nodes must share one machine clock for the merged verdict to be
/// meaningful — the trace stamps are node-local monotonic nanoseconds.
fn cmd_audit_cluster(opts: &Options) -> Result<String, String> {
    use cnet_core::trace::ShardFrontier;

    let inject: Option<u64> = opts
        .get("inject")
        .map(|s| s.parse().map_err(|_| format!("--inject expects a numeric seed, got '{s}'")))
        .transpose()?;
    let addrs: Vec<String> = opts
        .get("addr")
        .ok_or("backend cluster needs --addr ADDR1,ADDR2,...")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("backend cluster needs at least one node address".to_string());
    }
    let mut members = Vec::new();
    for addr in &addrs {
        let client = cnet_net::RemoteCounter::connect(&addr[..], 1)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let info = client.node_info().map_err(|e| format!("node info {addr}: {e}"))?;
        members.push((info, client, addr.clone()));
    }
    let chain = members[0].0.nodes;
    for (info, _, addr) in &members {
        if info.nodes != chain {
            return Err(format!(
                "{addr} reports a {}-node chain but {} reported {chain} — mixed clusters",
                info.nodes, addrs[0]
            ));
        }
    }
    if members.len() != chain as usize {
        return Err(format!(
            "the chain has {chain} nodes but {} addresses were given — the audit needs \
             every node's shards",
            members.len()
        ));
    }
    members.sort_by_key(|(info, _, _)| info.node);
    for (expect, (info, _, addr)) in members.iter().enumerate() {
        if info.node as usize != expect {
            return Err(format!("duplicate cluster position {} (reported by {addr})", info.node));
        }
    }
    let mut out = format!("== cnet audit: backend=cluster, {chain} node(s) ==\n\n");
    // Fetch each node's shard frontiers until every stream stays dry over
    // a settle delay (the server's close-time flush is asynchronous).
    // Frontiers carry lifetime totals (drops, sampling skips) and the
    // shard's locally witnessed partial verdict alongside the buffered
    // events, so all of them are kept and folded in fetch order — the
    // MergeAuditor's "latest frontier wins" rule keeps the stats exact.
    let shards_per_node: Vec<usize> =
        members.iter().map(|(info, _, _)| info.shards as usize).collect();
    let mut fetched: Vec<(usize, ShardFrontier)> = Vec::new();
    for (node, (info, client, addr)) in members.iter().enumerate() {
        let mut events = 0usize;
        let mut settle = 0;
        while info.shards > 0 && settle < 2 {
            let mut moved = 0usize;
            for shard in 0..info.shards {
                let frontier = client
                    .fetch_frontier(shard, cnet_net::wire::MAX_FRONTIER_OPS)
                    .map_err(|e| format!("frontier fetch {addr}: {e}"))?;
                moved += frontier.ops.len();
                fetched.push((node, frontier));
            }
            if moved == 0 {
                settle += 1;
                std::thread::sleep(std::time::Duration::from_millis(100));
            } else {
                settle = 0;
                events += moved;
            }
        }
        let _ = writeln!(
            out,
            "node {} @ {addr}: {} shard(s), {} event(s) fetched",
            info.node, info.shards, events
        );
    }
    // `--inject SEED`: deterministically re-stamp one fetched op past the
    // end of the run. The victim is seed-chosen among the ops that some
    // *other* shard outvalues, so the corrupted history provably contains
    // a larger value whose interval completed before the victim's — the
    // audit MUST come back non-linearizable, and a clean verdict here
    // means the pipeline lost the violation (the regression this guards).
    if let Some(seed) = inject {
        let offsets: Vec<usize> = shards_per_node
            .iter()
            .scan(0usize, |acc, &n| {
                let o = *acc;
                *acc += n;
                Some(o)
            })
            .collect();
        let mut shard_max = vec![0u64; shards_per_node.iter().sum::<usize>().max(1)];
        let mut max_stamp = 0u64;
        for (node, f) in &fetched {
            let g = offsets[*node] + f.shard;
            for op in &f.ops {
                shard_max[g] = shard_max[g].max(op.value);
                max_stamp = max_stamp.max(op.exit_ns);
            }
        }
        let mut victims: Vec<(usize, usize)> = Vec::new();
        for (i, (node, f)) in fetched.iter().enumerate() {
            let g = offsets[*node] + f.shard;
            let other_max =
                shard_max.iter().enumerate().filter(|&(s, _)| s != g).map(|(_, &v)| v).max();
            if let Some(other_max) = other_max {
                for (j, op) in f.ops.iter().enumerate() {
                    if op.value < other_max {
                        victims.push((i, j));
                    }
                }
            }
        }
        if victims.is_empty() {
            return Err("--inject: no fetched op is outvalued by another shard — \
                        nothing to corrupt"
                .to_string());
        }
        let (fi, oj) = victims[(seed as usize) % victims.len()];
        let op = &mut fetched[fi].1.ops[oj];
        op.enter_ns = max_stamp + 1_000_000_000;
        op.exit_ns = op.enter_ns + 100;
        let _ = writeln!(
            out,
            "fault injection (seed {seed}): op value {} re-stamped 1s past the end of the run",
            op.value
        );
    }
    // Global shard space: node k's local shard s becomes offset(k) + s.
    // The collector remaps shards and process ids and folds every frontier
    // into one exact merged verdict — bit-identical to the sequential
    // auditor on the same per-shard streams.
    let mut collector = cnet_net::FrontierCollector::new(&shards_per_node);
    for (node, frontier) in fetched {
        collector.ingest(node, frontier);
    }
    collector.finish();
    let audited_ops: u64 = collector
        .merged()
        .shard_stats()
        .iter()
        .map(|s| s.observed as u64 + s.dropped + s.skipped)
        .sum();
    for (node, (info, _, _)) in members.iter().enumerate() {
        let range = collector.offset(node)..collector.offset(node) + info.shards as usize;
        let stats = &collector.merged().shard_stats()[range];
        let dropped: u64 = stats.iter().map(|s| s.dropped).sum();
        let skipped: u64 = stats.iter().map(|s| s.skipped).sum();
        if dropped > 0 || skipped > 0 {
            let _ = writeln!(
                out,
                "node {} coverage: {} dropped, {} skipped by sampling",
                info.node, dropped, skipped
            );
        }
    }
    let dropped = collector.merged().dropped();
    if dropped * 1000 > audited_ops.max(1) {
        let _ = writeln!(
            out,
            "warning: ring overflow dropped {dropped} of {audited_ops} events (>0.1%) — \
             a clean verdict covers only the surviving trace"
        );
    }
    let auditor = collector.merged().auditor();
    let _ = writeln!(out, "\noperations audited:      {}", auditor.operations());
    if collector.merged().skipped() > 0 {
        let _ = writeln!(
            out,
            "sampling skipped:        {} (server-side --audit-sample)",
            collector.merged().skipped()
        );
    }
    let _ = writeln!(out, "linearizable:            {}", auditor.is_linearizable());
    if let Some(v) = auditor.linearizability_violation() {
        let _ = writeln!(out, "  first lin violation:   op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "sequentially consistent: {}", auditor.is_sequentially_consistent());
    if let Some(v) = auditor.sequential_consistency_violation() {
        let _ = writeln!(out, "  first SC violation:    op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "F_nl  = {:.4}", auditor.f_nl());
    let _ = writeln!(out, "F_nsc = {:.4}", auditor.f_nsc());
    let clean = auditor.is_clean();
    let _ = writeln!(
        out,
        "\naudit verdict: {}",
        if clean { "clean (0 violations)" } else { "violations detected" }
    );
    // A violations verdict is a failed audit: surface it through the exit
    // code so scripts and CI gates fail closed.
    if clean {
        Ok(out)
    } else {
        Err(out)
    }
}

fn cmd_audit(args: &[String]) -> Result<String, String> {
    let [w, flags @ ..] = args else {
        return Err(
            "expected: cnet audit <w> [--backend compiled|graph_walk|diffracting|fetch_add|lock|\
             relaxed|elimination|remote|cluster] [--family F] [--threads N] [--ops N] \
             [--sub-counters K] [--addr HOST:PORT] [--audit-threads N] [--audit-sample k] \
             [--inject SEED (cluster only)]"
                .to_string(),
        );
    };
    let fan: usize = w.parse().map_err(|_| format!("'{w}' is not a valid width"))?;
    let opts = Options::parse(flags)?;
    opts.allow(&[
        "backend",
        "family",
        "threads",
        "ops",
        "addr",
        "sub-counters",
        "audit-threads",
        "audit-sample",
        "inject",
    ])?;
    let backend = opts.get("backend").unwrap_or("compiled").to_string();
    if backend == "cluster" {
        return cmd_audit_cluster(&opts);
    }
    if opts.get("inject").is_some() {
        return Err("--inject only makes sense with --backend cluster".to_string());
    }
    let family = opts.get("family").unwrap_or("bitonic").to_string();
    let threads = opts.usize_or("threads", 1)?.max(1);
    let ops = opts.usize_or("ops", 10_000)?.max(1);
    let audit_threads = opts.usize_or("audit-threads", 0)?;
    let sample_k = opts.usize_or("audit-sample", 1)?.max(1);
    let workload = Workload { threads, increments_per_thread: ops };
    // One ring per thread, sized to the whole run: zero drops by
    // construction, so the audit sees every operation (or, with
    // `--audit-sample k`, exactly the 1-in-k sound sample of it).
    let recorder = Arc::new(TraceRecorder::with_sampling(threads, ops, sample_k));
    let mut live: Vec<String> = Vec::new();
    let (run, batches) = match backend.as_str() {
        "compiled" => {
            let net = parse_network(&family, w)?;
            let counter =
                cnet_runtime::SharedNetworkCounter::with_recorder(&net, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "graph_walk" => {
            let net = parse_network(&family, w)?;
            let counter =
                Traced::new(cnet_runtime::GraphWalkCounter::new(&net), Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "combining" => {
            let net = parse_network(&family, w)?;
            let counter = Traced::new(
                cnet_runtime::CombiningFunnel::new(
                    cnet_runtime::SharedNetworkCounter::new(&net),
                    threads,
                ),
                Arc::clone(&recorder),
            );
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "diffracting" => {
            let counter =
                cnet_runtime::DiffractingTree::with_recorder(fan, 4, Arc::clone(&recorder))?;
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "fetch_add" => {
            let counter =
                Traced::new(cnet_runtime::FetchAddCounter::new(), Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "lock" => {
            let counter = Traced::new(cnet_runtime::LockCounter::new(), Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "relaxed" => {
            let sub =
                opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
            let counter = cnet_runtime::RelaxedCounter::with_recorder(sub, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        "elimination" => {
            let sub =
                opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
            let net = parse_network(&family, w)?;
            let counter =
                cnet_runtime::EliminationCounter::with_recorder(&net, sub, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        // Audits a *live socket*: each audit thread drives its own pooled
        // connection to a running `cnet serve`, and the recorded intervals
        // are the client-observed ones (network delay included).
        "remote" => {
            let addr = opts.get("addr").ok_or("backend remote needs --addr HOST:PORT")?;
            let remote = cnet_net::RemoteCounter::connect(addr, threads)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let counter = Traced::new(remote, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, audit_threads, &mut live)
        }
        other => {
            return Err(format!(
                "unknown backend '{other}' (expected compiled, graph_walk, combining, \
                 diffracting, fetch_add, lock, relaxed, elimination, remote, or cluster)"
            ))
        }
    };
    let a = &run.auditor;
    let clean = a.is_linearizable() && a.is_sequentially_consistent();
    // The relaxed backends trade ordering for throughput *on purpose*:
    // reordering is their contract, so a non-linearizable verdict is a
    // measurement (reported as QQC lateness), not a failure. Every other
    // backend still fails the process on violations.
    let enforce = !matches!(backend.as_str(), "relaxed" | "elimination");
    let shown_family = match backend.as_str() {
        "compiled" | "graph_walk" | "combining" | "elimination" => family.as_str(),
        _ => "-",
    };
    let mut out = format!(
        "== cnet audit: backend={backend} family={shown_family} w={fan}, \
         {threads} threads x {ops} ops ==\n\n"
    );
    for line in &live {
        out.push_str(line);
        out.push('\n');
    }
    if !live.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "events recorded:         {}", run.recorded);
    let _ = writeln!(out, "events dropped:          {}", run.dropped);
    if sample_k > 1 {
        let _ = writeln!(
            out,
            "events skipped:          {} (1-in-{sample_k} sampling)",
            run.skipped
        );
    }
    if audit_threads > 0 {
        let _ = writeln!(out, "audit workers:           {audit_threads}");
    }
    let _ = writeln!(out, "live drain batches:      {batches}");
    // Coverage accounting: a clean verdict over a silently truncated
    // trace would overstate what was checked, so drops are named per
    // shard and anything past 0.1% of the workload is called out loud.
    if run.dropped > 0 {
        let shards: Vec<String> = run
            .per_shard_dropped
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0)
            .map(|(s, &d)| format!("shard {s}: {d}"))
            .collect();
        let _ = writeln!(out, "  per-shard drops:       {}", shards.join(", "));
        let total_ops = (threads * ops) as u64;
        if run.dropped * 1000 > total_ops {
            let _ = writeln!(
                out,
                "  warning: ring overflow dropped {} of {total_ops} events (>0.1%) — \
                 a clean verdict covers only the surviving trace",
                run.dropped
            );
        }
    }
    let _ = writeln!(out, "operations audited:      {}", a.operations());
    let _ = writeln!(out, "linearizable:            {}", a.is_linearizable());
    if let Some(v) = a.linearizability_violation() {
        let _ = writeln!(out, "  first lin violation:   op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "sequentially consistent: {}", a.is_sequentially_consistent());
    if let Some(v) = a.sequential_consistency_violation() {
        let _ = writeln!(out, "  first SC violation:    op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "F_nl  = {:.4}", a.f_nl());
    let _ = writeln!(out, "F_nsc = {:.4}", a.f_nsc());
    let _ = writeln!(
        out,
        "qqc lateness: max {} mean {:.2} p99 {}",
        a.qqc_max(),
        a.qqc_mean(),
        a.qqc_p99()
    );
    let _ = writeln!(
        out,
        "\naudit verdict: {}",
        if clean {
            "clean (0 violations)".to_string()
        } else if enforce {
            "violations detected".to_string()
        } else {
            format!(
                "relaxed backend: reordering measured, qqc_max {} (not a failure)",
                a.qqc_max()
            )
        }
    );
    // A violations verdict must fail the process (nonzero exit), not just
    // print — CI gates read the exit code, not the transcript. The
    // deliberately relaxed backends are exempt: for them the audit is a
    // meter, not a gate.
    if clean || !enforce {
        Ok(out)
    } else {
        Err(out)
    }
}

fn render_execution(net: &Network, exec: &cnet_sim::TimedExecution) -> String {
    let params = TimingParams::measure(exec);
    let ops = Op::from_execution(exec);
    let report = audit(&ops);
    let mut out = String::new();
    let _ = writeln!(out, "\nmeasured timing parameters:");
    let fmt_opt = |v: Option<f64>| v.map_or("inf".to_string(), |x| format!("{x:.3}"));
    let _ = writeln!(out, "  c_min = {}", fmt_opt(params.c_min));
    let _ = writeln!(out, "  c_max = {}", fmt_opt(params.c_max));
    let _ = writeln!(out, "  C_L   = {}", fmt_opt(params.local_delay));
    let _ = writeln!(out, "  C_g   = {}", fmt_opt(params.global_delay));
    let _ = writeln!(out, "\ntiming conditions:");
    let mut conditions = vec![
        TimingCondition::RatioAtMostTwo,
        TimingCondition::global_delay(net),
        TimingCondition::local_delay(net),
        TimingCondition::mpt_sufficient(net),
    ];
    if let Ok(c) = TimingCondition::mpt_necessary(net) {
        conditions.push(c);
    }
    for c in conditions {
        let _ = writeln!(out, "  [{}] {c}  —  {}", if c.holds(&params) { "x" } else { " " }, c.role());
    }
    let _ = writeln!(out, "\nconsistency audit:");
    let _ = write!(out, "{report}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn info_reports_structure() {
        let out = call(&["info", "bitonic", "8"]).unwrap();
        assert!(out.contains("depth d(G):   6"));
        assert!(out.contains("split number: 3"));
        assert!(out.contains("irad(G):      3"));
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = call(&["dot", "tree", "4"]).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn simulate_renders_audit() {
        let out = call(&["simulate", "bitonic", "4", "--ratio", "1.5", "--seed", "3"]).unwrap();
        assert!(out.contains("linearizable:            true"));
        assert!(out.contains("c_max"));
    }

    #[test]
    fn waves_find_violations_above_threshold() {
        let out = call(&["waves", "bitonic", "8", "--ell", "1"]).unwrap();
        assert!(out.contains("linearizable:            false"));
        assert!(out.contains("sequentially consistent: false"));
    }

    #[test]
    fn race_detects_inversion() {
        let out = call(&["race", "bitonic", "2", "--ratio", "2.5"]).unwrap();
        assert!(out.contains("linearizable:            false"));
    }

    #[test]
    fn run_audits_threaded_history() {
        let out = call(&["run", "bitonic", "4", "--threads", "2", "--ops", "50"]).unwrap();
        assert!(out.contains("values dense: true"));
        assert!(out.contains("operations:              100"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(call(&["info"]).is_err());
        assert!(call(&["info", "bitonic", "6"]).unwrap_err().contains("unsupported width"));
        assert!(call(&["frobnicate", "bitonic", "8"]).unwrap_err().contains("unknown command"));
        assert!(call(&["simulate", "bitonic", "4", "--bogus", "1"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(call(&["waves", "tree", "8"]).is_err()); // tree has no split chops
    }

    #[test]
    fn usage_mentions_every_command() {
        let u = usage();
        for c in [
            "info", "dot", "simulate", "waves", "race", "replay", "run", "bench", "audit",
            "serve", "loadgen",
        ] {
            assert!(u.contains(c), "{c}");
        }
    }

    /// Boots `cnet serve` in a thread, discovers the ephemeral port via
    /// `--port-file`, drives it with `cnet loadgen --check --shutdown`,
    /// and reads both transcripts — the two-terminal quickstart, in-process.
    #[test]
    fn serve_and_loadgen_round_trip_with_audit() {
        let port_file = std::env::temp_dir().join("cnet_cli_test_serve.port");
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || {
                call(&[
                    "serve", "4", "--backend", "fetch_add", "--audit", "1", "--max-conns", "8",
                    "--port-file", &pf,
                ])
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out = call(&[
            "loadgen", "--addr", &addr, "--threads", "4", "--ops", "2000", "--batch", "32",
            "--check", "1", "--shutdown", "1",
        ])
        .unwrap();
        assert!(out.contains("= 2000 increments"), "{out}");
        assert!(out.contains("permutation 0..2000: true"), "{out}");
        assert!(out.contains("burst latency: p50"), "{out}");
        assert!(out.contains("server reactor:"), "{out}");
        assert!(out.contains("epoll wakeups"), "{out}");
        assert!(out.contains("server shutdown requested and acknowledged"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("drained after a remote shutdown request"), "{served}");
        assert!(served.contains("increments:  2000"), "{served}");
        assert!(served.contains("reactor:"), "{served}");
        assert!(served.contains("audit: 2000 ops audited"), "{served}");
        assert!(served.contains("clean"), "{served}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn loadgen_merges_a_tcp_row_into_the_artifact() {
        let port_file = std::env::temp_dir().join("cnet_cli_test_merge.port");
        let out_file = std::env::temp_dir().join("cnet_cli_test_merge.json");
        let _ = std::fs::remove_file(&port_file);
        let _ = std::fs::remove_file(&out_file);
        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || call(&["serve", "4", "--backend", "compiled", "--port-file", &pf])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out_str = out_file.to_str().unwrap();
        // Merge twice: the second run must replace the first row, not
        // stack. (`--check 0`: against a long-lived server the values are
        // a later window of the count, not 0..n.)
        for _ in 0..2 {
            let out = call(&[
                "loadgen", "--addr", &addr, "--threads", "2", "--ops", "500", "--check", "0",
                "--out", out_str, "--label", "compiled", "--network", "bitonic",
            ])
            .unwrap();
            assert!(out.contains("tcp throughput row merged"), "{out}");
        }
        // A different pooled-connection count is a new cell, not a replace.
        let out = call(&[
            "loadgen", "--addr", &addr, "--threads", "2", "--connections", "6", "--ops", "500",
            "--check", "0", "--out", out_str, "--label", "compiled", "--network", "bitonic",
        ])
        .unwrap();
        assert!(out.contains("2 threads over 6 connections"), "{out}");
        call(&["loadgen", "--addr", &addr, "--ops", "1", "--check", "0", "--shutdown", "1"])
            .unwrap();
        server.join().unwrap().unwrap();
        let text = std::fs::read_to_string(&out_file).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        let rows: Vec<_> = report
            .measurements
            .iter()
            .filter(|m| m.transport == cnet_bench::Measurement::TRANSPORT_TCP)
            .collect();
        // The two 2-connection runs collapsed into one row; the
        // 6-connection run is its own cell (identity includes the pool).
        assert_eq!(rows.len(), 2, "{rows:?}");
        for row in &rows {
            assert_eq!(row.counter, "compiled");
            assert_eq!(row.network, "bitonic");
            assert_eq!(row.threads, 2);
            assert!(row.p99_ns.unwrap() > 0, "{row:?}");
        }
        assert!(report.net_cell_at("compiled", "bitonic", 2, 2).is_some());
        assert!(report.net_cell_at("compiled", "bitonic", 2, 6).is_some());
        let _ = std::fs::remove_file(&port_file);
        let _ = std::fs::remove_file(&out_file);
    }

    #[test]
    fn serve_and_loadgen_reject_bad_arguments() {
        assert!(call(&["serve"]).unwrap_err().contains("cnet serve <w>"));
        assert!(call(&["serve", "4", "--backend", "quantum"])
            .unwrap_err()
            .contains("unknown backend"));
        assert!(call(&["serve", "4", "--backpressure", "panic"])
            .unwrap_err()
            .contains("reject or block"));
        assert!(call(&["loadgen"]).unwrap_err().contains("needs --addr"));
        assert!(call(&["loadgen", "--addr", "127.0.0.1:1", "--ops", "1"])
            .unwrap_err()
            .contains("loadgen against"));
        assert!(call(&["loadgen", "--addr", "x", "--bogus", "1"])
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn cluster_flags_are_validated() {
        assert!(call(&["serve", "4", "--cluster", "2"])
            .unwrap_err()
            .contains("expects K/N"));
        assert!(call(&["serve", "4", "--cluster", "2/2"])
            .unwrap_err()
            .contains("below the node count"));
        assert!(call(&["serve", "4", "--cluster", "0/0"])
            .unwrap_err()
            .contains("below the node count"));
        assert!(call(&["serve", "4", "--cluster", "0/2", "--backend", "fetch_add"])
            .unwrap_err()
            .contains("cannot be partitioned"));
        assert!(call(&["serve", "4", "--peers", "127.0.0.1:1"])
            .unwrap_err()
            .contains("--peers only makes sense with --cluster"));
        assert!(call(&["audit", "4", "--backend", "cluster"])
            .unwrap_err()
            .contains("needs --addr"));
        assert!(call(&["loadgen", "--addr", "127.0.0.1:1", "--ops", "0"])
            .unwrap_err()
            .contains("--ops 0 only makes sense with --shutdown 1"));
    }

    /// The full cluster story through the CLI alone: two `serve --cluster`
    /// nodes chained over loopback, a routed loadgen **at the tail** that
    /// still returns an exact permutation, a merged cluster-wide audit,
    /// and a graceful per-node drain via `--ops 0 --shutdown 1`.
    #[test]
    fn cluster_serve_loadgen_and_audit_round_trip() {
        let tail_pf = std::env::temp_dir().join("cnet_cli_test_cluster_tail.port");
        let head_pf = std::env::temp_dir().join("cnet_cli_test_cluster_head.port");
        let _ = std::fs::remove_file(&tail_pf);
        let _ = std::fs::remove_file(&head_pf);
        let wait_port = |pf: &std::path::Path| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            loop {
                if let Ok(addr) = std::fs::read_to_string(pf) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "serve never wrote {pf:?}");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        // Tail first: the head dials its downstream peer at startup.
        let tail = std::thread::spawn({
            let pf = tail_pf.to_str().unwrap().to_string();
            move || {
                call(&[
                    "serve", "8", "--cluster", "1/2", "--audit", "1", "--max-conns", "8",
                    "--port-file", &pf,
                ])
            }
        });
        let tail_addr = wait_port(&tail_pf);
        let head = std::thread::spawn({
            let pf = head_pf.to_str().unwrap().to_string();
            let peers = tail_addr.clone();
            move || {
                call(&[
                    "serve", "8", "--cluster", "0/2", "--peers", &peers, "--audit", "1",
                    "--max-conns", "8", "--port-file", &pf,
                ])
            }
        });
        let head_addr = wait_port(&head_pf);
        // Routed loadgen pointed at the *tail*: the NodeInfo handshake
        // must re-dial the head (retry while the announcement settles).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let out = loop {
            match call(&[
                "loadgen", "--addr", &tail_addr, "--cluster", "1", "--threads", "4", "--ops",
                "2000", "--batch", "32", "--mode", "pipeline", "--check", "1",
            ]) {
                Ok(out) => break out,
                Err(e) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "routed loadgen never reached the head: {e}"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        };
        assert!(out.contains("permutation 0..2000: true"), "{out}");
        // Cluster-wide audit: fetch both nodes' shards, merge, one verdict.
        // The verdict itself is timing-dependent at 4 concurrent slots (the
        // paper's phenomenon — a clean verdict is asserted by the verify.sh
        // smoke, not here), but the merge must cover every operation, and a
        // violations verdict must come back as an error (nonzero exit).
        let audit = match call(&[
            "audit", "8", "--backend", "cluster", "--addr",
            &format!("{head_addr},{tail_addr}"),
        ]) {
            Ok(report) => {
                assert!(report.contains("audit verdict: clean"), "{report}");
                report
            }
            Err(report) => {
                assert!(report.contains("audit verdict: violations detected"), "{report}");
                report
            }
        };
        assert!(audit.contains("node 0 @"), "{audit}");
        assert!(audit.contains("node 1 @"), "{audit}");
        assert!(audit.contains("operations audited:      2000"), "{audit}");
        // Graceful drain, one node at a time, no traffic required.
        for addr in [&tail_addr, &head_addr] {
            let out =
                call(&["loadgen", "--addr", addr, "--ops", "0", "--shutdown", "1"]).unwrap();
            assert!(out.contains("shutdown requested and acknowledged"), "{out}");
        }
        let tail_out = tail.join().unwrap().unwrap();
        let head_out = head.join().unwrap().unwrap();
        assert!(tail_out.contains("drained after a remote shutdown request"), "{tail_out}");
        assert!(head_out.contains("drained after a remote shutdown request"), "{head_out}");
        // Every increment crossed the wire twice: once into the head,
        // once forwarded to the tail.
        assert!(head_out.contains("increments:  2000"), "{head_out}");
        assert!(tail_out.contains("increments:  2000"), "{tail_out}");
        let _ = std::fs::remove_file(&tail_pf);
        let _ = std::fs::remove_file(&head_pf);
    }

    /// The parallel audit pipeline end to end through the CLI: a server
    /// with `--audit-threads 2` steals shards while traffic runs, and the
    /// post-shutdown merge of the workers' frontiers covers every op.
    #[test]
    fn serve_with_audit_threads_steals_and_merges_every_op() {
        let pf = std::env::temp_dir().join("cnet_cli_test_par_audit.port");
        let _ = std::fs::remove_file(&pf);
        let server = std::thread::spawn({
            let pf = pf.to_str().unwrap().to_string();
            move || {
                call(&[
                    "serve", "8", "--audit", "1", "--audit-threads", "2", "--max-conns", "4",
                    "--port-file", &pf,
                ])
            }
        });
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            loop {
                if let Ok(addr) = std::fs::read_to_string(&pf) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "serve never wrote the port");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let out = call(&[
            "loadgen", "--addr", &addr, "--threads", "2", "--ops", "2000", "--shutdown", "1",
        ])
        .unwrap();
        assert!(out.contains("permutation 0..2000: true"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("audit pipeline: 2 worker(s)"), "{served}");
        // Everything the workers did not steal live is swept up by the
        // final flush + dry pass: the merged verdict covers all 2000 ops.
        assert!(served.contains("audit: 2000 ops audited"), "{served}");
        let _ = std::fs::remove_file(&pf);
    }

    /// The sticky regression for the audit pipeline: a cluster audit with
    /// server-side sampling must still *fail closed* on a corrupted
    /// history. `--inject SEED` re-stamps one sampled op past the end of
    /// the run, and the exit code must go nonzero.
    #[test]
    fn cluster_audit_with_sampling_fails_closed_on_injected_violation() {
        let pf = std::env::temp_dir().join("cnet_cli_test_inject.port");
        let _ = std::fs::remove_file(&pf);
        let server = std::thread::spawn({
            let pf = pf.to_str().unwrap().to_string();
            move || {
                call(&[
                    "serve", "8", "--audit", "1", "--audit-sample", "4", "--max-conns", "4",
                    "--port-file", &pf,
                ])
            }
        });
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            loop {
                if let Ok(addr) = std::fs::read_to_string(&pf) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "serve never wrote the port");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        // Pipelined single increments: batched frames are sampled
        // all-or-nothing per batch, so a 64-op batch would defeat a 1-in-4
        // stride. Singles exercise the per-op countdown.
        let out = call(&[
            "loadgen", "--addr", &addr, "--threads", "4", "--ops", "2000", "--mode", "pipeline",
        ])
        .unwrap();
        assert!(out.contains("permutation 0..2000: true"), "{out}");
        let report = call(&[
            "audit", "8", "--backend", "cluster", "--addr", &addr, "--inject", "42",
        ])
        .unwrap_err();
        assert!(report.contains("fault injection (seed 42)"), "{report}");
        assert!(report.contains("audit verdict: violations detected"), "{report}");
        // 1-in-4 sampling really was on server-side: skips crossed the wire.
        assert!(report.contains("sampling skipped:"), "{report}");
        let out = call(&["loadgen", "--addr", &addr, "--ops", "0", "--shutdown", "1"]).unwrap();
        assert!(out.contains("shutdown requested and acknowledged"), "{out}");
        let _ = server.join().unwrap();
        let _ = std::fs::remove_file(&pf);
    }

    #[test]
    fn bench_sweeps_and_writes_the_artifact() {
        let path = std::env::temp_dir().join("cnet_cli_test_bench.json");
        let path_str = path.to_str().unwrap();
        let out = call(&[
            "bench", "4", "--threads", "1,2", "--ops", "200", "--repeats", "1", "--out", path_str,
        ])
        .unwrap();
        assert!(out.contains("compiled/bitonic"));
        assert!(out.contains("graph_walk/periodic"));
        assert!(out.contains("compiled/bitonic+audit"));
        assert!(out.contains("compiled vs graph-walk traversal on bitonic B(4) at 2 threads"));
        assert!(out.contains("audited compiled on bitonic B(4) at 2 threads retains"));
        assert!(out.contains(&format!("report written to {path_str}")));
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        assert_eq!(report.fan, 4);
        assert_eq!(report.version, 7);
        assert_eq!(report.measurements.len(), 2 * 14);
        // Schema v7: the audited rows carry their paired retention.
        let audited = report.audited_cell("compiled", "bitonic", 2).unwrap();
        assert!(audited.retention.is_some());
        // The consistency sweep merges its qqc rows into the same
        // artifact without disturbing the plain rows.
        let out = call(&[
            "bench",
            "4",
            "--threads",
            "1,2",
            "--ops",
            "200",
            "--repeats",
            "1",
            "--sweep",
            "consistency",
            "--sub-counters",
            "4",
            "--out",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("consistency sweep"), "{out}");
        assert!(out.contains("relaxed"), "{out}");
        assert!(out.contains(&format!("consistency rows merged into {path_str}")), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        assert_eq!(report.version, 7);
        assert_eq!(report.measurements.len(), 2 * 14 + 2 * 7);
        assert!(report.cell("compiled", "bitonic", 2).is_some());
        let c = report.consistency_cell("relaxed", "-", 2).unwrap();
        assert!(c.qqc_max.is_some() && c.f_nl.is_some());
        assert!(report.consistency_cell("elimination", "bitonic", 1).is_some());
        // The audit sweep merges the retention-vs-cost curve into the
        // same artifact: plain cells are replaced in place, qqc and
        // batched rows survive, live and sampled rows are new cells.
        let out = call(&[
            "bench", "4", "--threads", "1,2", "--ops", "200", "--repeats", "1", "--sweep",
            "audit", "--sub-counters", "4", "--out", path_str,
        ])
        .unwrap();
        assert!(out.contains("audit sweep"), "{out}");
        assert!(out.contains("retention"), "{out}");
        assert!(out.contains(&format!("audit rows merged into {path_str}")), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        assert_eq!(report.version, 7);
        // 28 sweep rows + 14 consistency rows, minus the 2 plain compiled
        // + 2 audited compiled cells the audit sweep replaces, plus
        // 2 × 10 audit-sweep rows.
        assert_eq!(report.measurements.len(), 2 * 14 + 2 * 7 - 4 + 2 * 10);
        assert!(report.audit_cell_at("compiled", "bitonic", 2, 2, 8).is_some());
        assert!(report.retention("relaxed", "-", 2).is_some());
        assert!(report.consistency_cell("relaxed", "-", 2).is_some());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_batch_sweep_adds_rows_and_reports_the_speedup() {
        let path = std::env::temp_dir().join("cnet_cli_test_bench_batch.json");
        let path_str = path.to_str().unwrap();
        let out = call(&[
            "bench", "4", "--threads", "2", "--batch", "1,8", "--ops", "400", "--repeats", "1",
            "--out", path_str,
        ])
        .unwrap();
        assert!(out.contains("compiled/bitonic x8"), "{out}");
        assert!(out.contains("batched traversal (k=8) on bitonic B(4) at 2 threads"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        // 14 plain rows + fetch_add and compiled × 3 families at batch=8.
        assert_eq!(report.measurements.len(), 14 + 4);
        let row = report.batch_cell("compiled", "bitonic", 2, 8).unwrap();
        assert_eq!(row.batch, 8);
        assert!(report.batch_speedup("compiled", "bitonic", 2, 8).is_some());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn audit_single_thread_is_clean_on_every_backend() {
        // One thread: operations are totally ordered in real time and the
        // values strictly increase, so every backend must audit clean —
        // this is the deterministic smoke `scripts/verify.sh` relies on.
        for backend in [
            "compiled",
            "graph_walk",
            "combining",
            "diffracting",
            "fetch_add",
            "lock",
            "relaxed",
            "elimination",
        ] {
            let out =
                call(&["audit", "8", "--backend", backend, "--ops", "300"]).unwrap();
            assert!(out.contains("events recorded:         300"), "{backend}: {out}");
            assert!(out.contains("events dropped:          0"), "{backend}: {out}");
            assert!(out.contains("linearizable:            true"), "{backend}: {out}");
            assert!(out.contains("qqc lateness: max 0"), "{backend}: {out}");
            assert!(out.contains("audit verdict: clean (0 violations)"), "{backend}: {out}");
        }
    }

    #[test]
    fn audit_relaxed_backend_reports_lateness_instead_of_failing() {
        // Multi-threaded relaxed runs may reorder; the audit must report
        // the measured lateness and still exit zero (Ok) — the relaxed
        // contract is the exact multiset, not the order.
        let out = call(&[
            "audit", "8", "--backend", "relaxed", "--threads", "4", "--ops", "2000",
            "--sub-counters", "8",
        ])
        .unwrap();
        assert!(out.contains("qqc lateness: max"), "{out}");
        assert!(
            out.contains("audit verdict: clean (0 violations)")
                || out.contains("relaxed backend: reordering measured"),
            "{out}"
        );
    }

    #[test]
    fn audit_reports_fractions_and_family() {
        let out = call(&[
            "audit", "4", "--family", "periodic", "--threads", "2", "--ops", "200",
        ])
        .unwrap();
        assert!(out.contains("backend=compiled family=periodic w=4, 2 threads x 200 ops"));
        assert!(out.contains("events recorded:         400"));
        assert!(out.contains("F_nl  ="));
        assert!(out.contains("F_nsc ="));
        assert!(out.contains("audit verdict:"));
    }

    /// `cnet audit --backend remote` runs the client-side audit against a
    /// live socket: intervals include the wire, every op still accounted.
    #[test]
    fn audit_remote_backend_runs_against_a_live_serve() {
        let port_file = std::env::temp_dir().join("cnet_cli_test_audit_remote.port");
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || call(&["serve", "4", "--backend", "fetch_add", "--port-file", &pf])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out = call(&[
            "audit", "4", "--backend", "remote", "--addr", &addr, "--threads", "2", "--ops",
            "200",
        ])
        .unwrap();
        assert!(out.contains("backend=remote"), "{out}");
        assert!(out.contains("events recorded:         400"), "{out}");
        assert!(out.contains("audit verdict:"), "{out}");
        call(&["loadgen", "--addr", &addr, "--ops", "1", "--check", "0", "--shutdown", "1"])
            .unwrap();
        server.join().unwrap().unwrap();
        assert!(call(&["audit", "4", "--backend", "remote"])
            .unwrap_err()
            .contains("needs --addr"));
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn audit_rejects_bad_arguments() {
        assert!(call(&["audit"]).unwrap_err().contains("cnet audit <w>"));
        assert!(call(&["audit", "six"]).unwrap_err().contains("not a valid width"));
        assert!(call(&["audit", "8", "--backend", "quantum"])
            .unwrap_err()
            .contains("unknown backend"));
        assert!(call(&["audit", "8", "--bogus", "1"]).unwrap_err().contains("unknown flag"));
        assert!(call(&["audit", "6"]).is_err()); // not a power of two
    }

    #[test]
    fn bench_rejects_bad_arguments() {
        assert!(call(&["bench"]).unwrap_err().contains("cnet bench <w>"));
        assert!(call(&["bench", "six"]).unwrap_err().contains("not a valid width"));
        assert!(call(&["bench", "6"]).unwrap_err().contains("unsupported width"));
        assert!(call(&["bench", "4", "--threads", "0"])
            .unwrap_err()
            .contains("positive integers"));
        assert!(call(&["bench", "4", "--bogus", "1"]).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn save_and_replay_round_trip() {
        let path = std::env::temp_dir().join("cnet_cli_test_waves.json");
        let path_str = path.to_str().unwrap();
        let saved = call(&["waves", "bitonic", "8", "--ell", "1", "--save", path_str]).unwrap();
        assert!(saved.contains("schedule saved"));
        let replayed = call(&["replay", "bitonic", "8", "--from", path_str]).unwrap();
        assert!(replayed.contains("linearizable:            false"));
        // Replaying against the wrong fan is rejected.
        let err = call(&["replay", "bitonic", "4", "--from", path_str]).unwrap_err();
        assert!(err.contains("artifact targets w=8"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn replay_reports_missing_file() {
        let err = call(&["replay", "bitonic", "8", "--from", "/nonexistent/x.json"]).unwrap_err();
        assert!(err.contains("read /nonexistent/x.json"));
    }
}
