//! The `cnet` subcommands.

use crate::args::{parse_network, Options};
use crate::artifact::ScheduleArtifact;
use cnet_core::audit::audit;
use cnet_core::conditions::TimingCondition;
use cnet_core::op::Op;
use cnet_sim::adversary::{holding_race, three_wave};
use cnet_sim::engine::run;
use cnet_sim::timing::TimingParams;
use cnet_sim::validate::validate;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_runtime::{drive_audited, AuditedRun, ProcessCounter, TraceRecorder, Traced, Workload};
use cnet_topology::analysis::split::split_sequence;
use cnet_topology::analysis::{influence_radius, Valencies};
use cnet_topology::Network;
use std::fmt::Write as _;
use std::sync::Arc;

/// The tool's usage text.
pub fn usage() -> String {
    "usage: cnet <command> <family> <w> [--flag value ...]\n\
     \x20      cnet bench <w> [--flag value ...]\n\
     \x20      cnet audit <w> [--flag value ...]\n\
     \n\
     commands:\n\
     \x20 info      structural report: depth, size, split structure, thresholds\n\
     \x20 dot       Graphviz DOT of the network to stdout\n\
     \x20 simulate  random timed schedule; flags: --processes --tokens --ratio\n\
     \x20           --local-delay --seed --save <file>\n\
     \x20 waves     Theorem 5.11 three-wave adversary; flags: --ell --ratio\n\
     \x20           --save <file>\n\
     \x20 race      holding race adversary; flags: --ratio --shared (0/1)\n\
     \x20           --save <file>\n\
     \x20 replay    re-run a saved schedule; flags: --from <file>\n\
     \x20 run       threaded shared-memory run; flags: --threads --ops\n\
     \x20 bench     throughput sweep over every counter and family; flags:\n\
     \x20           --threads 1,2,4,8 --batch 1,16,64 --ops --repeats\n\
     \x20           --out <file.json> --sweep consistency (audited qqc rows:\n\
     \x20           the throughput-vs-inconsistency frontier, merged into\n\
     \x20           --out) --sub-counters K (relaxed bank / elimination slot\n\
     \x20           count)\n\
     \x20 audit     threaded run through the trace recorder with live online\n\
     \x20           consistency monitors; flags: --backend compiled|graph_walk|\n\
     \x20           combining|diffracting|fetch_add|lock|relaxed|elimination|\n\
     \x20           remote|cluster --family --threads --ops --sub-counters K\n\
     \x20           --addr HOST:PORT (backend remote audits a live serve;\n\
     \x20           backend cluster fetches and merges every node's trace\n\
     \x20           shards, --addr ADDR1,ADDR2,...); exits nonzero on a\n\
     \x20           violations verdict, except for the deliberately relaxed\n\
     \x20           backends, whose measured QQC lateness is the report\n\
     \x20 serve     counting service on a TCP socket; blocks until a client\n\
     \x20           sends Shutdown; flags: --backend compiled|fetch_add|lock|\n\
     \x20           diffracting|combining|relaxed|elimination --family\n\
     \x20           --sub-counters K --addr 127.0.0.1:0 --max-conns\n\
     \x20           --processes --reactors N (0 = one per core) --backpressure\n\
     \x20           reject|block --audit 0/1 --port-file <file>\n\
     \x20           --cluster K/N --peers ADDR (serve layer range K of an N-node\n\
     \x20           partition, forwarding to the downstream peer)\n\
     \x20 loadgen   hammer a running serve; flags: --addr HOST:PORT --threads\n\
     \x20           --connections M (pooled, 0 = one per thread) --ops (total)\n\
     \x20           --batch --mode batch|pipeline --check 0/1 --shutdown 0/1\n\
     \x20           --out <file.json> --label C --network N\n\
     \x20           --cluster 0/1 (route to the head of a counting cluster)\n\
     \x20           (--ops 0 --shutdown 1 sends only the shutdown handshake —\n\
     \x20           the way to drain a relay/tail node that serves no clients)\n\
     \n\
     families: bitonic (b), periodic (p), tree (t), block (l), merger (m)\n"
        .to_string()
}

/// Executes an argument vector, returning the rendered output.
///
/// # Errors
///
/// Returns a user-facing message for any malformed invocation or failed
/// construction.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    // `bench` and `audit` take no family argument — `bench` sweeps every
    // family at once, `audit` selects one via `--family`.
    if let [command, rest @ ..] = args {
        if command == "bench" {
            return cmd_bench(rest);
        }
        if command == "audit" {
            return cmd_audit(rest);
        }
        if command == "serve" {
            return cmd_serve(rest);
        }
        if command == "loadgen" {
            return cmd_loadgen(rest);
        }
    }
    let [command, family, w, rest @ ..] = args else {
        return Err("expected: cnet <command> <family> <w> [flags]".to_string());
    };
    let net = parse_network(family, w)?;
    let opts = Options::parse(rest)?;
    match command.as_str() {
        "info" => {
            opts.allow(&[])?;
            cmd_info(&net)
        }
        "dot" => {
            opts.allow(&[])?;
            Ok(cnet_topology::dot::to_dot(&net, "network"))
        }
        "simulate" => cmd_simulate(&net, family, w, &opts),
        "waves" => cmd_waves(&net, family, w, &opts),
        "race" => cmd_race(&net, family, w, &opts),
        "replay" => cmd_replay(&net, &opts),
        "run" => cmd_run(&net, &opts),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Writes the schedule artifact when `--save` was given; returns the
/// message to prepend to the output.
fn maybe_save(
    opts: &Options,
    family: &str,
    w: &str,
    note: &str,
    specs: &[cnet_sim::TimedTokenSpec],
) -> Result<String, String> {
    let Some(path) = opts.get("save") else { return Ok(String::new()) };
    let artifact = ScheduleArtifact {
        family: family.to_string(),
        w: w.parse().map_err(|_| format!("'{w}' is not a valid width"))?,
        note: note.to_string(),
        specs: specs.to_vec(),
    };
    std::fs::write(path, artifact.to_json()?)
        .map_err(|e| format!("write {path}: {e}"))?;
    Ok(format!("schedule saved to {path}\n"))
}

fn cmd_info(net: &Network) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "{net}");
    let _ = writeln!(out, "  fan-in:       {}", net.fan_in());
    let _ = writeln!(out, "  fan-out:      {}", net.fan_out());
    let _ = writeln!(out, "  size:         {} balancers", net.size());
    let _ = writeln!(out, "  depth d(G):   {}", net.depth());
    let _ = writeln!(out, "  shallowness:  {}", net.shallowness());
    let _ = writeln!(out, "  uniform:      {}", net.is_uniform());
    let _ = writeln!(out, "  regular:      {}", net.is_regular());
    if let Ok(irad) = influence_radius(net) {
        let _ = writeln!(out, "  irad(G):      {irad}");
        let _ = writeln!(
            out,
            "  MPT97 necessary threshold (c_max/c_min): {:.3}",
            net.depth() as f64 / irad as f64 + 1.0
        );
    }
    let val = Valencies::compute(net);
    if let Ok(sd) = cnet_topology::analysis::split_depth(net, &val) {
        let _ = writeln!(out, "  split depth:  {sd}");
    }
    if let Ok(seq) = split_sequence(net) {
        let _ = writeln!(out, "  split number: {}", seq.split_number());
        let depths: Vec<String> =
            (0..seq.split_number()).map(|l| seq.stage_depth(l).to_string()).collect();
        let _ = writeln!(out, "  stage depths: {}", depths.join(", "));
        let _ = writeln!(
            out,
            "  continuously complete / uniformly splittable: {} / {}",
            seq.is_continuously_complete(),
            seq.is_continuously_uniformly_splittable()
        );
    }
    let _ = writeln!(
        out,
        "  Theorem 4.1 local-delay bound: C_L > {}·(c_max − 2·c_min)",
        net.depth()
    );
    Ok(out)
}

fn cmd_simulate(net: &Network, family: &str, w: &str, opts: &Options) -> Result<String, String> {
    opts.allow(&["processes", "tokens", "ratio", "local-delay", "seed", "save"])?;
    let cfg = WorkloadConfig {
        processes: opts.usize_or("processes", net.fan_in().min(8))?,
        tokens_per_process: opts.usize_or("tokens", 5)?,
        c_min: 1.0,
        c_max: opts.f64_or("ratio", 2.0)?,
        local_delay: opts.f64_or("local-delay", 0.0)?,
        start_spread: 3.0,
    };
    if cfg.c_max < cfg.c_min {
        return Err("--ratio must be at least 1".to_string());
    }
    let specs = generate(net, &cfg, opts.u64_or("seed", 0)?);
    let mut out = maybe_save(opts, family, w, "random workload schedule", &specs)?;
    let exec = run(net, &specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_waves(net: &Network, family: &str, w: &str, opts: &Options) -> Result<String, String> {
    opts.allow(&["ell", "ratio", "save"])?;
    let ell = opts.usize_or("ell", 1)?;
    let probe = three_wave(net, ell, 1.0, 1.0e6).map_err(|e| e.to_string())?;
    let ratio = opts.f64_or("ratio", probe.required_ratio + 0.01)?;
    let sched = three_wave(net, ell, 1.0, ratio).map_err(|e| e.to_string())?;
    let mut out = maybe_save(
        opts,
        family,
        w,
        &format!("Theorem 5.11 three-wave schedule, ell={ell}, ratio={ratio}"),
        &sched.specs,
    )?;
    let exec = run(net, &sched.specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    let _ = writeln!(
        out,
        "three-wave adversary at level {ell}: threshold ratio {:.3}, using {:.3}",
        sched.required_ratio, ratio
    );
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_race(net: &Network, family: &str, w: &str, opts: &Options) -> Result<String, String> {
    opts.allow(&["ratio", "shared", "save"])?;
    let shared = opts.usize_or("shared", 1)? != 0;
    let ratio = opts.f64_or("ratio", net.depth() as f64 + 1.01)?;
    let race = holding_race(net, 1.0, ratio, shared).map_err(|e| e.to_string())?;
    let mut out = maybe_save(
        opts,
        family,
        w,
        &format!("holding-race schedule, ratio={ratio}, shared={shared}"),
        &race.specs,
    )?;
    let exec = run(net, &race.specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    let _ = writeln!(
        out,
        "holding race: threshold ratio {:.3}, using {:.3}, shared chaser: {shared}",
        race.required_ratio, ratio
    );
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_replay(net: &Network, opts: &Options) -> Result<String, String> {
    opts.allow(&["from"])?;
    let path = opts.get("from").ok_or("replay needs --from <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let artifact = ScheduleArtifact::from_json(&text)?;
    if artifact.w != net.fan_out().max(net.fan_in()) {
        return Err(format!(
            "artifact targets w={}, but the requested network has fan {}/{}",
            artifact.w,
            net.fan_in(),
            net.fan_out()
        ));
    }
    let exec = run(net, &artifact.specs).map_err(|e| e.to_string())?;
    validate(net, &exec).map_err(|e| format!("execution failed validation: {e}"))?;
    let mut out = format!("replayed {} ({}):\n", path, artifact.note);
    out.push_str(&render_execution(net, &exec));
    Ok(out)
}

fn cmd_run(net: &Network, opts: &Options) -> Result<String, String> {
    opts.allow(&["threads", "ops"])?;
    let workload = cnet_runtime::Workload {
        threads: opts.usize_or("threads", 4)?,
        increments_per_thread: opts.usize_or("ops", 1000)?,
    };
    let counter = cnet_runtime::SharedNetworkCounter::new(net);
    let records = cnet_runtime::drive(&counter, workload);
    let ops = cnet_runtime::history::to_ops(&records);
    let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
    values.sort_unstable();
    let dense = values == (0..values.len() as u64).collect::<Vec<_>>();
    let mut out = format!(
        "threaded run: {} threads x {} ops, values dense: {dense}\n\n",
        workload.threads, workload.increments_per_thread
    );
    let _ = write!(out, "{}", audit(&ops));
    Ok(out)
}

/// Parses a comma-separated list of positive integers from `--flag`.
fn parse_positive_list(
    opts: &Options,
    flag: &str,
    default: Vec<usize>,
) -> Result<Vec<usize>, String> {
    match opts.get(flag) {
        None => Ok(default),
        Some(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t > 0)
                    .ok_or_else(|| format!("--{flag} expects positive integers, got '{t}'"))
            })
            .collect(),
    }
}

fn cmd_bench(args: &[String]) -> Result<String, String> {
    let [w, flags @ ..] = args else {
        return Err(
            "expected: cnet bench <w> [--threads 1,2,4,8] [--batch 1,16,64] [--ops N] \
             [--repeats N] [--out file]"
                .to_string(),
        );
    };
    let fan: usize = w.parse().map_err(|_| format!("'{w}' is not a valid width"))?;
    let opts = Options::parse(flags)?;
    opts.allow(&["threads", "batch", "ops", "repeats", "out", "net", "sweep", "sub-counters"])?;
    let threads = parse_positive_list(&opts, "threads", vec![1, 2, 4, 8])?;
    let batches = parse_positive_list(&opts, "batch", Vec::new())?;
    let cfg = cnet_bench::ThroughputConfig {
        fan,
        threads,
        ops_per_thread: opts.usize_or("ops", 20_000)?.max(1),
        repeats: opts.usize_or("repeats", 3)?.max(1),
        batches: batches.clone(),
    };
    if !fan.is_power_of_two() || fan < 2 {
        return Err(format!("unsupported width {fan}: expected a power of two >= 2"));
    }
    let sub_counters =
        opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
    match opts.get("sweep") {
        None => {}
        Some("consistency") => return cmd_bench_consistency(&cfg, sub_counters, &opts),
        Some(other) => {
            return Err(format!("--sweep expects 'consistency', got '{other}'"));
        }
    }
    let mut report = cnet_bench::run_throughput_sweep(&cfg);
    if opts.usize_or("net", 0)? != 0 {
        // Loopback-TCP rows land in the same artifact (`"transport":
        // "tcp"`), so the socket tax reads off one file.
        let net_cfg = cnet_bench::NetThroughputConfig {
            fan,
            threads: cfg.threads.clone(),
            connections: 0,
            ops_per_thread: cfg.ops_per_thread,
            batch: 64,
            mode: cnet_net::LoadGenMode::Pipeline,
            repeats: cfg.repeats,
        };
        let net_rows = cnet_bench::run_net_throughput(&net_cfg)
            .map_err(|e| format!("networked sweep: {e}"))?;
        report.measurements.extend(net_rows);
        // The same compiled bitonic network partitioned across a two-node
        // loopback chain (`"nodes": 2`, schema v5): the forwarding tax
        // reads off against the single-server tcp cell above.
        let cluster_rows = cnet_bench::run_cluster_net_throughput(&net_cfg, 2)
            .map_err(|e| format!("cluster sweep: {e}"))?;
        report.measurements.extend(cluster_rows);
    }
    let mut out = format!(
        "== throughput sweep (Mops/s): w={}, {} ops/thread, best of {}, {} cores ==\n\n{}",
        report.fan,
        report.ops_per_thread,
        report.repeats,
        report.cores,
        report.summary()
    );
    let oversubscribed: Vec<usize> = cfg
        .threads
        .iter()
        .copied()
        .filter(|&t| t > report.cores)
        .collect();
    if !oversubscribed.is_empty() {
        let _ = writeln!(
            out,
            "\nWARNING: thread counts {:?} exceed the host's {} core(s) — those rows are \
             flagged \"oversubscribed\": true and measure time-slicing, not parallel scaling",
            oversubscribed, report.cores
        );
    }
    let top = *cfg.threads.iter().max().expect("at least one thread count");
    if let Some(s) = report.speedup("compiled", "graph_walk", "bitonic", top) {
        let _ = writeln!(
            out,
            "\ncompiled vs graph-walk traversal on bitonic B({}) at {top} threads: {s:.2}x",
            report.fan
        );
    }
    if let Some(r) = report.retention("compiled", "bitonic", top) {
        let _ = writeln!(
            out,
            "audited compiled on bitonic B({}) at {top} threads retains {:.1}% of un-audited throughput",
            report.fan,
            r * 100.0
        );
    }
    if let Some(&k) = batches.iter().filter(|&&k| k > 1).max() {
        if let Some(s) = report.batch_speedup("compiled", "bitonic", top, k) {
            let _ = writeln!(
                out,
                "batched traversal (k={k}) on bitonic B({}) at {top} threads: {s:.2}x the \
                 per-token path",
                report.fan
            );
        }
    }
    if let (Some(tcp), Some(mem)) =
        (report.net_cell("fetch_add", "-", top), report.cell("fetch_add", "-", top))
    {
        let _ = writeln!(
            out,
            "loopback TCP fetch_add at {top} threads: {:.2} Mops/s ({:.1}% of shared memory)",
            tcp.mops,
            tcp.mops / mem.mops * 100.0
        );
    }
    if let (Some(two), Some(one)) = (
        report.cluster_cell("compiled", "bitonic", top, 2),
        report.net_cell("compiled", "bitonic", top),
    ) {
        let _ = writeln!(
            out,
            "two-node partitioned B({}) at {top} threads: {:.2} Mops/s ({:.1}% of the \
             single-node tcp cell)",
            report.fan,
            two.mops,
            two.mops / one.mops * 100.0
        );
    }
    if let Some(path) = opts.get("out") {
        cnet_bench::write_json(std::path::Path::new(path), &report)
            .map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(out)
}

/// `cnet bench <w> --sweep consistency`: the schema-v6
/// throughput-versus-inconsistency frontier. Every backend — strict and
/// relaxed — runs audited through the QQC lateness meter, and the rows
/// carry the measured `qqc_max`/`qqc_mean`/`f_nl` from the same run the
/// throughput was timed on. With `--out` the rows are merged into the
/// existing artifact (replacing prior qqc-bearing rows for the same
/// cells, preserving everything else) and the report version is bumped
/// to 6.
fn cmd_bench_consistency(
    cfg: &cnet_bench::ThroughputConfig,
    sub_counters: usize,
    opts: &Options,
) -> Result<String, String> {
    let rows = cnet_bench::run_consistency_sweep(cfg, sub_counters);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut frontier = cnet_bench::Table::new(vec![
        "threads".to_string(),
        "backend".to_string(),
        "Mops/s".to_string(),
        "qqc_max".to_string(),
        "qqc_mean".to_string(),
        "F_nl".to_string(),
    ]);
    for m in &rows {
        let label = if m.network == "-" {
            m.counter.clone()
        } else {
            format!("{}/{}", m.counter, m.network)
        };
        frontier.row(vec![
            m.threads.to_string(),
            label,
            format!("{:.2}", m.mops),
            m.qqc_max.map_or("-".to_string(), |v| v.to_string()),
            m.qqc_mean.map_or("-".to_string(), |v| format!("{v:.2}")),
            m.f_nl.map_or("-".to_string(), |v| format!("{v:.4}")),
        ]);
    }
    let mut out = format!(
        "== consistency sweep (throughput vs measured inconsistency): w={}, k={}, \
         {} ops/thread, best of {}, {} cores ==\n\n{}",
        cfg.fan, sub_counters, cfg.ops_per_thread, cfg.repeats, cores, frontier
    );
    let top = *cfg.threads.iter().max().expect("at least one thread count");
    let strict = rows
        .iter()
        .find(|m| m.counter == "compiled" && m.network == "bitonic" && m.threads == top);
    let relaxed = rows.iter().find(|m| m.counter == "relaxed" && m.threads == top);
    if let (Some(s), Some(r)) = (strict, relaxed) {
        let _ = writeln!(
            out,
            "\nrelaxed (k={sub_counters}) vs compiled bitonic B({}) at {top} threads: \
             {:.2}x the throughput at qqc_max {} (vs {})",
            cfg.fan,
            r.mops / s.mops,
            r.qqc_max.unwrap_or(0),
            s.qqc_max.unwrap_or(0),
        );
    }
    let _ = writeln!(
        out,
        "every row handed out the exact multiset 0..n — relaxation shows up only as \
         reordering (qqc lateness), never as a lost or duplicated value"
    );
    if let Some(path) = opts.get("out") {
        let p = std::path::Path::new(path);
        let mut report: cnet_bench::ThroughputReport = match std::fs::read_to_string(p) {
            Ok(text) => cnet_util::json::from_str(&text)
                .map_err(|e| format!("{path}: not a throughput report: {e}"))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                cnet_bench::ThroughputReport {
                    version: 6,
                    fan: cfg.fan,
                    ops_per_thread: cfg.ops_per_thread,
                    repeats: cfg.repeats,
                    cores,
                    measurements: Vec::new(),
                }
            }
            Err(e) => return Err(format!("read {path}: {e}")),
        };
        // Replace any prior consistency rows for the same cells; plain,
        // batched, tcp, and cluster rows are untouched (regenerating them
        // is expensive and they carry no qqc fields).
        report.measurements.retain(|m| {
            m.qqc_max.is_none()
                || !rows.iter().any(|r| {
                    r.counter == m.counter && r.network == m.network && r.threads == m.threads
                })
        });
        report.measurements.extend(rows);
        report.version = report.version.max(6);
        cnet_bench::write_json(p, &report).map_err(|e| format!("write {path}: {e}"))?;
        let _ = writeln!(out, "consistency rows merged into {path} (schema v{})", report.version);
    }
    Ok(out)
}

/// Builds the serveable backend named by `--backend`.
fn serve_backend(
    backend: &str,
    family: &str,
    w: &str,
    fan: usize,
    sub_counters: usize,
) -> Result<Arc<dyn ProcessCounter + Send + Sync>, String> {
    match backend {
        "compiled" => {
            let net = parse_network(family, w)?;
            Ok(Arc::new(cnet_runtime::SharedNetworkCounter::new(&net)))
        }
        "fetch_add" => Ok(Arc::new(cnet_runtime::FetchAddCounter::new())),
        "lock" => Ok(Arc::new(cnet_runtime::LockCounter::new())),
        "diffracting" => Ok(Arc::new(cnet_runtime::DiffractingTree::new(fan, 4)?)),
        "combining" => {
            let net = parse_network(family, w)?;
            Ok(Arc::new(cnet_runtime::CombiningFunnel::new(
                cnet_runtime::SharedNetworkCounter::new(&net),
                fan,
            )))
        }
        "relaxed" => Ok(Arc::new(cnet_runtime::RelaxedCounter::new(sub_counters))),
        "elimination" => {
            let net = parse_network(family, w)?;
            Ok(Arc::new(cnet_runtime::EliminationCounter::new(&net, sub_counters)))
        }
        other => Err(format!(
            "unknown backend '{other}' (expected compiled, fetch_add, lock, diffracting, \
             combining, relaxed, or elimination)"
        )),
    }
}

/// Parses a `--cluster K/N` position: node K (0-based) of an N-node chain.
fn parse_cluster_position(spec: &str) -> Result<(usize, usize), String> {
    let err = || format!("--cluster expects K/N (e.g. 0/2), got '{spec}'");
    let (k, n) = spec.split_once('/').ok_or_else(err)?;
    let k: usize = k.trim().parse().map_err(|_| err())?;
    let n: usize = n.trim().parse().map_err(|_| err())?;
    if n == 0 || k >= n {
        return Err(format!("--cluster {spec}: node index must be below the node count"));
    }
    Ok((k, n))
}

fn cmd_serve(args: &[String]) -> Result<String, String> {
    let [w, flags @ ..] = args else {
        return Err(
            "expected: cnet serve <w> [--backend B] [--family F] [--addr HOST:PORT] \
             [--max-conns N] [--processes N] [--reactors N] [--backpressure reject|block] \
             [--audit 0/1] [--port-file file] [--cluster K/N --peers ADDR]"
                .to_string(),
        );
    };
    let fan: usize = w.parse().map_err(|_| format!("'{w}' is not a valid width"))?;
    let opts = Options::parse(flags)?;
    opts.allow(&[
        "backend",
        "family",
        "addr",
        "max-conns",
        "processes",
        "reactors",
        "backpressure",
        "audit",
        "port-file",
        "cluster",
        "peers",
        "sub-counters",
    ])?;
    let backend_name = opts.get("backend").unwrap_or("compiled").to_string();
    let family = opts.get("family").unwrap_or("bitonic").to_string();
    let addr = opts.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let max_connections = opts.usize_or("max-conns", 64)?.max(1);
    let cfg = cnet_net::server::ServerConfig {
        max_connections,
        processes: opts.usize_or("processes", fan)?.max(1),
        // 0 means one reactor per core (the server's own default).
        reactors: opts.usize_or("reactors", 0)?,
        backpressure: match opts.get("backpressure").unwrap_or("reject") {
            "reject" => cnet_net::server::Backpressure::Reject,
            "block" => cnet_net::server::Backpressure::Block,
            other => return Err(format!("--backpressure expects reject or block, got '{other}'")),
        },
    };
    let cluster_position = opts.get("cluster").map(parse_cluster_position).transpose()?;
    let audit = opts.usize_or("audit", 0)? != 0;
    let recorder = audit.then(|| Arc::new(TraceRecorder::new(max_connections, 1 << 16)));
    let mut server = match cluster_position {
        Some((node, nodes)) => {
            // A cluster node *is* a partition of the compiled network — the
            // scalar backends have no layers to split.
            if backend_name != "compiled" {
                return Err(format!(
                    "--cluster partitions the compiled network; backend '{backend_name}' \
                     cannot be partitioned"
                ));
            }
            let peers: Vec<String> = opts
                .get("peers")
                .map(|p| p.split(',').map(|s| s.trim().to_string()).collect())
                .unwrap_or_default();
            let net = parse_network(&family, w)?;
            let cluster = cnet_net::ClusterNode::new(&net, node, nodes, &peers, max_connections)
                .map_err(|e| format!("cluster {node}/{nodes}: {e}"))?;
            cnet_net::server::CounterServer::start_cluster(
                &addr as &str,
                Arc::new(cluster),
                recorder.as_ref().map(Arc::clone),
                cfg,
            )
        }
        None => {
            if opts.get("peers").is_some() {
                return Err("--peers only makes sense with --cluster K/N".to_string());
            }
            let sub_counters =
                opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
            let backend = serve_backend(&backend_name, &family, w, fan, sub_counters)?;
            match &recorder {
                Some(rec) => cnet_net::server::CounterServer::with_recorder(
                    &addr as &str,
                    backend,
                    Arc::clone(rec),
                    cfg,
                ),
                None => cnet_net::server::CounterServer::start(&addr as &str, backend, cfg),
            }
        }
    }
    .map_err(|e| format!("serve {addr}: {e}"))?;
    let bound = server.local_addr();
    // Announce readiness on stderr immediately (stdout output is rendered
    // only after the command returns) so scripts can connect.
    match cluster_position {
        Some((node, nodes)) => {
            eprintln!("cnet serve: cluster node {node}/{nodes} listening on {bound}");
        }
        None => eprintln!("cnet serve: backend={backend_name} listening on {bound}"),
    }
    if let Some(path) = opts.get("port-file") {
        std::fs::write(path, bound.to_string()).map_err(|e| format!("write {path}: {e}"))?;
    }
    server.wait_for_shutdown_request();
    server.shutdown();
    let stats = server.stats();
    let mut out = format!(
        "cnet serve: drained after a remote shutdown request\n\
         connections: {} served, {} rejected, {} deferred accepts\n\
         requests:    {}\n\
         increments:  {} ({} batched frames)\n\
         reactor:     {} wakeups, {} events\n",
        stats.total_connections,
        stats.rejected_connections,
        stats.deferred_accepts,
        stats.requests,
        stats.ops,
        stats.batches,
        stats.reactor_wakeups,
        stats.reactor_events,
    );
    if let Some(rec) = &recorder {
        let mut auditor = cnet_core::trace::StreamingAuditor::new();
        cnet_runtime::drain_remaining(rec, &mut auditor);
        let _ = writeln!(out, "audit: {}", auditor.summary());
    }
    Ok(out)
}

fn cmd_loadgen(args: &[String]) -> Result<String, String> {
    let opts = Options::parse(args)?;
    opts.allow(&[
        "addr", "threads", "connections", "ops", "batch", "mode", "check", "shutdown", "out",
        "label", "network", "cluster",
    ])?;
    let addr = opts.get("addr").ok_or("loadgen needs --addr HOST:PORT")?.to_string();
    let threads = opts.usize_or("threads", 4)?.max(1);
    let connections = opts.usize_or("connections", 0)?;
    let total_ops = opts.usize_or("ops", 100_000)?;
    // `--ops 0` is a pure control invocation: no traffic, just the
    // shutdown handshake. It is the way to drain a cluster node that
    // serves no client traffic of its own — a relay or tail only
    // answers forwards, so a normal loadgen run against it would fail.
    if total_ops == 0 {
        if opts.usize_or("shutdown", 0)? == 0 {
            return Err("--ops 0 only makes sense with --shutdown 1".to_string());
        }
        let client = cnet_net::RemoteCounter::connect(&addr as &str, 1)
            .map_err(|e| format!("shutdown connect {addr}: {e}"))?;
        client.shutdown_server().map_err(|e| format!("shutdown {addr}: {e}"))?;
        return Ok(format!(
            "cnet loadgen: no traffic (--ops 0)\n\
             server shutdown requested and acknowledged ({addr})\n"
        ));
    }
    let check = opts.usize_or("check", 1)? != 0;
    let mode = match opts.get("mode").unwrap_or("batch") {
        "batch" => cnet_net::LoadGenMode::Batch,
        "pipeline" => cnet_net::LoadGenMode::Pipeline,
        other => return Err(format!("--mode expects batch or pipeline, got '{other}'")),
    };
    let batch = opts.usize_or("batch", 64)?.max(1);
    let route = opts.usize_or("cluster", 0)? != 0;
    let cfg = cnet_net::loadgen::LoadGenConfig {
        threads,
        connections,
        ops_per_thread: total_ops.div_ceil(threads),
        batch,
        mode,
        collect_values: check,
        route,
    };
    let report = cnet_net::loadgen::run_loadgen(&addr as &str, &cfg)
        .map_err(|e| format!("loadgen against {addr}: {e}"))?;
    let mut out = format!(
        "cnet loadgen: {} threads over {} connections x {} ops = {} increments \
         in {:.3}s ({:.0} ops/s)\n",
        report.threads,
        report.connections,
        cfg.ops_per_thread,
        report.total_ops,
        report.seconds,
        report.ops_per_sec(),
    );
    let (p50, p99, p999) = report.latency.percentiles();
    let us = |ns: u64| ns as f64 / 1.0e3;
    let _ = writeln!(
        out,
        "burst latency: p50 {:.1}us  p99 {:.1}us  p999 {:.1}us  ({} bursts sampled)",
        us(p50),
        us(p99),
        us(p999),
        report.latency.count(),
    );
    match report.is_permutation() {
        Some(true) => {
            let _ = writeln!(out, "permutation 0..{}: true", report.total_ops);
        }
        Some(false) => {
            return Err(format!(
                "values are NOT a permutation of 0..{} — the service broke the counting contract",
                report.total_ops
            ));
        }
        None => {}
    }
    // Chain size for the bench row, asked before any shutdown: every node
    // of a cluster reports the full node count; plain servers say 1.
    let nodes = if opts.get("out").is_some() {
        cnet_net::RemoteCounter::connect(&addr as &str, 1)
            .and_then(|c| c.node_info())
            .map_or(1, |info| (info.nodes as usize).max(1))
    } else {
        1
    };
    if opts.usize_or("shutdown", 0)? != 0 {
        let client = cnet_net::RemoteCounter::connect(&addr as &str, 1)
            .map_err(|e| format!("shutdown connect {addr}: {e}"))?;
        // Snapshot the reactor's counters before asking it to drain.
        let stats = client.server_stats().map_err(|e| format!("stats {addr}: {e}"))?;
        let per_wakeup = if stats.reactor_wakeups > 0 {
            stats.reactor_events as f64 / stats.reactor_wakeups as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "server reactor: {} open connections, {} epoll wakeups, {} events \
             ({per_wakeup:.2} events/wakeup), {} deferred accepts",
            stats.active_connections,
            stats.reactor_wakeups,
            stats.reactor_events,
            stats.deferred_accepts,
        );
        client.shutdown_server().map_err(|e| format!("shutdown {addr}: {e}"))?;
        let _ = writeln!(out, "server shutdown requested and acknowledged");
    }
    if let Some(path) = opts.get("out") {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let row = cnet_bench::Measurement {
            counter: opts.get("label").unwrap_or("fetch_add").to_string(),
            network: opts.get("network").unwrap_or("-").to_string(),
            threads,
            total_ops: report.total_ops as usize,
            seconds: report.seconds,
            mops: report.ops_per_sec() / 1.0e6,
            audited: false,
            transport: cnet_bench::Measurement::TRANSPORT_TCP.to_string(),
            batch: match mode {
                cnet_net::LoadGenMode::Batch => batch,
                cnet_net::LoadGenMode::Pipeline => 1,
            },
            oversubscribed: threads > cores,
            connections: report.connections,
            p50_ns: Some(p50),
            p99_ns: Some(p99),
            p999_ns: Some(p999),
            nodes,
            qqc_max: None,
            qqc_mean: None,
            f_nl: None,
        };
        merge_net_row(std::path::Path::new(path), row)?;
        let _ = writeln!(out, "tcp throughput row merged into {path}");
    }
    Ok(out)
}

/// Appends (or replaces) a networked-throughput row in a
/// `BENCH_throughput.json` report (schema v2 through v6), creating a
/// minimal v6 report when the file does not exist yet. Row identity
/// includes the connection count and the cluster node count, so
/// connection-scaling and node-scaling sweeps keep one row per cell
/// instead of overwriting.
fn merge_net_row(
    path: &std::path::Path,
    row: cnet_bench::Measurement,
) -> Result<(), String> {
    let mut report: cnet_bench::ThroughputReport = match std::fs::read_to_string(path) {
        Ok(text) => cnet_util::json::from_str(&text)
            .map_err(|e| format!("{}: not a throughput report: {e}", path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => cnet_bench::ThroughputReport {
            version: 6,
            fan: 0,
            ops_per_thread: 0,
            repeats: 1,
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            measurements: Vec::new(),
        },
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    report.measurements.retain(|m| {
        !(m.transport == row.transport
            && m.counter == row.counter
            && m.network == row.network
            && m.threads == row.threads
            && m.batch == row.batch
            && m.connections == row.connections
            && m.nodes == row.nodes)
    });
    report.measurements.push(row);
    cnet_bench::write_json(path, &report).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Drives an audited run, collecting a bounded set of "live" lines each
/// time the in-flight auditor's violation counts grow.
fn audit_workload<C: ProcessCounter>(
    counter: &C,
    recorder: &TraceRecorder,
    workload: Workload,
    live: &mut Vec<String>,
) -> (AuditedRun, usize) {
    let mut batches = 0usize;
    let mut seen = (0usize, 0usize);
    let run = drive_audited(counter, recorder, workload, |a| {
        batches += 1;
        let now = (a.non_linearizable(), a.non_sequentially_consistent());
        if now > seen && live.len() < 8 {
            live.push(format!(
                "  [live @ {} ops] non-linearizable: {}  non-SC: {}  F_nl={:.4} F_nsc={:.4}",
                a.operations(),
                now.0,
                now.1,
                a.f_nl(),
                a.f_nsc()
            ));
            seen = now;
        }
    });
    (run, batches)
}

/// Fetches every node's recorded trace shards over the wire, remaps them
/// into one global shard space, k-way merges them in enter order, and
/// renders a cluster-wide consistency verdict. Returns `Err` (nonzero
/// exit) when the merged history shows violations.
///
/// All nodes must share one machine clock for the merged verdict to be
/// meaningful — the trace stamps are node-local monotonic nanoseconds.
fn cmd_audit_cluster(opts: &Options) -> Result<String, String> {
    use cnet_core::trace::{EventMerger, RawOp, StreamingAuditor};

    let addrs: Vec<String> = opts
        .get("addr")
        .ok_or("backend cluster needs --addr ADDR1,ADDR2,...")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err("backend cluster needs at least one node address".to_string());
    }
    let mut members = Vec::new();
    for addr in &addrs {
        let client = cnet_net::RemoteCounter::connect(&addr[..], 1)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let info = client.node_info().map_err(|e| format!("node info {addr}: {e}"))?;
        members.push((info, client, addr.clone()));
    }
    let chain = members[0].0.nodes;
    for (info, _, addr) in &members {
        if info.nodes != chain {
            return Err(format!(
                "{addr} reports a {}-node chain but {} reported {chain} — mixed clusters",
                info.nodes, addrs[0]
            ));
        }
    }
    if members.len() != chain as usize {
        return Err(format!(
            "the chain has {chain} nodes but {} addresses were given — the audit needs \
             every node's shards",
            members.len()
        ));
    }
    members.sort_by_key(|(info, _, _)| info.node);
    for (expect, (info, _, addr)) in members.iter().enumerate() {
        if info.node as usize != expect {
            return Err(format!("duplicate cluster position {} (reported by {addr})", info.node));
        }
    }
    let mut out = format!("== cnet audit: backend=cluster, {chain} node(s) ==\n\n");
    // Fetch each node's shards in chunks until the stream stays dry over
    // a settle delay (the server's close-time flush is asynchronous).
    let mut per_node: Vec<Vec<cnet_net::wire::TraceEvent>> = Vec::new();
    for (info, client, addr) in &members {
        let mut events = Vec::new();
        let mut settle = 0;
        while info.shards > 0 && settle < 2 {
            let chunk = client
                .fetch_trace(cnet_net::wire::MAX_TRACE_EVENTS)
                .map_err(|e| format!("trace fetch {addr}: {e}"))?;
            if chunk.is_empty() {
                settle += 1;
                std::thread::sleep(std::time::Duration::from_millis(100));
            } else {
                settle = 0;
                events.extend(chunk);
            }
        }
        let _ = writeln!(
            out,
            "node {} @ {addr}: {} shard(s), {} event(s) fetched",
            info.node,
            info.shards,
            events.len()
        );
        per_node.push(events);
    }
    // Global shard space: node k's local shard s becomes offset(k) + s,
    // where offset is the shard total of all earlier nodes.
    let total_shards: usize = members.iter().map(|(i, _, _)| i.shards as usize).sum();
    let mut merger = EventMerger::new(total_shards.max(1));
    // Per-shard clamp: within a shard events arrive enter-ordered, but a
    // chunk boundary could expose a sub-batch stamp regression the
    // server-side drain clamps only within one call.
    let mut last_enter = vec![0u64; total_shards.max(1)];
    let mut offset = 0usize;
    for ((info, _, _), events) in members.iter().zip(&per_node) {
        for e in events {
            let shard = offset + e.shard as usize;
            let enter = e.enter_ns.max(last_enter[shard]);
            last_enter[shard] = enter;
            merger.push(
                shard,
                RawOp { process: shard, enter_ns: enter, exit_ns: e.exit_ns.max(enter), value: e.value },
            );
        }
        offset += info.shards as usize;
    }
    let mut auditor = StreamingAuditor::new();
    for shard in 0..total_shards.max(1) {
        merger.finish(shard);
    }
    merger.drain_into(&mut auditor);
    let _ = writeln!(out, "\noperations audited:      {}", auditor.operations());
    let _ = writeln!(out, "linearizable:            {}", auditor.is_linearizable());
    if let Some(v) = auditor.linearizability_violation() {
        let _ = writeln!(out, "  first lin violation:   op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "sequentially consistent: {}", auditor.is_sequentially_consistent());
    if let Some(v) = auditor.sequential_consistency_violation() {
        let _ = writeln!(out, "  first SC violation:    op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "F_nl  = {:.4}", auditor.f_nl());
    let _ = writeln!(out, "F_nsc = {:.4}", auditor.f_nsc());
    let clean = auditor.is_clean();
    let _ = writeln!(
        out,
        "\naudit verdict: {}",
        if clean { "clean (0 violations)" } else { "violations detected" }
    );
    // A violations verdict is a failed audit: surface it through the exit
    // code so scripts and CI gates fail closed.
    if clean {
        Ok(out)
    } else {
        Err(out)
    }
}

fn cmd_audit(args: &[String]) -> Result<String, String> {
    let [w, flags @ ..] = args else {
        return Err(
            "expected: cnet audit <w> [--backend compiled|graph_walk|diffracting|fetch_add|lock|\
             relaxed|elimination|remote|cluster] [--family F] [--threads N] [--ops N] \
             [--sub-counters K] [--addr HOST:PORT]"
                .to_string(),
        );
    };
    let fan: usize = w.parse().map_err(|_| format!("'{w}' is not a valid width"))?;
    let opts = Options::parse(flags)?;
    opts.allow(&["backend", "family", "threads", "ops", "addr", "sub-counters"])?;
    let backend = opts.get("backend").unwrap_or("compiled").to_string();
    if backend == "cluster" {
        return cmd_audit_cluster(&opts);
    }
    let family = opts.get("family").unwrap_or("bitonic").to_string();
    let threads = opts.usize_or("threads", 1)?.max(1);
    let ops = opts.usize_or("ops", 10_000)?.max(1);
    let workload = Workload { threads, increments_per_thread: ops };
    // One ring per thread, sized to the whole run: zero drops by
    // construction, so the audit sees every operation.
    let recorder = Arc::new(TraceRecorder::new(threads, ops));
    let mut live: Vec<String> = Vec::new();
    let (run, batches) = match backend.as_str() {
        "compiled" => {
            let net = parse_network(&family, w)?;
            let counter =
                cnet_runtime::SharedNetworkCounter::with_recorder(&net, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "graph_walk" => {
            let net = parse_network(&family, w)?;
            let counter =
                Traced::new(cnet_runtime::GraphWalkCounter::new(&net), Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "combining" => {
            let net = parse_network(&family, w)?;
            let counter = Traced::new(
                cnet_runtime::CombiningFunnel::new(
                    cnet_runtime::SharedNetworkCounter::new(&net),
                    threads,
                ),
                Arc::clone(&recorder),
            );
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "diffracting" => {
            let counter =
                cnet_runtime::DiffractingTree::with_recorder(fan, 4, Arc::clone(&recorder))?;
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "fetch_add" => {
            let counter =
                Traced::new(cnet_runtime::FetchAddCounter::new(), Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "lock" => {
            let counter = Traced::new(cnet_runtime::LockCounter::new(), Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "relaxed" => {
            let sub =
                opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
            let counter = cnet_runtime::RelaxedCounter::with_recorder(sub, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        "elimination" => {
            let sub =
                opts.usize_or("sub-counters", cnet_runtime::DEFAULT_SUB_COUNTERS)?.max(1);
            let net = parse_network(&family, w)?;
            let counter =
                cnet_runtime::EliminationCounter::with_recorder(&net, sub, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        // Audits a *live socket*: each audit thread drives its own pooled
        // connection to a running `cnet serve`, and the recorded intervals
        // are the client-observed ones (network delay included).
        "remote" => {
            let addr = opts.get("addr").ok_or("backend remote needs --addr HOST:PORT")?;
            let remote = cnet_net::RemoteCounter::connect(addr, threads)
                .map_err(|e| format!("connect {addr}: {e}"))?;
            let counter = Traced::new(remote, Arc::clone(&recorder));
            audit_workload(&counter, &recorder, workload, &mut live)
        }
        other => {
            return Err(format!(
                "unknown backend '{other}' (expected compiled, graph_walk, combining, \
                 diffracting, fetch_add, lock, relaxed, elimination, remote, or cluster)"
            ))
        }
    };
    let a = &run.auditor;
    let clean = a.is_linearizable() && a.is_sequentially_consistent();
    // The relaxed backends trade ordering for throughput *on purpose*:
    // reordering is their contract, so a non-linearizable verdict is a
    // measurement (reported as QQC lateness), not a failure. Every other
    // backend still fails the process on violations.
    let enforce = !matches!(backend.as_str(), "relaxed" | "elimination");
    let shown_family = match backend.as_str() {
        "compiled" | "graph_walk" | "combining" | "elimination" => family.as_str(),
        _ => "-",
    };
    let mut out = format!(
        "== cnet audit: backend={backend} family={shown_family} w={fan}, \
         {threads} threads x {ops} ops ==\n\n"
    );
    for line in &live {
        out.push_str(line);
        out.push('\n');
    }
    if !live.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "events recorded:         {}", run.recorded);
    let _ = writeln!(out, "events dropped:          {}", run.dropped);
    let _ = writeln!(out, "live drain batches:      {batches}");
    let _ = writeln!(out, "operations audited:      {}", a.operations());
    let _ = writeln!(out, "linearizable:            {}", a.is_linearizable());
    if let Some(v) = a.linearizability_violation() {
        let _ = writeln!(out, "  first lin violation:   op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "sequentially consistent: {}", a.is_sequentially_consistent());
    if let Some(v) = a.sequential_consistency_violation() {
        let _ = writeln!(out, "  first SC violation:    op #{} -> op #{}", v.earlier, v.later);
    }
    let _ = writeln!(out, "F_nl  = {:.4}", a.f_nl());
    let _ = writeln!(out, "F_nsc = {:.4}", a.f_nsc());
    let _ = writeln!(
        out,
        "qqc lateness: max {} mean {:.2} p99 {}",
        a.qqc_max(),
        a.qqc_mean(),
        a.qqc_p99()
    );
    let _ = writeln!(
        out,
        "\naudit verdict: {}",
        if clean {
            "clean (0 violations)".to_string()
        } else if enforce {
            "violations detected".to_string()
        } else {
            format!(
                "relaxed backend: reordering measured, qqc_max {} (not a failure)",
                a.qqc_max()
            )
        }
    );
    // A violations verdict must fail the process (nonzero exit), not just
    // print — CI gates read the exit code, not the transcript. The
    // deliberately relaxed backends are exempt: for them the audit is a
    // meter, not a gate.
    if clean || !enforce {
        Ok(out)
    } else {
        Err(out)
    }
}

fn render_execution(net: &Network, exec: &cnet_sim::TimedExecution) -> String {
    let params = TimingParams::measure(exec);
    let ops = Op::from_execution(exec);
    let report = audit(&ops);
    let mut out = String::new();
    let _ = writeln!(out, "\nmeasured timing parameters:");
    let fmt_opt = |v: Option<f64>| v.map_or("inf".to_string(), |x| format!("{x:.3}"));
    let _ = writeln!(out, "  c_min = {}", fmt_opt(params.c_min));
    let _ = writeln!(out, "  c_max = {}", fmt_opt(params.c_max));
    let _ = writeln!(out, "  C_L   = {}", fmt_opt(params.local_delay));
    let _ = writeln!(out, "  C_g   = {}", fmt_opt(params.global_delay));
    let _ = writeln!(out, "\ntiming conditions:");
    let mut conditions = vec![
        TimingCondition::RatioAtMostTwo,
        TimingCondition::global_delay(net),
        TimingCondition::local_delay(net),
        TimingCondition::mpt_sufficient(net),
    ];
    if let Ok(c) = TimingCondition::mpt_necessary(net) {
        conditions.push(c);
    }
    for c in conditions {
        let _ = writeln!(out, "  [{}] {c}  —  {}", if c.holds(&params) { "x" } else { " " }, c.role());
    }
    let _ = writeln!(out, "\nconsistency audit:");
    let _ = write!(out, "{report}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(args: &[&str]) -> Result<String, String> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&v)
    }

    #[test]
    fn info_reports_structure() {
        let out = call(&["info", "bitonic", "8"]).unwrap();
        assert!(out.contains("depth d(G):   6"));
        assert!(out.contains("split number: 3"));
        assert!(out.contains("irad(G):      3"));
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = call(&["dot", "tree", "4"]).unwrap();
        assert!(out.starts_with("digraph"));
    }

    #[test]
    fn simulate_renders_audit() {
        let out = call(&["simulate", "bitonic", "4", "--ratio", "1.5", "--seed", "3"]).unwrap();
        assert!(out.contains("linearizable:            true"));
        assert!(out.contains("c_max"));
    }

    #[test]
    fn waves_find_violations_above_threshold() {
        let out = call(&["waves", "bitonic", "8", "--ell", "1"]).unwrap();
        assert!(out.contains("linearizable:            false"));
        assert!(out.contains("sequentially consistent: false"));
    }

    #[test]
    fn race_detects_inversion() {
        let out = call(&["race", "bitonic", "2", "--ratio", "2.5"]).unwrap();
        assert!(out.contains("linearizable:            false"));
    }

    #[test]
    fn run_audits_threaded_history() {
        let out = call(&["run", "bitonic", "4", "--threads", "2", "--ops", "50"]).unwrap();
        assert!(out.contains("values dense: true"));
        assert!(out.contains("operations:              100"));
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(call(&["info"]).is_err());
        assert!(call(&["info", "bitonic", "6"]).unwrap_err().contains("unsupported width"));
        assert!(call(&["frobnicate", "bitonic", "8"]).unwrap_err().contains("unknown command"));
        assert!(call(&["simulate", "bitonic", "4", "--bogus", "1"])
            .unwrap_err()
            .contains("unknown flag"));
        assert!(call(&["waves", "tree", "8"]).is_err()); // tree has no split chops
    }

    #[test]
    fn usage_mentions_every_command() {
        let u = usage();
        for c in [
            "info", "dot", "simulate", "waves", "race", "replay", "run", "bench", "audit",
            "serve", "loadgen",
        ] {
            assert!(u.contains(c), "{c}");
        }
    }

    /// Boots `cnet serve` in a thread, discovers the ephemeral port via
    /// `--port-file`, drives it with `cnet loadgen --check --shutdown`,
    /// and reads both transcripts — the two-terminal quickstart, in-process.
    #[test]
    fn serve_and_loadgen_round_trip_with_audit() {
        let port_file = std::env::temp_dir().join("cnet_cli_test_serve.port");
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || {
                call(&[
                    "serve", "4", "--backend", "fetch_add", "--audit", "1", "--max-conns", "8",
                    "--port-file", &pf,
                ])
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out = call(&[
            "loadgen", "--addr", &addr, "--threads", "4", "--ops", "2000", "--batch", "32",
            "--check", "1", "--shutdown", "1",
        ])
        .unwrap();
        assert!(out.contains("= 2000 increments"), "{out}");
        assert!(out.contains("permutation 0..2000: true"), "{out}");
        assert!(out.contains("burst latency: p50"), "{out}");
        assert!(out.contains("server reactor:"), "{out}");
        assert!(out.contains("epoll wakeups"), "{out}");
        assert!(out.contains("server shutdown requested and acknowledged"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("drained after a remote shutdown request"), "{served}");
        assert!(served.contains("increments:  2000"), "{served}");
        assert!(served.contains("reactor:"), "{served}");
        assert!(served.contains("audit: 2000 ops audited"), "{served}");
        assert!(served.contains("clean"), "{served}");
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn loadgen_merges_a_tcp_row_into_the_artifact() {
        let port_file = std::env::temp_dir().join("cnet_cli_test_merge.port");
        let out_file = std::env::temp_dir().join("cnet_cli_test_merge.json");
        let _ = std::fs::remove_file(&port_file);
        let _ = std::fs::remove_file(&out_file);
        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || call(&["serve", "4", "--backend", "compiled", "--port-file", &pf])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out_str = out_file.to_str().unwrap();
        // Merge twice: the second run must replace the first row, not
        // stack. (`--check 0`: against a long-lived server the values are
        // a later window of the count, not 0..n.)
        for _ in 0..2 {
            let out = call(&[
                "loadgen", "--addr", &addr, "--threads", "2", "--ops", "500", "--check", "0",
                "--out", out_str, "--label", "compiled", "--network", "bitonic",
            ])
            .unwrap();
            assert!(out.contains("tcp throughput row merged"), "{out}");
        }
        // A different pooled-connection count is a new cell, not a replace.
        let out = call(&[
            "loadgen", "--addr", &addr, "--threads", "2", "--connections", "6", "--ops", "500",
            "--check", "0", "--out", out_str, "--label", "compiled", "--network", "bitonic",
        ])
        .unwrap();
        assert!(out.contains("2 threads over 6 connections"), "{out}");
        call(&["loadgen", "--addr", &addr, "--ops", "1", "--check", "0", "--shutdown", "1"])
            .unwrap();
        server.join().unwrap().unwrap();
        let text = std::fs::read_to_string(&out_file).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        let rows: Vec<_> = report
            .measurements
            .iter()
            .filter(|m| m.transport == cnet_bench::Measurement::TRANSPORT_TCP)
            .collect();
        // The two 2-connection runs collapsed into one row; the
        // 6-connection run is its own cell (identity includes the pool).
        assert_eq!(rows.len(), 2, "{rows:?}");
        for row in &rows {
            assert_eq!(row.counter, "compiled");
            assert_eq!(row.network, "bitonic");
            assert_eq!(row.threads, 2);
            assert!(row.p99_ns.unwrap() > 0, "{row:?}");
        }
        assert!(report.net_cell_at("compiled", "bitonic", 2, 2).is_some());
        assert!(report.net_cell_at("compiled", "bitonic", 2, 6).is_some());
        let _ = std::fs::remove_file(&port_file);
        let _ = std::fs::remove_file(&out_file);
    }

    #[test]
    fn serve_and_loadgen_reject_bad_arguments() {
        assert!(call(&["serve"]).unwrap_err().contains("cnet serve <w>"));
        assert!(call(&["serve", "4", "--backend", "quantum"])
            .unwrap_err()
            .contains("unknown backend"));
        assert!(call(&["serve", "4", "--backpressure", "panic"])
            .unwrap_err()
            .contains("reject or block"));
        assert!(call(&["loadgen"]).unwrap_err().contains("needs --addr"));
        assert!(call(&["loadgen", "--addr", "127.0.0.1:1", "--ops", "1"])
            .unwrap_err()
            .contains("loadgen against"));
        assert!(call(&["loadgen", "--addr", "x", "--bogus", "1"])
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn cluster_flags_are_validated() {
        assert!(call(&["serve", "4", "--cluster", "2"])
            .unwrap_err()
            .contains("expects K/N"));
        assert!(call(&["serve", "4", "--cluster", "2/2"])
            .unwrap_err()
            .contains("below the node count"));
        assert!(call(&["serve", "4", "--cluster", "0/0"])
            .unwrap_err()
            .contains("below the node count"));
        assert!(call(&["serve", "4", "--cluster", "0/2", "--backend", "fetch_add"])
            .unwrap_err()
            .contains("cannot be partitioned"));
        assert!(call(&["serve", "4", "--peers", "127.0.0.1:1"])
            .unwrap_err()
            .contains("--peers only makes sense with --cluster"));
        assert!(call(&["audit", "4", "--backend", "cluster"])
            .unwrap_err()
            .contains("needs --addr"));
        assert!(call(&["loadgen", "--addr", "127.0.0.1:1", "--ops", "0"])
            .unwrap_err()
            .contains("--ops 0 only makes sense with --shutdown 1"));
    }

    /// The full cluster story through the CLI alone: two `serve --cluster`
    /// nodes chained over loopback, a routed loadgen **at the tail** that
    /// still returns an exact permutation, a merged cluster-wide audit,
    /// and a graceful per-node drain via `--ops 0 --shutdown 1`.
    #[test]
    fn cluster_serve_loadgen_and_audit_round_trip() {
        let tail_pf = std::env::temp_dir().join("cnet_cli_test_cluster_tail.port");
        let head_pf = std::env::temp_dir().join("cnet_cli_test_cluster_head.port");
        let _ = std::fs::remove_file(&tail_pf);
        let _ = std::fs::remove_file(&head_pf);
        let wait_port = |pf: &std::path::Path| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            loop {
                if let Ok(addr) = std::fs::read_to_string(pf) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "serve never wrote {pf:?}");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        // Tail first: the head dials its downstream peer at startup.
        let tail = std::thread::spawn({
            let pf = tail_pf.to_str().unwrap().to_string();
            move || {
                call(&[
                    "serve", "8", "--cluster", "1/2", "--audit", "1", "--max-conns", "8",
                    "--port-file", &pf,
                ])
            }
        });
        let tail_addr = wait_port(&tail_pf);
        let head = std::thread::spawn({
            let pf = head_pf.to_str().unwrap().to_string();
            let peers = tail_addr.clone();
            move || {
                call(&[
                    "serve", "8", "--cluster", "0/2", "--peers", &peers, "--audit", "1",
                    "--max-conns", "8", "--port-file", &pf,
                ])
            }
        });
        let head_addr = wait_port(&head_pf);
        // Routed loadgen pointed at the *tail*: the NodeInfo handshake
        // must re-dial the head (retry while the announcement settles).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let out = loop {
            match call(&[
                "loadgen", "--addr", &tail_addr, "--cluster", "1", "--threads", "4", "--ops",
                "2000", "--batch", "32", "--mode", "pipeline", "--check", "1",
            ]) {
                Ok(out) => break out,
                Err(e) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "routed loadgen never reached the head: {e}"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        };
        assert!(out.contains("permutation 0..2000: true"), "{out}");
        // Cluster-wide audit: fetch both nodes' shards, merge, one verdict.
        // The verdict itself is timing-dependent at 4 concurrent slots (the
        // paper's phenomenon — a clean verdict is asserted by the verify.sh
        // smoke, not here), but the merge must cover every operation, and a
        // violations verdict must come back as an error (nonzero exit).
        let audit = match call(&[
            "audit", "8", "--backend", "cluster", "--addr",
            &format!("{head_addr},{tail_addr}"),
        ]) {
            Ok(report) => {
                assert!(report.contains("audit verdict: clean"), "{report}");
                report
            }
            Err(report) => {
                assert!(report.contains("audit verdict: violations detected"), "{report}");
                report
            }
        };
        assert!(audit.contains("node 0 @"), "{audit}");
        assert!(audit.contains("node 1 @"), "{audit}");
        assert!(audit.contains("operations audited:      2000"), "{audit}");
        // Graceful drain, one node at a time, no traffic required.
        for addr in [&tail_addr, &head_addr] {
            let out =
                call(&["loadgen", "--addr", addr, "--ops", "0", "--shutdown", "1"]).unwrap();
            assert!(out.contains("shutdown requested and acknowledged"), "{out}");
        }
        let tail_out = tail.join().unwrap().unwrap();
        let head_out = head.join().unwrap().unwrap();
        assert!(tail_out.contains("drained after a remote shutdown request"), "{tail_out}");
        assert!(head_out.contains("drained after a remote shutdown request"), "{head_out}");
        // Every increment crossed the wire twice: once into the head,
        // once forwarded to the tail.
        assert!(head_out.contains("increments:  2000"), "{head_out}");
        assert!(tail_out.contains("increments:  2000"), "{tail_out}");
        let _ = std::fs::remove_file(&tail_pf);
        let _ = std::fs::remove_file(&head_pf);
    }

    #[test]
    fn bench_sweeps_and_writes_the_artifact() {
        let path = std::env::temp_dir().join("cnet_cli_test_bench.json");
        let path_str = path.to_str().unwrap();
        let out = call(&[
            "bench", "4", "--threads", "1,2", "--ops", "200", "--repeats", "1", "--out", path_str,
        ])
        .unwrap();
        assert!(out.contains("compiled/bitonic"));
        assert!(out.contains("graph_walk/periodic"));
        assert!(out.contains("compiled/bitonic+audit"));
        assert!(out.contains("compiled vs graph-walk traversal on bitonic B(4) at 2 threads"));
        assert!(out.contains("audited compiled on bitonic B(4) at 2 threads retains"));
        assert!(out.contains(&format!("report written to {path_str}")));
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        assert_eq!(report.fan, 4);
        assert_eq!(report.version, 6);
        assert_eq!(report.measurements.len(), 2 * 14);
        // The consistency sweep merges its qqc rows into the same
        // artifact without disturbing the plain rows.
        let out = call(&[
            "bench",
            "4",
            "--threads",
            "1,2",
            "--ops",
            "200",
            "--repeats",
            "1",
            "--sweep",
            "consistency",
            "--sub-counters",
            "4",
            "--out",
            path_str,
        ])
        .unwrap();
        assert!(out.contains("consistency sweep"), "{out}");
        assert!(out.contains("relaxed"), "{out}");
        assert!(out.contains(&format!("consistency rows merged into {path_str}")), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        assert_eq!(report.version, 6);
        assert_eq!(report.measurements.len(), 2 * 14 + 2 * 7);
        assert!(report.cell("compiled", "bitonic", 2).is_some());
        let c = report.consistency_cell("relaxed", "-", 2).unwrap();
        assert!(c.qqc_max.is_some() && c.f_nl.is_some());
        assert!(report.consistency_cell("elimination", "bitonic", 1).is_some());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_batch_sweep_adds_rows_and_reports_the_speedup() {
        let path = std::env::temp_dir().join("cnet_cli_test_bench_batch.json");
        let path_str = path.to_str().unwrap();
        let out = call(&[
            "bench", "4", "--threads", "2", "--batch", "1,8", "--ops", "400", "--repeats", "1",
            "--out", path_str,
        ])
        .unwrap();
        assert!(out.contains("compiled/bitonic x8"), "{out}");
        assert!(out.contains("batched traversal (k=8) on bitonic B(4) at 2 threads"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report: cnet_bench::ThroughputReport = cnet_util::json::from_str(&text).unwrap();
        // 14 plain rows + fetch_add and compiled × 3 families at batch=8.
        assert_eq!(report.measurements.len(), 14 + 4);
        let row = report.batch_cell("compiled", "bitonic", 2, 8).unwrap();
        assert_eq!(row.batch, 8);
        assert!(report.batch_speedup("compiled", "bitonic", 2, 8).is_some());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn audit_single_thread_is_clean_on_every_backend() {
        // One thread: operations are totally ordered in real time and the
        // values strictly increase, so every backend must audit clean —
        // this is the deterministic smoke `scripts/verify.sh` relies on.
        for backend in [
            "compiled",
            "graph_walk",
            "combining",
            "diffracting",
            "fetch_add",
            "lock",
            "relaxed",
            "elimination",
        ] {
            let out =
                call(&["audit", "8", "--backend", backend, "--ops", "300"]).unwrap();
            assert!(out.contains("events recorded:         300"), "{backend}: {out}");
            assert!(out.contains("events dropped:          0"), "{backend}: {out}");
            assert!(out.contains("linearizable:            true"), "{backend}: {out}");
            assert!(out.contains("qqc lateness: max 0"), "{backend}: {out}");
            assert!(out.contains("audit verdict: clean (0 violations)"), "{backend}: {out}");
        }
    }

    #[test]
    fn audit_relaxed_backend_reports_lateness_instead_of_failing() {
        // Multi-threaded relaxed runs may reorder; the audit must report
        // the measured lateness and still exit zero (Ok) — the relaxed
        // contract is the exact multiset, not the order.
        let out = call(&[
            "audit", "8", "--backend", "relaxed", "--threads", "4", "--ops", "2000",
            "--sub-counters", "8",
        ])
        .unwrap();
        assert!(out.contains("qqc lateness: max"), "{out}");
        assert!(
            out.contains("audit verdict: clean (0 violations)")
                || out.contains("relaxed backend: reordering measured"),
            "{out}"
        );
    }

    #[test]
    fn audit_reports_fractions_and_family() {
        let out = call(&[
            "audit", "4", "--family", "periodic", "--threads", "2", "--ops", "200",
        ])
        .unwrap();
        assert!(out.contains("backend=compiled family=periodic w=4, 2 threads x 200 ops"));
        assert!(out.contains("events recorded:         400"));
        assert!(out.contains("F_nl  ="));
        assert!(out.contains("F_nsc ="));
        assert!(out.contains("audit verdict:"));
    }

    /// `cnet audit --backend remote` runs the client-side audit against a
    /// live socket: intervals include the wire, every op still accounted.
    #[test]
    fn audit_remote_backend_runs_against_a_live_serve() {
        let port_file = std::env::temp_dir().join("cnet_cli_test_audit_remote.port");
        let _ = std::fs::remove_file(&port_file);
        let pf = port_file.to_str().unwrap().to_string();
        let server = std::thread::spawn({
            let pf = pf.clone();
            move || call(&["serve", "4", "--backend", "fetch_add", "--port-file", &pf])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                if !addr.is_empty() {
                    break addr;
                }
            }
            assert!(std::time::Instant::now() < deadline, "serve never wrote the port file");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let out = call(&[
            "audit", "4", "--backend", "remote", "--addr", &addr, "--threads", "2", "--ops",
            "200",
        ])
        .unwrap();
        assert!(out.contains("backend=remote"), "{out}");
        assert!(out.contains("events recorded:         400"), "{out}");
        assert!(out.contains("audit verdict:"), "{out}");
        call(&["loadgen", "--addr", &addr, "--ops", "1", "--check", "0", "--shutdown", "1"])
            .unwrap();
        server.join().unwrap().unwrap();
        assert!(call(&["audit", "4", "--backend", "remote"])
            .unwrap_err()
            .contains("needs --addr"));
        let _ = std::fs::remove_file(&port_file);
    }

    #[test]
    fn audit_rejects_bad_arguments() {
        assert!(call(&["audit"]).unwrap_err().contains("cnet audit <w>"));
        assert!(call(&["audit", "six"]).unwrap_err().contains("not a valid width"));
        assert!(call(&["audit", "8", "--backend", "quantum"])
            .unwrap_err()
            .contains("unknown backend"));
        assert!(call(&["audit", "8", "--bogus", "1"]).unwrap_err().contains("unknown flag"));
        assert!(call(&["audit", "6"]).is_err()); // not a power of two
    }

    #[test]
    fn bench_rejects_bad_arguments() {
        assert!(call(&["bench"]).unwrap_err().contains("cnet bench <w>"));
        assert!(call(&["bench", "six"]).unwrap_err().contains("not a valid width"));
        assert!(call(&["bench", "6"]).unwrap_err().contains("unsupported width"));
        assert!(call(&["bench", "4", "--threads", "0"])
            .unwrap_err()
            .contains("positive integers"));
        assert!(call(&["bench", "4", "--bogus", "1"]).unwrap_err().contains("unknown flag"));
    }

    #[test]
    fn save_and_replay_round_trip() {
        let path = std::env::temp_dir().join("cnet_cli_test_waves.json");
        let path_str = path.to_str().unwrap();
        let saved = call(&["waves", "bitonic", "8", "--ell", "1", "--save", path_str]).unwrap();
        assert!(saved.contains("schedule saved"));
        let replayed = call(&["replay", "bitonic", "8", "--from", path_str]).unwrap();
        assert!(replayed.contains("linearizable:            false"));
        // Replaying against the wrong fan is rejected.
        let err = call(&["replay", "bitonic", "4", "--from", path_str]).unwrap_err();
        assert!(err.contains("artifact targets w=8"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn replay_reports_missing_file() {
        let err = call(&["replay", "bitonic", "8", "--from", "/nonexistent/x.json"]).unwrap_err();
        assert!(err.contains("read /nonexistent/x.json"));
    }
}
