//! `cnet` — build, simulate, and audit counting networks from the shell.
//!
//! ```text
//! cnet info      <family> <w>                       structural report
//! cnet dot       <family> <w>                       Graphviz DOT to stdout
//! cnet simulate  <family> <w> [options]             random schedule + audit
//! cnet waves     <family> <w> [--ell L] [--ratio R] Theorem 5.11 waves + audit
//! cnet race      <family> <w> [--ratio R]           holding race + audit
//! cnet run       <family> <w> [options]             threaded run + audit
//! ```
//!
//! Families: `bitonic`, `periodic`, `tree`, `block`, `merger`.

use cnet_cli::{dispatch, usage};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            // Usage help is for malformed invocations (one-line errors).
            // Multi-line errors are failed *results* — an audit that found
            // violations, a loadgen that broke the permutation — where the
            // report itself is the message and usage text is noise.
            if !message.contains('\n') {
                eprintln!();
                eprintln!("{}", usage());
            }
            ExitCode::FAILURE
        }
    }
}
