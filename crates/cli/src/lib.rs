//! Implementation of the `cnet` command-line tool.
//!
//! All functionality lives here (rather than in `main.rs`) so the command
//! surface is unit-testable: [`dispatch`] maps an argument vector to either
//! rendered output or an error message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod artifact;
mod commands;

pub use args::{parse_network, Options};
pub use artifact::ScheduleArtifact;
pub use commands::{dispatch, usage};
