//! Argument parsing for the `cnet` tool — a small hand-rolled parser so the
//! workspace stays within its vetted dependency set.

use cnet_topology::construct::{bitonic, block, counting_tree, merger, periodic};
use cnet_topology::Network;

/// Builds the requested network family at fan `w`.
///
/// # Errors
///
/// Returns a user-facing message for unknown families or unsupported
/// widths.
pub fn parse_network(family: &str, w_str: &str) -> Result<Network, String> {
    let w: usize = w_str
        .parse()
        .map_err(|_| format!("'{w_str}' is not a valid width"))?;
    let built = match family {
        "bitonic" | "b" => bitonic(w),
        "periodic" | "p" => periodic(w),
        "tree" | "t" => counting_tree(w),
        "block" | "l" => block(w),
        "merger" | "m" => merger(w),
        other => {
            return Err(format!(
                "unknown family '{other}' (expected bitonic, periodic, tree, block, or merger)"
            ))
        }
    };
    built.map_err(|e| e.to_string())
}

/// Parsed `--key value` options with typed accessors and unknown-flag
/// detection.
#[derive(Debug, Default)]
pub struct Options {
    pairs: Vec<(String, String)>,
}

impl Options {
    /// Parses `--key value` pairs from the tail of an argument list.
    ///
    /// # Errors
    ///
    /// Returns a message for stray positional arguments or a trailing flag
    /// with no value.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument '{flag}'"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Options { pairs })
    }

    /// Looks up a flag's raw value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// A `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// An `f64` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects a number, got '{v}'")),
        }
    }

    /// A `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer, got '{v}'")),
        }
    }

    /// Rejects flags outside the allowed set.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown flag.
    pub fn allow(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_network_families() {
        assert_eq!(parse_network("bitonic", "8").unwrap().depth(), 6);
        assert_eq!(parse_network("b", "8").unwrap().depth(), 6);
        assert_eq!(parse_network("periodic", "8").unwrap().depth(), 9);
        assert_eq!(parse_network("tree", "8").unwrap().fan_in(), 1);
        assert_eq!(parse_network("merger", "8").unwrap().depth(), 3);
        assert_eq!(parse_network("block", "8").unwrap().depth(), 3);
    }

    #[test]
    fn parse_network_rejects_bad_input() {
        assert!(parse_network("hexagonal", "8").unwrap_err().contains("unknown family"));
        assert!(parse_network("bitonic", "seven").unwrap_err().contains("not a valid width"));
        assert!(parse_network("bitonic", "6").is_err()); // not a power of two
    }

    #[test]
    fn options_parse_and_access() {
        let opts = Options::parse(&strings(&["--ratio", "3.5", "--seed", "7"])).unwrap();
        assert_eq!(opts.f64_or("ratio", 1.0).unwrap(), 3.5);
        assert_eq!(opts.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(opts.usize_or("processes", 4).unwrap(), 4);
        assert!(opts.allow(&["ratio", "seed"]).is_ok());
        assert!(opts.allow(&["ratio"]).unwrap_err().contains("--seed"));
    }

    #[test]
    fn options_reject_malformed_input() {
        assert!(Options::parse(&strings(&["stray"])).is_err());
        assert!(Options::parse(&strings(&["--flag"])).is_err());
        let opts = Options::parse(&strings(&["--n", "x"])).unwrap();
        assert!(opts.usize_or("n", 1).is_err());
    }

    #[test]
    fn later_flags_override_earlier() {
        let opts = Options::parse(&strings(&["--n", "1", "--n", "2"])).unwrap();
        assert_eq!(opts.usize_or("n", 0).unwrap(), 2);
    }
}
