//! A message-passing implementation of counting networks.
//!
//! Section 2.3 of the paper notes its timing model "is sufficiently general
//! to capture both shared memory and message passing implementations of
//! balancers". This module provides the second kind: every balancer and
//! every counter is a **server thread** owning its state, wires are
//! channels, and a token is a message carrying a reply channel. No shared
//! mutable state exists at all — coordination is purely by communication.
//!
//! The per-wire channel hop is the physical realization of the paper's wire
//! delay `c`; a loaded scheduler stretches it toward `c_max`.
//!
//! Deployment routes through the [`CompiledNetwork`] flat tables: the wire
//! graph is resolved once into per-balancer hop slices, and each server's
//! output channels are read straight off them.

use crate::compiled::{CompiledNetwork, Hop};
use crate::drain::Drain;
use crate::ProcessCounter;
use cnet_topology::Network;
use cnet_util::sync::{unbounded, Receiver, Sender};

/// A token in flight: where to send the obtained value.
enum Msg {
    Token {
        /// Where the counter sends the value.
        reply: Sender<u64>,
    },
    Shutdown,
}

/// A counting network deployed as a set of balancer and counter server
/// threads connected by channels.
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_runtime::message_passing::MessagePassingCounter;
///
/// let net = bitonic(4)?;
/// let counter = MessagePassingCounter::start(&net);
/// let mut values: Vec<u64> = (0..8).map(|k| counter.increment_from(k % 4)).collect();
/// values.sort_unstable();
/// assert_eq!(values, (0..8).collect::<Vec<_>>());
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Debug)]
pub struct MessagePassingCounter {
    /// Senders for the network's input wires.
    inputs: Vec<Sender<Msg>>,
    /// Every server's inbox sender, for shutdown.
    all_servers: Vec<Sender<Msg>>,
    /// Server threads, joined on drop (the shared signal-then-join idiom —
    /// see [`Drain`]).
    drain: Drain,
    fan_in: usize,
}

impl MessagePassingCounter {
    /// Deploys the network: one thread per balancer and per counter.
    pub fn start(net: &Network) -> Self {
        MessagePassingCounter::start_compiled(&CompiledNetwork::compile(net))
    }

    /// Deploys an already-compiled network.
    pub fn start_compiled(engine: &CompiledNetwork) -> Self {
        let w = engine.fan_out() as u64;
        // One inbox per balancer, one per counter.
        let bal_channels: Vec<(Sender<Msg>, Receiver<Msg>)> =
            (0..engine.size()).map(|_| unbounded()).collect();
        let counter_channels: Vec<(Sender<Msg>, Receiver<Msg>)> =
            (0..engine.fan_out()).map(|_| unbounded()).collect();

        let sender_for = |hop: Hop| -> Sender<Msg> {
            if hop.is_counter() {
                counter_channels[hop.index()].0.clone()
            } else {
                bal_channels[hop.index()].0.clone()
            }
        };

        let mut drain = Drain::with_capacity(engine.size() + engine.fan_out());
        // Balancer servers: round-robin forwarding, wired straight off the
        // compiled hop slices.
        for b in 0..engine.size() {
            let inbox = bal_channels[b].1.clone();
            let outputs: Vec<Sender<Msg>> =
                engine.hops(b).iter().map(|&hop| sender_for(hop)).collect();
            drain.push(std::thread::spawn(move || {
                let mut state = 0usize;
                while let Ok(msg) = inbox.recv() {
                    match msg {
                        Msg::Token { reply } => {
                            // A send fails only during teardown races; the
                            // token is then dropped along with the system.
                            let _ = outputs[state].send(Msg::Token { reply });
                            state = (state + 1) % outputs.len();
                        }
                        Msg::Shutdown => break,
                    }
                }
            }));
        }
        // Counter servers: hand out j, j+w, j+2w, …
        for (j, (_, inbox)) in counter_channels.iter().enumerate() {
            let inbox = inbox.clone();
            let mut value = j as u64;
            drain.push(std::thread::spawn(move || {
                while let Ok(msg) = inbox.recv() {
                    match msg {
                        Msg::Token { reply } => {
                            let _ = reply.send(value);
                            value += w;
                        }
                        Msg::Shutdown => break,
                    }
                }
            }));
        }

        let inputs: Vec<Sender<Msg>> =
            (0..engine.fan_in()).map(|i| sender_for(engine.entry(i))).collect();
        let all_servers: Vec<Sender<Msg>> = bal_channels
            .iter()
            .map(|(s, _)| s.clone())
            .chain(counter_channels.iter().map(|(s, _)| s.clone()))
            .collect();

        MessagePassingCounter { inputs, all_servers, drain, fan_in: engine.fan_in() }
    }

    /// Injects one token on input wire `input` and blocks until its value
    /// returns.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range or the network was torn down.
    pub fn increment_from(&self, input: usize) -> u64 {
        assert!(input < self.fan_in, "input wire {input} out of range");
        let (reply_tx, reply_rx) = unbounded();
        self.inputs[input]
            .send(Msg::Token { reply: reply_tx })
            .expect("network servers are running");
        reply_rx.recv().expect("counter replies to every token")
    }
}

impl ProcessCounter for MessagePassingCounter {
    fn next_for(&self, process: usize) -> u64 {
        self.increment_from(process % self.fan_in)
    }
}

impl Drop for MessagePassingCounter {
    fn drop(&mut self) {
        // Signal, then drain: every server sees a Shutdown in its inbox and
        // exits its loop; `Drain` joins them all (and would also do so from
        // its own drop, were this impl removed — the explicit call keeps
        // the signal and the join visibly paired).
        for s in &self.all_servers {
            let _ = s.send(Msg::Shutdown);
        }
        self.drain.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SharedNetworkCounter;
    use cnet_topology::construct::{bitonic, counting_tree, periodic};
    use std::thread;

    #[test]
    fn single_client_matches_reference_semantics() {
        let net = bitonic(4).unwrap();
        let mp = MessagePassingCounter::start(&net);
        let mut reference = cnet_topology::state::NetworkState::new(&net);
        for k in 0..40usize {
            let input = k % 4;
            assert_eq!(mp.increment_from(input), reference.traverse(&net, input).value);
        }
    }

    #[test]
    fn concurrent_clients_get_dense_values() {
        for net in [bitonic(8).unwrap(), periodic(4).unwrap(), counting_tree(8).unwrap()] {
            let mp = MessagePassingCounter::start(&net);
            let mut values: Vec<u64> = thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|p| {
                        let mp = &mp;
                        let fan = net.fan_in();
                        s.spawn(move || {
                            (0..100).map(|_| mp.increment_from(p % fan)).collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            values.sort_unstable();
            assert_eq!(values, (0..400).collect::<Vec<_>>(), "{net}");
        }
    }

    #[test]
    fn message_passing_and_shared_memory_agree_sequentially() {
        let net = bitonic(8).unwrap();
        let mp = MessagePassingCounter::start(&net);
        let shm = SharedNetworkCounter::new(&net);
        for k in 0..64usize {
            assert_eq!(mp.increment_from(k % 8), shm.increment_from(k % 8));
        }
    }

    #[test]
    fn start_compiled_reuses_an_engine() {
        let net = bitonic(4).unwrap();
        let engine = CompiledNetwork::compile(&net);
        let mp = MessagePassingCounter::start_compiled(&engine);
        let mut reference = cnet_topology::state::NetworkState::new(&net);
        for k in 0..16usize {
            assert_eq!(mp.increment_from(k % 4), reference.traverse(&net, k % 4).value);
        }
    }

    #[test]
    fn teardown_is_clean() {
        let net = bitonic(4).unwrap();
        {
            let mp = MessagePassingCounter::start(&net);
            mp.increment_from(0);
        } // drop joins all 6 + 4 server threads
        // Starting a fresh deployment afterwards works.
        let mp = MessagePassingCounter::start(&net);
        assert_eq!(mp.increment_from(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_input_wire_panics() {
        let net = bitonic(2).unwrap();
        MessagePassingCounter::start(&net).increment_from(9);
    }
}
