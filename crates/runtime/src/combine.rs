//! The combining funnel: a front-end that turns contention into batch
//! width.
//!
//! Concurrent single-token callers that collide at the counter's entry
//! publish their request in a per-slot [`CachePadded`] publication array.
//! Whoever wins the combiner lock sweeps the array, folds every pending
//! request into **one** [`ProcessCounter::next_batch_for`] call on the
//! inner counter — one batched traversal, at most one atomic per balancer
//! (see [`CompiledNetwork::traverse_batch`]) — and distributes the values
//! back through the slots. Losers spin briefly on their own cache line and
//! walk away with a value they never traversed for.
//!
//! This is the diffracting-prism idea run in reverse: instead of spreading
//! colliding tokens across space, the funnel *collects* them into batch
//! width, so the hotter the counter gets the cheaper each token becomes.
//! The trade is the same one the paper's framework prices: values within a
//! combined batch are claimed at a single linearization point, so
//! per-process program order still holds (each caller blocks until its
//! value arrives), but real-time ordering *across* callers can drift —
//! exactly the relaxation the streaming auditor (`cnet-core::trace`)
//! measures as `F_nl`/`F_nsc`.
//!
//! [`CompiledNetwork::traverse_batch`]: crate::compiled::CompiledNetwork::traverse_batch

use crate::ProcessCounter;
use cnet_util::sync::{Backoff, CachePadded};
use cnet_util::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Slot states of the publication array.
const FREE: usize = 0;
const PENDING: usize = 1;
const DONE: usize = 2;

/// One publication record: the state word and the value the combiner
/// deposits. Each slot owns a cache line, so a waiting caller spins
/// locally without disturbing anyone.
#[derive(Debug, Default)]
struct Slot {
    state: AtomicUsize,
    value: AtomicU64,
}

/// A combining front-end over any [`ProcessCounter`].
///
/// `next_for` publishes the request in slot `process % width`, then either
/// wins the combiner lock (serving every pending request in one batched
/// call on the inner counter) or waits for a combiner to serve it. Two
/// callers sharing a slot serialize on the slot claim, so `width >=`
/// the number of concurrent processes keeps publication contention-free.
///
/// Batched calls ([`ProcessCounter::next_batch_for`]) bypass the funnel —
/// they are already amortized — and go straight to the inner counter.
///
/// # Example
///
/// ```
/// use cnet_runtime::{CombiningFunnel, FetchAddCounter, ProcessCounter};
///
/// let funnel = CombiningFunnel::new(FetchAddCounter::new(), 4);
/// let mut values: Vec<u64> = (0..8).map(|p| funnel.next_for(p)).collect();
/// values.sort_unstable();
/// assert_eq!(values, (0..8).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct CombiningFunnel<C> {
    inner: C,
    /// The combiner lock: `true` while somebody is sweeping.
    lock: CachePadded<AtomicBool>,
    slots: Box<[CachePadded<Slot>]>,
    /// Batched sweeps performed (every `next_for` lands in exactly one).
    combined_batches: CachePadded<AtomicU64>,
    /// Requests served through sweeps (equals `next_for` calls completed).
    combined_ops: CachePadded<AtomicU64>,
    /// The widest sweep seen so far — `> 1` means real combining happened.
    widest_batch: CachePadded<AtomicU64>,
    /// Times a caller won the combiner lock only to find a previous
    /// combiner had already served its slot (the own-slot-DONE recheck
    /// fired). Rare in the wild; the model checker proves it reachable.
    served_then_won_lock: CachePadded<AtomicU64>,
}

/// Deliberately seedable bugs for the model checker's own validation
/// (`model-check` builds only — see `tests/model_check.rs`). Skipping
/// the own-slot-DONE recheck reintroduces a race where a caller that
/// was served while contending for the combiner lock sweeps anyway,
/// double-claiming values; the checker must catch it and print a
/// replay string.
#[cfg(feature = "model-check")]
pub mod model_bugs {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// When `true`, [`super::CombiningFunnel::next_for`] skips the
    /// own-slot-DONE recheck after winning the combiner lock.
    pub static SKIP_SERVED_RECHECK: AtomicBool = AtomicBool::new(false);

    pub(super) fn skip_served_recheck() -> bool {
        SKIP_SERVED_RECHECK.load(Ordering::Relaxed)
    }
}

impl<C: ProcessCounter> CombiningFunnel<C> {
    /// Wraps `inner` with a publication array of `width` slots (at least
    /// one).
    pub fn new(inner: C, width: usize) -> Self {
        CombiningFunnel {
            inner,
            lock: CachePadded::new(AtomicBool::new(false)),
            slots: (0..width.max(1)).map(|_| CachePadded::default()).collect(),
            combined_batches: CachePadded::new(AtomicU64::new(0)),
            combined_ops: CachePadded::new(AtomicU64::new(0)),
            widest_batch: CachePadded::new(AtomicU64::new(0)),
            served_then_won_lock: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Number of publication slots.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// Batched sweeps performed so far.
    pub fn combined_batches(&self) -> u64 {
        self.combined_batches.load(Ordering::Relaxed)
    }

    /// Requests served through sweeps so far.
    pub fn combined_ops(&self) -> u64 {
        self.combined_ops.load(Ordering::Relaxed)
    }

    /// The widest single sweep so far; anything above 1 proves contention
    /// was converted into batch width.
    pub fn widest_batch(&self) -> u64 {
        self.widest_batch.load(Ordering::Relaxed)
    }

    /// Times the own-slot-DONE recheck fired: a caller won the combiner
    /// lock after a previous combiner had already served it. The model
    /// checker asserts this race is reachable (and handled).
    pub fn served_then_won_lock(&self) -> u64 {
        self.served_then_won_lock.load(Ordering::Relaxed)
    }

    /// Sweeps the publication array as the combiner (the lock is held):
    /// collects every `PENDING` slot, claims their values with one batched
    /// call, deposits results, and returns the value belonging to `me`.
    fn combine(&self, process: usize, me: usize) -> u64 {
        let pending: Vec<usize> = (0..self.slots.len())
            .filter(|&i| self.slots[i].state.load(Ordering::Acquire) == PENDING)
            .collect();
        // Our own slot is PENDING (we claimed it and nobody else writes
        // DONE while we hold the lock), so `pending` is never empty.
        debug_assert!(pending.contains(&me));
        let values = self.inner.next_batch_for(process, pending.len());
        self.combined_batches.fetch_add(1, Ordering::Relaxed);
        self.combined_ops.fetch_add(pending.len() as u64, Ordering::Relaxed);
        self.widest_batch.fetch_max(pending.len() as u64, Ordering::Relaxed);
        let mut mine = 0;
        for (&i, &v) in pending.iter().zip(&values) {
            if i == me {
                mine = v;
                self.slots[i].state.store(FREE, Ordering::Release);
            } else {
                self.slots[i].value.store(v, Ordering::Release);
                self.slots[i].state.store(DONE, Ordering::Release);
            }
        }
        self.lock.store(false, Ordering::Release);
        mine
    }
}

impl<C: ProcessCounter> ProcessCounter for CombiningFunnel<C> {
    fn next_for(&self, process: usize) -> u64 {
        let me = process % self.slots.len();
        let slot = &self.slots[me];
        // Claim the slot; two callers mapped to it serialize here.
        let claim = Backoff::new();
        while slot
            .state
            .compare_exchange_weak(FREE, PENDING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            claim.snooze();
        }
        loop {
            if !self.lock.swap(true, Ordering::Acquire) {
                // We hold the combiner lock — but a previous combiner may
                // have served us between our last DONE check and the swap.
                #[cfg(feature = "model-check")]
                let recheck = !model_bugs::skip_served_recheck();
                #[cfg(not(feature = "model-check"))]
                let recheck = true;
                if recheck && slot.state.load(Ordering::Acquire) == DONE {
                    self.served_then_won_lock.fetch_add(1, Ordering::Relaxed);
                    self.lock.store(false, Ordering::Release);
                    let v = slot.value.load(Ordering::Acquire);
                    slot.state.store(FREE, Ordering::Release);
                    return v;
                }
                return self.combine(process, me);
            }
            // Somebody else is sweeping: spin on our own line until they
            // serve us, or retry for the lock once they release it.
            let wait = Backoff::new();
            loop {
                if slot.state.load(Ordering::Acquire) == DONE {
                    let v = slot.value.load(Ordering::Acquire);
                    slot.state.store(FREE, Ordering::Release);
                    return v;
                }
                if !self.lock.load(Ordering::Acquire) {
                    break;
                }
                wait.snooze();
            }
        }
    }

    /// Batches are already amortized — they go straight to the inner
    /// counter's batched path instead of occupying the funnel.
    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        self.inner.next_batch_for(process, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FetchAddCounter, SharedNetworkCounter};
    use cnet_topology::construct::bitonic;
    use std::sync::atomic::AtomicU32;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn sequential_calls_each_combine_a_batch_of_one() {
        let funnel = CombiningFunnel::new(FetchAddCounter::new(), 4);
        for expect in 0..10 {
            assert_eq!(funnel.next_for(expect as usize), expect);
        }
        assert_eq!(funnel.combined_batches(), 10);
        assert_eq!(funnel.combined_ops(), 10);
        assert_eq!(funnel.widest_batch(), 1);
    }

    #[test]
    fn concurrent_funnel_values_are_gap_free() {
        let net = bitonic(8).unwrap();
        let funnel = CombiningFunnel::new(SharedNetworkCounter::new(&net), 8);
        let per_thread = 400;
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..8usize)
                .map(|p| {
                    let f = &funnel;
                    s.spawn(move || {
                        (0..per_thread).map(|_| f.next_for(p)).collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        let n = 8 * per_thread;
        assert_eq!(values, (0..n as u64).collect::<Vec<_>>());
        assert_eq!(funnel.combined_ops(), n as u64);
        assert!(funnel.combined_batches() <= n as u64);
    }

    #[test]
    fn colliding_callers_on_one_slot_serialize() {
        // Width 1: every process maps to the same slot; the claim CAS must
        // serialize them without losing values.
        let funnel = CombiningFunnel::new(FetchAddCounter::new(), 1);
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..4usize)
                .map(|p| {
                    let f = &funnel;
                    s.spawn(move || (0..100).map(|_| f.next_for(p)).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        assert_eq!(values, (0..400).collect::<Vec<_>>());
        assert_eq!(funnel.widest_batch(), 1, "one slot can never combine");
    }

    /// A counter whose first batched call stalls, so concurrent callers
    /// pile up in the publication array — the next combiner must then
    /// sweep them all in one batch.
    struct Staller {
        inner: FetchAddCounter,
        calls: AtomicU32,
    }

    impl ProcessCounter for Staller {
        fn next_for(&self, process: usize) -> u64 {
            self.inner.next_for(process)
        }

        fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
            if self.calls.fetch_add(1, Ordering::AcqRel) == 0 {
                thread::sleep(Duration::from_millis(100));
            }
            self.inner.next_batch_for(process, n)
        }
    }

    #[test]
    fn contention_becomes_batch_width() {
        let threads = 4;
        let funnel = CombiningFunnel::new(
            Staller { inner: FetchAddCounter::new(), calls: AtomicU32::new(0) },
            threads,
        );
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    let f = &funnel;
                    s.spawn(move || f.next_for(p))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        assert_eq!(values, (0..threads as u64).collect::<Vec<_>>());
        // While the first combiner stalled inside the inner counter, the
        // other callers published; whoever sweeps next collects them all.
        assert!(
            funnel.widest_batch() >= 2,
            "no combining happened: widest {} across {} batches",
            funnel.widest_batch(),
            funnel.combined_batches()
        );
        assert!(funnel.combined_batches() < threads as u64);
    }

    #[test]
    fn batched_calls_bypass_the_funnel() {
        let funnel = CombiningFunnel::new(FetchAddCounter::new(), 4);
        let values = funnel.next_batch_for(0, 5);
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        assert_eq!(funnel.combined_batches(), 0);
    }
}
