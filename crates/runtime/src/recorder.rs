//! The always-on trace recorder: per-thread sharded ring buffers that
//! capture every increment at a cost small enough to leave hot-path
//! throughput intact, drained off the hot path into the online monitors.
//!
//! # Design
//!
//! * **One shard per thread.** Each worker writes only its own ring, so
//!   the hot path takes no locks and contends on no shared word. A shard's
//!   `head`/`tail` indices sit on their own cache lines
//!   ([`cnet_util::sync::CachePadded`]).
//! * **Batched boundary timestamps.** Reading the cycle counter costs more
//!   than the whole ring write (tens of cycles, and far more under
//!   virtualization), so the recorder does not stamp every operation.
//!   Instead it takes one raw [`cnet_util::time::raw_ticks`] reading per
//!   *batch* of [`BATCH`] operations, at the batch boundary, and every
//!   operation in the batch is recorded with the interval
//!   `[previous boundary stamp, this boundary stamp]`. Both ends of that
//!   interval only ever *widen* the true interval (the batch's first
//!   operation enters after the previous boundary; its last exits before
//!   the next), so every real-time precedence the monitors derive from
//!   recorded events is a genuine precedence — widening can hide a
//!   violation that fits inside one batch span (≈ `BATCH` operation
//!   latencies, about a microsecond), never fabricate one. The scheduling
//!   pathologies that produce real violations hold operations open across
//!   preemptions, orders of magnitude longer than a batch.
//! * **Raw ticks on the hot path.** Conversion to nanoseconds through the
//!   calibrated [`Clock`] happens at drain time, off the measured path.
//! * **Three words per event.** `enter`, `exit`, `value` as relaxed atomic
//!   stores, published by a release store of `head`; the drainer's acquire
//!   load of `head` makes the slots visible. Each shard has exactly one
//!   writer, so `head` needs no read-modify-write, and unpublished
//!   (pending) slots beyond `head` are invisible to the drainer until the
//!   batch's release.
//! * **Overflow drops, never blocks.** A full ring counts the event in
//!   [`TraceRecorder::dropped`] and moves on — recording must never
//!   throttle the counter it observes. Size rings to the workload
//!   (`capacity ≥ increments per thread` guarantees zero drops).
//!
//! [`drive_audited`] ties it together: workers hammer a counter wrapped
//! with a recorder ([`Traced`], or the `with_recorder` constructors on
//! [`crate::SharedNetworkCounter`] / [`crate::DiffractingTree`]) while the
//! driving thread periodically drains the rings through an
//! [`EventMerger`] into a [`StreamingAuditor`] — consistency verdicts and
//! Section 5.1 fractions, live, while the run executes.

use crate::{ProcessCounter, Workload};
use cnet_core::trace::{EventMerger, OpSink, RawOp, StreamingAuditor};
use cnet_util::sync::CachePadded;
use cnet_util::time::{raw_ticks, Clock};
use cnet_util::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Operations per timestamp batch: one cycle-counter read amortized over
/// this many events (capped at the ring capacity for tiny rings).
pub const BATCH: usize = 16;

/// One ring slot: an event's raw-tick interval and value.
#[derive(Debug)]
struct Slot {
    enter: AtomicU64,
    exit: AtomicU64,
    value: AtomicU64,
}

/// One single-writer ring.
#[derive(Debug)]
struct Shard {
    /// Events published (written only by the shard's owning thread).
    head: CachePadded<AtomicUsize>,
    /// Events consumed (written only by the drainer).
    tail: CachePadded<AtomicUsize>,
    /// Events lost to a full ring.
    dropped: CachePadded<AtomicU64>,
    /// Last drained enter time (drainer-only): clamps the (theoretically
    /// impossible, on sane TSCs) regression so the merger's per-shard
    /// ordering invariant holds unconditionally.
    last_enter_ns: AtomicU64,
    /// The shard's last batch-boundary stamp (writer-only): the enter bound
    /// of every event in the batch being accumulated.
    last_stamp: AtomicU64,
    /// Events written beyond `head` but not yet published (writer-only).
    pending: AtomicUsize,
    slots: Box<[Slot]>,
}

/// The sharded ring-buffer recorder (see module docs). Writers call
/// [`record`](Self::record) (one thread per shard); one drainer at a time
/// calls [`drain_into`](Self::drain_into). All methods take `&self`, so a
/// recorder can be shared (`Arc`) between the counter that writes it and
/// the auditor loop that drains it.
#[derive(Debug)]
pub struct TraceRecorder {
    clock: Clock,
    shards: Box<[Shard]>,
    mask: usize,
    /// Effective batch size: `min(BATCH, capacity)`.
    batch: usize,
}

impl TraceRecorder {
    /// A recorder with `shards` rings of at least `capacity` events each
    /// (rounded up to a power of two). Each shard must be written by at
    /// most one thread at a time; shard `s` is reported as process `s`.
    pub fn new(shards: usize, capacity: usize) -> TraceRecorder {
        let cap = capacity.max(2).next_power_of_two();
        let clock = Clock::new();
        let origin = raw_ticks();
        let make_shard = || Shard {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
            last_enter_ns: AtomicU64::new(0),
            last_stamp: AtomicU64::new(origin),
            pending: AtomicUsize::new(0),
            slots: (0..cap)
                .map(|_| Slot {
                    enter: AtomicU64::new(0),
                    exit: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
        };
        TraceRecorder {
            clock,
            shards: (0..shards).map(|_| make_shard()).collect(),
            mask: cap - 1,
            batch: BATCH.min(cap),
        }
    }

    /// The number of shards (the maximum worker count).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Ring capacity per shard, in events.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Records one completed operation on `shard` (its timestamp interval
    /// is the enclosing batch's boundary interval; see module docs).
    /// Returns `false` (and counts a drop) if the ring is full. The caller
    /// must be the shard's only concurrent writer.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[inline]
    pub fn record(&self, shard: usize, value: u64) -> bool {
        let s = &self.shards[shard];
        let head = s.head.load(Ordering::Relaxed);
        let pending = s.pending.load(Ordering::Relaxed);
        if head.wrapping_add(pending).wrapping_sub(s.tail.load(Ordering::Acquire)) > self.mask {
            s.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        s.slots[head.wrapping_add(pending) & self.mask].value.store(value, Ordering::Relaxed);
        let pending = pending + 1;
        if pending == self.batch {
            self.publish(s, head, pending);
        } else {
            s.pending.store(pending, Ordering::Relaxed);
        }
        true
    }

    /// Records a whole batch of completed operations on `shard` with **one
    /// boundary stamp pair for the entire batch**, publishing immediately.
    /// Returns how many of the values were recorded (the rest, if the ring
    /// fills, are counted as drops). The caller must be the shard's only
    /// concurrent writer.
    ///
    /// Soundness is the same widening argument as the per-[`BATCH`]
    /// stamping (see module docs): every operation in the batch entered
    /// after the shard's previous boundary stamp and exited before the
    /// `raw_ticks` reading taken here, so the recorded interval only
    /// widens the true one and a recorded precedence is always a genuine
    /// real-time precedence. Any singles still pending from
    /// [`record`](Self::record) are published under the same stamp pair —
    /// again a pure widening, since they too completed inside it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn record_batch(&self, shard: usize, values: &[u64]) -> usize {
        let s = &self.shards[shard];
        let head = s.head.load(Ordering::Relaxed);
        let mut pending = s.pending.load(Ordering::Relaxed);
        let used = head.wrapping_add(pending).wrapping_sub(s.tail.load(Ordering::Acquire));
        let room = (self.mask + 1) - used;
        let recorded = values.len().min(room);
        if recorded < values.len() {
            s.dropped.fetch_add((values.len() - recorded) as u64, Ordering::Relaxed);
        }
        for &value in &values[..recorded] {
            s.slots[head.wrapping_add(pending) & self.mask].value.store(value, Ordering::Relaxed);
            pending += 1;
        }
        if pending > 0 {
            self.publish(s, head, pending);
        }
        recorded
    }

    /// Stamps and publishes the shard's pending batch.
    fn publish(&self, s: &Shard, head: usize, pending: usize) {
        let now = raw_ticks();
        let enter = s.last_stamp.load(Ordering::Relaxed);
        for i in 0..pending {
            let slot = &s.slots[head.wrapping_add(i) & self.mask];
            slot.enter.store(enter, Ordering::Relaxed);
            slot.exit.store(now, Ordering::Relaxed);
        }
        s.last_stamp.store(now, Ordering::Relaxed);
        s.pending.store(0, Ordering::Relaxed);
        s.head.store(head.wrapping_add(pending), Ordering::Release);
    }

    /// Publishes `shard`'s partial batch, if any. Must be called by the
    /// shard's writing thread, or after that thread has quiesced (e.g.
    /// been joined) — never concurrently with its [`record`](Self::record)
    /// calls.
    pub fn flush(&self, shard: usize) {
        let s = &self.shards[shard];
        let pending = s.pending.load(Ordering::Relaxed);
        if pending > 0 {
            self.publish(s, s.head.load(Ordering::Relaxed), pending);
        }
    }

    /// Total events lost to full rings so far.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Moves every currently-published event out of the rings into the
    /// merger (shard `s` feeds merger shard `s` as process `s`),
    /// converting raw ticks to nanoseconds. Returns how many events moved.
    /// Call from one drainer thread at a time.
    ///
    /// # Panics
    ///
    /// Panics if the merger has fewer shards than the recorder.
    pub fn drain_into(&self, merger: &mut EventMerger) -> usize {
        self.drain_each(|si, enter_ns, exit_ns, value| {
            merger.push(si, RawOp { process: si, enter_ns, exit_ns, value });
        })
    }

    /// Moves every currently-published event out of the rings into a
    /// callback `(shard, enter_ns, exit_ns, value)`, in per-shard record
    /// order with nondecreasing enter times per shard — the raw form a
    /// cluster node serves over the wire so the *fetching* side can do
    /// the global merge. Returns how many events moved. Call from one
    /// drainer thread at a time.
    pub fn drain_each(&self, mut f: impl FnMut(usize, u64, u64, u64)) -> usize {
        let mut moved = 0;
        for (si, s) in self.shards.iter().enumerate() {
            let head = s.head.load(Ordering::Acquire);
            let mut tail = s.tail.load(Ordering::Relaxed);
            let mut last_enter = s.last_enter_ns.load(Ordering::Relaxed);
            while tail != head {
                let slot = &s.slots[tail & self.mask];
                let enter_raw = slot.enter.load(Ordering::Relaxed);
                let exit_raw = slot.exit.load(Ordering::Relaxed);
                let value = slot.value.load(Ordering::Relaxed);
                // Clamp so per-shard enters never regress and intervals
                // stay well-formed even under TSC pathologies.
                let enter_ns = self.clock.raw_to_ns(enter_raw).max(last_enter);
                let exit_ns = self.clock.raw_to_ns(exit_raw).max(enter_ns);
                last_enter = enter_ns;
                f(si, enter_ns, exit_ns, value);
                tail = tail.wrapping_add(1);
                moved += 1;
            }
            s.last_enter_ns.store(last_enter, Ordering::Relaxed);
            s.tail.store(tail, Ordering::Release);
        }
        moved
    }
}

/// Wraps any [`ProcessCounter`] so every operation is recorded: process
/// `p`'s operations land in shard `p` of the recorder (so `p` must stay
/// below [`TraceRecorder::shards`], with one thread per process).
#[derive(Debug)]
pub struct Traced<C> {
    inner: C,
    recorder: Arc<TraceRecorder>,
}

impl<C: ProcessCounter> Traced<C> {
    /// Wraps `inner` with `recorder`.
    pub fn new(inner: C, recorder: Arc<TraceRecorder>) -> Traced<C> {
        Traced { inner, recorder }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The recorder operations land in.
    pub fn recorder(&self) -> &Arc<TraceRecorder> {
        &self.recorder
    }
}

impl<C: ProcessCounter> ProcessCounter for Traced<C> {
    fn next_for(&self, process: usize) -> u64 {
        let value = self.inner.next_for(process);
        self.recorder.record(process, value);
        value
    }

    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        let values = self.inner.next_batch_for(process, n);
        self.recorder.record_batch(process, &values);
        values
    }
}

/// The outcome of an audited run: the auditor (verdicts, witnesses,
/// fractions) plus the recording bookkeeping.
#[derive(Debug)]
pub struct AuditedRun {
    /// The auditor after consuming the whole merged stream.
    pub auditor: StreamingAuditor,
    /// Events that reached the auditor.
    pub recorded: usize,
    /// Events lost to full rings (0 when `capacity ≥ increments per
    /// thread`).
    pub dropped: u64,
}

/// Runs `workload` against a counter that records into `recorder` (wrap it
/// with [`Traced`] or build it `with_recorder`), draining the rings into a
/// [`StreamingAuditor`] **while the workers run**. `on_progress` fires
/// after each non-empty drain with the auditor's running state.
///
/// # Panics
///
/// Panics if the recorder has fewer shards than the workload has threads
/// (two threads would share a ring, breaking the single-writer contract).
pub fn drive_audited<C: ProcessCounter>(
    counter: &C,
    recorder: &TraceRecorder,
    workload: Workload,
    mut on_progress: impl FnMut(&StreamingAuditor),
) -> AuditedRun {
    assert!(
        recorder.shards() >= workload.threads,
        "recorder has {} shards for {} threads",
        recorder.shards(),
        workload.threads
    );
    let shards = recorder.shards();
    let mut merger = EventMerger::new(shards);
    let mut auditor = StreamingAuditor::new();
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..workload.threads {
            let finished = &finished;
            s.spawn(move || {
                for _ in 0..workload.increments_per_thread {
                    counter.next_for(p);
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        loop {
            let done = finished.load(Ordering::Acquire) == workload.threads;
            if recorder.drain_into(&mut merger) > 0 {
                merger.drain_into(&mut auditor);
                on_progress(&auditor);
            }
            if done {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    });
    // Workers are joined: publish every partial batch, collect the stream,
    // then release the merger's watermarks (finished shards no longer
    // constrain release).
    for sh in 0..shards {
        recorder.flush(sh);
    }
    recorder.drain_into(&mut merger);
    for sh in 0..shards {
        merger.finish(sh);
    }
    merger.drain_into(&mut auditor);
    let recorded = auditor.operations();
    AuditedRun { auditor, recorded, dropped: recorder.dropped() }
}

/// Flushes partial batches and drains whatever remains in `recorder` into
/// an arbitrary sink, merging shards in enter order (a convenience for
/// post-run, non-live auditing — all writers must have quiesced).
pub fn drain_remaining(recorder: &TraceRecorder, sink: &mut impl OpSink) -> usize {
    let mut merger = EventMerger::new(recorder.shards());
    for sh in 0..recorder.shards() {
        recorder.flush(sh);
    }
    recorder.drain_into(&mut merger);
    for sh in 0..recorder.shards() {
        merger.finish(sh);
    }
    merger.drain_into(sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FetchAddCounter;
    use cnet_core::trace::OpEvent;

    #[test]
    fn record_and_drain_round_trip() {
        let rec = TraceRecorder::new(2, 8);
        assert!(rec.record(0, 0));
        assert!(rec.record(0, 2));
        assert!(rec.record(1, 1));
        let mut events: Vec<OpEvent> = Vec::new();
        let n = drain_remaining(&rec, &mut events);
        assert_eq!(n, 3);
        // Globally enter-ordered; shard index is the process.
        assert!(events.windows(2).all(|w| w[0].enter_key() <= w[1].enter_key()));
        let mine: Vec<u64> =
            events.iter().filter(|e| e.process == 0).map(|e| e.value).collect();
        assert_eq!(mine, vec![0, 2]);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn batches_share_boundary_intervals() {
        let rec = TraceRecorder::new(1, 64); // batch = BATCH = 16
        for v in 0..40u64 {
            assert!(rec.record(0, v));
        }
        // Two full batches published without any flush; the partial third
        // batch needs one.
        let mut merger = EventMerger::new(1);
        assert_eq!(rec.drain_into(&mut merger), 32);
        rec.flush(0);
        assert_eq!(rec.drain_into(&mut merger), 8);
        merger.finish(0);
        let mut events: Vec<OpEvent> = Vec::new();
        merger.drain_into(&mut events);
        assert_eq!(events.len(), 40);
        // Every op in a batch carries the batch's boundary interval...
        let first = &events[0];
        assert!(events[..16]
            .iter()
            .all(|e| e.enter_ns == first.enter_ns && e.exit_ns == first.exit_ns));
        // ...so in-batch ops mutually overlap, and adjacent batches meet at
        // the shared boundary instant, which reads as overlap — the
        // widening never fabricates a precedence.
        assert!(events[0].overlaps(&events[15]));
        assert_eq!(events[16].enter_ns, events[0].exit_ns);
        assert!(!events[0].completely_precedes(&events[16]));
        // Batches separated by a full intervening batch do order.
        assert!(events[0].completely_precedes(&events[39]));
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let rec = TraceRecorder::new(1, 2); // capacity 2, batch 2
        assert!(rec.record(0, 0));
        assert!(rec.record(0, 1)); // full batch, auto-published
        assert!(!rec.record(0, 2)); // full
        assert_eq!(rec.dropped(), 1);
        // Draining frees the ring for further events.
        let mut merger = EventMerger::new(1);
        assert_eq!(rec.drain_into(&mut merger), 2);
        assert!(rec.record(0, 3));
        rec.flush(0);
        rec.drain_into(&mut merger);
        merger.finish(0);
        let mut out: Vec<OpEvent> = Vec::new();
        merger.drain_into(&mut out);
        let values: Vec<u64> = out.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![0, 1, 3]); // 2 was dropped
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let rec = TraceRecorder::new(1, 1000);
        assert_eq!(rec.capacity(), 1024);
        assert_eq!(TraceRecorder::new(3, 1).shards(), 3);
    }

    #[test]
    fn traced_fetch_add_audits_clean_live() {
        let threads = 4;
        let per_thread = 500;
        let recorder = Arc::new(TraceRecorder::new(threads, per_thread));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let mut progress_calls = 0usize;
        let run = drive_audited(
            &counter,
            &recorder,
            Workload { threads, increments_per_thread: per_thread },
            |_| progress_calls += 1,
        );
        assert_eq!(run.recorded, threads * per_thread);
        assert_eq!(run.dropped, 0);
        assert!(progress_calls >= 1);
        // A fetch-and-add word under a monotone global clock audits clean:
        // recorded intervals only widen the true ones, so a recorded
        // precedence is a real-time precedence, which implies the earlier
        // op's fetch_add happened first, hence the smaller value.
        assert!(run.auditor.is_linearizable());
        assert!(run.auditor.is_sequentially_consistent());
        assert_eq!(run.auditor.f_nl(), 0.0);
        assert_eq!(run.auditor.f_nsc(), 0.0);
    }

    #[test]
    fn audited_run_with_idle_threads_still_flushes() {
        // More shards than threads: idle shards must not block the merger.
        let recorder = Arc::new(TraceRecorder::new(6, 64));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited(
            &counter,
            &recorder,
            Workload { threads: 2, increments_per_thread: 50 },
            |_| {},
        );
        assert_eq!(run.recorded, 100);
        assert!(run.auditor.is_linearizable());
    }

    #[test]
    fn overflow_during_audited_run_is_reported_not_fatal() {
        // Tiny rings with a workload far beyond them: drops are counted,
        // the run completes, and what was recorded still audits.
        let recorder = Arc::new(TraceRecorder::new(2, 4));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited(
            &counter,
            &recorder,
            Workload { threads: 2, increments_per_thread: 2000 },
            |_| {},
        );
        assert_eq!(run.recorded as u64 + run.dropped, 4000);
        assert!(run.auditor.is_sequentially_consistent());
    }
}
