//! The always-on trace recorder: per-thread sharded ring buffers that
//! capture every increment at a cost small enough to leave hot-path
//! throughput intact, drained off the hot path into the online monitors.
//!
//! # Design
//!
//! * **One shard per thread.** Each worker writes only its own ring, so
//!   the hot path takes no locks and contends on no shared word. A shard's
//!   `head`/`tail` indices sit on their own cache lines
//!   ([`cnet_util::sync::CachePadded`]), and the writer keeps a **cached
//!   copy of `tail`** on its private line, refreshed only when the ring
//!   looks full — in the steady state the hot path never touches the cache
//!   line the drainer writes.
//! * **Batched boundary timestamps, stored once per batch.** Reading the
//!   cycle counter costs more than the whole ring write (tens of cycles,
//!   and far more under virtualization), so the recorder does not stamp
//!   every operation. It takes one raw [`cnet_util::time::raw_ticks`]
//!   reading per *batch* of [`BATCH`] operations, at the batch boundary,
//!   and every operation in the batch carries the interval
//!   `[previous boundary stamp, this boundary stamp]`. The stamp pair is
//!   written **once**, into a per-publish side ring ([`StampEntry`]) the
//!   drainer joins against by slot index — the slots themselves hold only
//!   the 8-byte value, so a publish is three stores instead of two per
//!   slot, and a batch of values spans an eighth of the cache lines the
//!   old three-word slots did. Both ends of the recorded interval only
//!   ever *widen* the true interval (the batch's first operation enters
//!   after the previous boundary; its last exits before the next), so
//!   every real-time precedence the monitors derive from recorded events
//!   is a genuine precedence — widening can hide a violation that fits
//!   inside one batch span (≈ `BATCH` operation latencies, about a
//!   microsecond), never fabricate one. The scheduling pathologies that
//!   produce real violations hold operations open across preemptions,
//!   orders of magnitude longer than a batch.
//! * **Raw ticks on the hot path.** Conversion to nanoseconds through the
//!   calibrated [`Clock`] happens at drain time, off the measured path.
//! * **Sound 1-in-k sampling.** A recorder built
//!   [`with_sampling`](TraceRecorder::with_sampling) records every k-th
//!   operation per shard and merely counts the rest
//!   ([`skipped`](TraceRecorder::skipped)). Sampled operations flow
//!   through the same batched publish as full recording — one stamp pair
//!   per [`BATCH`] *samples* — and a sampled batch's boundary interval
//!   `[previous boundary stamp, next boundary stamp]` covers every
//!   skipped operation between its samples too: the recorded bounds only
//!   ever widen the truth, again pure widening. A violation reported
//!   from a sampled trace is therefore always real; sampling can only
//!   *miss* violations among the unrecorded operations (or inside the
//!   `sample_k ×` wider batch span), never fabricate one.
//! * **Overflow drops, never blocks.** A full ring counts the event in
//!   [`TraceRecorder::dropped`] (per shard:
//!   [`dropped_on`](TraceRecorder::dropped_on)) and moves on — recording
//!   must never throttle the counter it observes. Size rings to the
//!   workload (`capacity ≥ increments per thread` guarantees zero drops).
//! * **Per-shard pull.** [`pull_shard`](TraceRecorder::pull_shard) drains
//!   one ring with that shard's private cursor, so P audit workers can
//!   steal from disjoint shards concurrently (the single-writer invariant
//!   holds per shard on both sides: one recording writer, one pulling
//!   reader). [`drain_each`](TraceRecorder::drain_each) /
//!   [`drain_into`](TraceRecorder::drain_into) are the sequential
//!   all-shards forms built on it.
//!
//! [`drive_audited`] ties it together sequentially; [`drive_audited_parallel`]
//! is the sharded pipeline: workers hammer a counter wrapped with a
//! recorder ([`Traced`], or the `with_recorder` constructors on
//! [`crate::SharedNetworkCounter`] / [`crate::DiffractingTree`]) while
//! audit workers steal shards in place through [`ShardMonitor`]s and a
//! [`MergeAuditor`] folds their frontiers at epoch boundaries —
//! consistency verdicts and Section 5.1 fractions, live, while the run
//! executes.

use crate::{ProcessCounter, Workload};
use cnet_core::trace::{
    EventMerger, MergeAuditor, OpSink, RawOp, ShardFrontier, ShardMonitor, StreamingAuditor,
};
use cnet_util::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use cnet_util::sync::CachePadded;
use cnet_util::time::{raw_ticks, Clock};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Operations per timestamp batch: one cycle-counter read amortized over
/// this many events (capped at the ring capacity for tiny rings).
pub const BATCH: usize = 64;

/// One ring slot: just the value. The timestamp interval lives in the
/// per-publish [`StampEntry`] ring.
#[derive(Debug)]
struct Slot {
    value: AtomicU64,
}

/// One batch boundary: the raw-tick interval shared by every slot index
/// below `upto` not covered by an earlier entry. Written once per publish
/// (entry `k` of a shard lives at ring index `k & mask`; entry `k` can
/// only be overwritten by entry `k + capacity`, which the writer reaches
/// only after the ring's fullness check has proven entry `k`'s slots —
/// hence the entry itself — fully consumed).
#[derive(Debug)]
struct StampEntry {
    /// One past the last slot index this stamp covers (absolute index).
    upto: AtomicUsize,
    enter: AtomicU64,
    exit: AtomicU64,
}

/// The shard's writer-private state (its own cache line: the hot path
/// touches nothing shared in the steady state).
#[derive(Debug)]
struct WriterState {
    /// The absolute index of the next slot to write (events published
    /// plus events written but not yet published). The hot path touches
    /// only this and [`limit`](Self::limit) — one private cache line.
    wcur: AtomicUsize,
    /// The next index where [`TraceRecorder::record`]'s fast path must
    /// yield to the edge path: the last slot of the current batch
    /// (publish there) or the ring-fullness point `cached_tail +
    /// capacity` (refresh or drop there), whichever comes first. Writing
    /// any slot strictly below `limit` is proven safe by the last edge
    /// pass, so the fast path is two same-line loads, a compare, and two
    /// stores.
    limit: AtomicUsize,
    /// The shard's last batch-boundary stamp: the enter bound of every
    /// event in the batch being accumulated.
    last_stamp: AtomicU64,
    /// The writer's view of `tail`, refreshed (with an acquire load of the
    /// real thing) only when the ring looks full. `tail` only advances, so
    /// a stale cache is conservative: it can cause a spurious refresh,
    /// never an overwrite.
    cached_tail: AtomicUsize,
    /// Publishes so far (the next [`StampEntry`] index).
    stamp_head: AtomicUsize,
    /// Operations seen since the last sampled one (sampling mode only).
    sample_ctr: AtomicUsize,
    /// Operations deliberately not recorded by sampling.
    skipped: AtomicU64,
}

/// The shard's drainer-private cursors (one line; written only by whoever
/// currently pulls this shard).
#[derive(Debug)]
struct DrainState {
    /// Last drained enter time: clamps the (theoretically impossible, on
    /// sane TSCs) regression so the merger's per-shard ordering invariant
    /// holds unconditionally.
    last_enter_ns: AtomicU64,
    /// The stamp entry covering the next slot to consume.
    stamp_tail: AtomicUsize,
}

/// One single-writer, single-puller ring.
#[derive(Debug)]
struct Shard {
    /// Events published (written only by the shard's owning thread).
    head: CachePadded<AtomicUsize>,
    /// Events consumed (written only by the shard's puller).
    tail: CachePadded<AtomicUsize>,
    /// Events lost to a full ring.
    dropped: CachePadded<AtomicU64>,
    wr: CachePadded<WriterState>,
    dr: CachePadded<DrainState>,
    slots: Box<[Slot]>,
    stamps: Box<[StampEntry]>,
}

/// The sharded ring-buffer recorder (see module docs). Writers call
/// [`record`](Self::record) (one thread per shard); pullers call
/// [`pull_shard`](Self::pull_shard) (at most one thread per shard at a
/// time — different shards may be pulled concurrently). All methods take
/// `&self`, so a recorder can be shared (`Arc`) between the counter that
/// writes it and the audit workers that steal from it.
#[derive(Debug)]
pub struct TraceRecorder {
    clock: Clock,
    shards: Box<[Shard]>,
    mask: usize,
    /// Effective batch size: `min(BATCH, capacity)`.
    batch: usize,
    /// Record every `sample_k`-th operation (1 = record everything).
    sample_k: usize,
}

impl TraceRecorder {
    /// A recorder with `shards` rings of at least `capacity` events each
    /// (rounded up to a power of two). Each shard must be written by at
    /// most one thread at a time; shard `s` is reported as process `s`.
    pub fn new(shards: usize, capacity: usize) -> TraceRecorder {
        Self::with_sampling(shards, capacity, 1)
    }

    /// Like [`new`](Self::new), but records only one in `sample_k`
    /// operations per shard (see the module docs for why the widened
    /// intervals stay sound). `sample_k == 1` records everything; `0` is
    /// treated as 1.
    pub fn with_sampling(shards: usize, capacity: usize, sample_k: usize) -> TraceRecorder {
        let cap = capacity.max(2).next_power_of_two();
        let batch = BATCH.min(cap);
        let stride = sample_k.max(1);
        let clock = Clock::new();
        let origin = raw_ticks();
        let make_shard = || Shard {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
            wr: CachePadded::new(WriterState {
                wcur: AtomicUsize::new(0),
                // First edge at the slot completing the first batch (or at
                // fullness, if the ring is a single batch deep).
                limit: AtomicUsize::new((batch - 1).min(cap - 1)),
                last_stamp: AtomicU64::new(origin),
                cached_tail: AtomicUsize::new(0),
                stamp_head: AtomicUsize::new(0),
                // Countdown of skips left before the next sample, so the
                // first sample lands on the `stride`-th operation.
                sample_ctr: AtomicUsize::new(stride - 1),
                skipped: AtomicU64::new(0),
            }),
            dr: CachePadded::new(DrainState {
                last_enter_ns: AtomicU64::new(0),
                stamp_tail: AtomicUsize::new(0),
            }),
            slots: (0..cap).map(|_| Slot { value: AtomicU64::new(0) }).collect(),
            stamps: (0..cap)
                .map(|_| StampEntry {
                    upto: AtomicUsize::new(0),
                    enter: AtomicU64::new(0),
                    exit: AtomicU64::new(0),
                })
                .collect(),
        };
        TraceRecorder {
            clock,
            shards: (0..shards).map(|_| make_shard()).collect(),
            mask: cap - 1,
            batch,
            sample_k: stride,
        }
    }

    /// The number of shards (the maximum worker count).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Ring capacity per shard, in events.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// The sampling stride: 1 records everything, `k` records one in `k`.
    pub fn sample_k(&self) -> usize {
        self.sample_k
    }

    /// Records one completed operation on `shard` (its timestamp interval
    /// is the enclosing batch's boundary interval; see module docs).
    /// Returns `false` (and counts a drop) if the ring is full; a
    /// sampling-skipped operation returns `true` without touching the
    /// ring. The caller must be the shard's only concurrent writer.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[inline]
    pub fn record(&self, shard: usize, value: u64) -> bool {
        let s = &self.shards[shard];
        if self.sample_k > 1 {
            // Countdown-only skip path: one load, one store. The skip
            // *accounting* is folded in per window by `credit_window`, so
            // always-on sampling costs almost nothing per skipped op.
            let c = s.wr.sample_ctr.load(Ordering::Relaxed);
            if c != 0 {
                s.wr.sample_ctr.store(c - 1, Ordering::Relaxed);
                return true;
            }
            self.credit_window(s, 0);
            // The sampled op falls through to the batched path below: its
            // batch's boundary interval [previous boundary stamp, next
            // boundary stamp] covers every skipped op between the batch's
            // samples too, so one stamp pair per BATCH *samples* keeps
            // sampling sound at full-recording cost.
        }
        let w = s.wr.wcur.load(Ordering::Relaxed);
        if w != s.wr.limit.load(Ordering::Relaxed) {
            // Below the limit the last edge pass already proved slot `w`
            // is free (the tail only advances) and the batch is not yet
            // complete: write and bump, nothing else. Indexing through
            // `len - 1` (== `self.mask`) lets the compiler drop the bounds
            // check: `x & (len - 1) < len` for any `x`.
            let slots = &*s.slots;
            slots[w & (slots.len() - 1)].value.store(value, Ordering::Relaxed);
            s.wr.wcur.store(w.wrapping_add(1), Ordering::Relaxed);
            return true;
        }
        self.record_edge(s, w, value)
    }

    /// The slow half of [`record`](Self::record): `w` sits on the current
    /// `limit`, i.e. it either completes a batch (publish after writing
    /// it) or hits the ring-fullness point (refresh the tail; drop if
    /// still full).
    #[cold]
    fn record_edge(&self, s: &Shard, w: usize, value: u64) -> bool {
        let mut tail = s.wr.cached_tail.load(Ordering::Relaxed);
        if w.wrapping_sub(tail) > self.mask {
            // Apparently full. The cached tail only ever lags the real one,
            // so refresh and re-check before declaring a drop.
            tail = s.tail.load(Ordering::Acquire);
            s.wr.cached_tail.store(tail, Ordering::Relaxed);
            if w.wrapping_sub(tail) > self.mask {
                s.dropped.fetch_add(1, Ordering::Relaxed);
                // Stay on the edge: every further op re-checks fullness
                // until the puller frees a slot.
                s.wr.limit.store(w, Ordering::Relaxed);
                return false;
            }
        }
        s.slots[w & self.mask].value.store(value, Ordering::Relaxed);
        let w = w.wrapping_add(1);
        s.wr.wcur.store(w, Ordering::Relaxed);
        let mut head = s.head.load(Ordering::Relaxed);
        if w.wrapping_sub(head) >= self.batch {
            // The op just written completes the batch, so the stamp taken
            // inside `publish` post-dates every op it covers.
            self.publish(s, head, w.wrapping_sub(head));
            head = w;
        }
        self.reset_limit(s, w, head, tail);
        true
    }

    /// Settles a sampling window that just ended with `c` skips still
    /// outstanding (`c == 0` when it ran to its sample; more when a batch
    /// write or a flush cut it short): credits the `sample_k - 1 - c`
    /// skips that actually happened and starts a fresh window. Keeping the
    /// accounting here — one store per *window* — lets the per-skip path
    /// in [`record`](Self::record) stay a bare countdown.
    fn credit_window(&self, s: &Shard, c: usize) {
        s.wr.skipped.store(
            s.wr.skipped.load(Ordering::Relaxed) + (self.sample_k - 1 - c) as u64,
            Ordering::Relaxed,
        );
        s.wr.sample_ctr.store(self.sample_k - 1, Ordering::Relaxed);
    }

    /// Recomputes the writer's `limit` after an edge, flush, or batch
    /// write: the earlier (in wrap-safe distance from `w`) of the slot
    /// completing the current batch and the ring-fullness point.
    fn reset_limit(&self, s: &Shard, w: usize, head: usize, tail: usize) {
        let boundary = head.wrapping_add(self.batch - 1);
        let full = tail.wrapping_add(self.mask + 1);
        let limit = if boundary.wrapping_sub(w) <= full.wrapping_sub(w) { boundary } else { full };
        s.wr.limit.store(limit, Ordering::Relaxed);
    }

    /// Records a whole batch of completed operations on `shard` with **one
    /// boundary stamp pair for the entire batch**, publishing immediately.
    /// Returns how many of the values were recorded (the rest, if the ring
    /// fills, are counted as drops). Under sampling, whole batches are
    /// sampled at the same 1-in-`sample_k` *operation* rate (a skipped
    /// batch counts all its operations as skipped). The caller must be the
    /// shard's only concurrent writer.
    ///
    /// Soundness is the same widening argument as the per-[`BATCH`]
    /// stamping (see module docs): every operation in the batch entered
    /// after the shard's previous boundary stamp and exited before the
    /// `raw_ticks` reading taken here, so the recorded interval only
    /// widens the true one and a recorded precedence is always a genuine
    /// real-time precedence. Any singles still pending from
    /// [`record`](Self::record) are published under the same stamp pair —
    /// again a pure widening, since they too completed inside it.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn record_batch(&self, shard: usize, values: &[u64]) -> usize {
        let s = &self.shards[shard];
        if self.sample_k > 1 {
            let c = s.wr.sample_ctr.load(Ordering::Relaxed);
            if values.len() <= c {
                // The whole batch fits in the window's remaining skips.
                s.wr.sample_ctr.store(c - values.len(), Ordering::Relaxed);
                return 0;
            }
            // The batch reaches the window's sample point: record it all
            // and settle the cut-short window's skip count.
            self.credit_window(s, c);
        }
        let head = s.head.load(Ordering::Relaxed);
        let mut w = s.wr.wcur.load(Ordering::Relaxed);
        let mut tail = s.wr.cached_tail.load(Ordering::Relaxed);
        if w.wrapping_add(values.len()).wrapping_sub(tail) > self.mask + 1 {
            tail = s.tail.load(Ordering::Acquire);
            s.wr.cached_tail.store(tail, Ordering::Relaxed);
        }
        let used = w.wrapping_sub(tail);
        let room = (self.mask + 1) - used;
        let recorded = values.len().min(room);
        if recorded < values.len() {
            s.dropped.fetch_add((values.len() - recorded) as u64, Ordering::Relaxed);
        }
        for &value in &values[..recorded] {
            s.slots[w & self.mask].value.store(value, Ordering::Relaxed);
            w = w.wrapping_add(1);
        }
        s.wr.wcur.store(w, Ordering::Relaxed);
        if w != head {
            self.publish(s, head, w.wrapping_sub(head));
        }
        self.reset_limit(s, w, w, tail);
        recorded
    }

    /// Stamps and publishes the shard's pending batch: one stamp entry,
    /// then the release store of `head`.
    fn publish(&self, s: &Shard, head: usize, pending: usize) {
        let now = raw_ticks();
        let enter = s.wr.last_stamp.load(Ordering::Relaxed);
        let new_head = head.wrapping_add(pending);
        let si = s.wr.stamp_head.load(Ordering::Relaxed);
        let entry = &s.stamps[si & self.mask];
        entry.upto.store(new_head, Ordering::Relaxed);
        entry.enter.store(enter, Ordering::Relaxed);
        entry.exit.store(now, Ordering::Relaxed);
        s.wr.stamp_head.store(si.wrapping_add(1), Ordering::Relaxed);
        s.wr.last_stamp.store(now, Ordering::Relaxed);
        s.head.store(new_head, Ordering::Release);
    }

    /// Publishes `shard`'s partial batch, if any. Must be called by the
    /// shard's writing thread, or after that thread has quiesced (e.g.
    /// been joined) — never concurrently with its [`record`](Self::record)
    /// calls.
    pub fn flush(&self, shard: usize) {
        let s = &self.shards[shard];
        if self.sample_k > 1 {
            // Settle the in-progress sampling window so `skipped` is exact
            // at every quiesce point; the next record starts a new window.
            let c = s.wr.sample_ctr.load(Ordering::Relaxed);
            self.credit_window(s, c);
        }
        let head = s.head.load(Ordering::Relaxed);
        let w = s.wr.wcur.load(Ordering::Relaxed);
        if w != head {
            self.publish(s, head, w.wrapping_sub(head));
            self.reset_limit(s, w, w, s.wr.cached_tail.load(Ordering::Relaxed));
        }
    }

    /// Total events lost to full rings so far.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Events lost to overflow on one shard.
    pub fn dropped_on(&self, shard: usize) -> u64 {
        self.shards[shard].dropped.load(Ordering::Relaxed)
    }

    /// Total events skipped by sampling so far.
    pub fn skipped(&self) -> u64 {
        self.shards.iter().map(|s| s.wr.skipped.load(Ordering::Relaxed)).sum()
    }

    /// Events skipped by sampling on one shard.
    pub fn skipped_on(&self, shard: usize) -> u64 {
        self.shards[shard].wr.skipped.load(Ordering::Relaxed)
    }

    /// Moves every currently-published event out of **one** shard's ring
    /// into a callback `(enter_ns, exit_ns, value)`, in record order with
    /// nondecreasing enter times, converting raw ticks to nanoseconds.
    /// Returns how many events moved.
    ///
    /// This is the audit workers' steal API: each shard has its own
    /// cursors, so different shards may be pulled by different threads
    /// concurrently — but at most one thread may pull a given shard at a
    /// time.
    pub fn pull_shard(&self, shard: usize, mut f: impl FnMut(u64, u64, u64)) -> usize {
        let s = &self.shards[shard];
        let head = s.head.load(Ordering::Acquire);
        let mut tail = s.tail.load(Ordering::Relaxed);
        if tail == head {
            return 0;
        }
        let mut st = s.dr.stamp_tail.load(Ordering::Relaxed);
        let mut last_enter = s.dr.last_enter_ns.load(Ordering::Relaxed);
        let mut moved = 0;
        // The entry covering a slot `t < head` always exists and was
        // published before `head` moved past `t`, so these relaxed reads
        // are ordered by the acquire load of `head` above; the fullness
        // check keeps the writer from reusing any entry whose slots are
        // not yet consumed (see `StampEntry`).
        let mut entry = &s.stamps[st & self.mask];
        let mut upto = entry.upto.load(Ordering::Relaxed);
        while tail != head {
            while upto <= tail {
                st = st.wrapping_add(1);
                entry = &s.stamps[st & self.mask];
                upto = entry.upto.load(Ordering::Relaxed);
            }
            // Clamp so per-shard enters never regress and intervals stay
            // well-formed even under TSC pathologies.
            let enter_ns = self.clock.raw_to_ns(entry.enter.load(Ordering::Relaxed));
            let enter_ns = enter_ns.max(last_enter);
            let exit_ns = self.clock.raw_to_ns(entry.exit.load(Ordering::Relaxed)).max(enter_ns);
            last_enter = enter_ns;
            while tail != head && tail != upto {
                let value = s.slots[tail & self.mask].value.load(Ordering::Relaxed);
                f(enter_ns, exit_ns, value);
                tail = tail.wrapping_add(1);
                moved += 1;
            }
        }
        // Step past an exactly-exhausted covering entry *before* the tail
        // store makes it reusable to the writer: afterwards `stamp_tail`
        // only ever names an entry the writer cannot touch.
        if upto == tail {
            st = st.wrapping_add(1);
        }
        s.dr.stamp_tail.store(st, Ordering::Relaxed);
        s.dr.last_enter_ns.store(last_enter, Ordering::Relaxed);
        s.tail.store(tail, Ordering::Release);
        moved
    }

    /// Moves every currently-published event out of the rings into the
    /// merger (shard `s` feeds merger shard `s` as process `s`),
    /// converting raw ticks to nanoseconds. Returns how many events moved.
    /// Call from one drainer thread at a time.
    ///
    /// # Panics
    ///
    /// Panics if the merger has fewer shards than the recorder.
    pub fn drain_into(&self, merger: &mut EventMerger) -> usize {
        self.drain_each(|si, enter_ns, exit_ns, value| {
            merger.push(si, RawOp { process: si, enter_ns, exit_ns, value });
        })
    }

    /// Moves every currently-published event out of the rings into a
    /// callback `(shard, enter_ns, exit_ns, value)`, in per-shard record
    /// order with nondecreasing enter times per shard — the raw form a
    /// cluster node serves over the wire so the *fetching* side can do
    /// the global merge. Returns how many events moved. Call from one
    /// drainer thread at a time (or use [`pull_shard`](Self::pull_shard)
    /// for per-shard concurrency).
    pub fn drain_each(&self, mut f: impl FnMut(usize, u64, u64, u64)) -> usize {
        let mut moved = 0;
        for si in 0..self.shards.len() {
            moved += self.pull_shard(si, |enter_ns, exit_ns, value| {
                f(si, enter_ns, exit_ns, value);
            });
        }
        moved
    }
}

/// Wraps any [`ProcessCounter`] so every operation is recorded: process
/// `p`'s operations land in shard `p` of the recorder (so `p` must stay
/// below [`TraceRecorder::shards`], with one thread per process).
#[derive(Debug)]
pub struct Traced<C> {
    inner: C,
    recorder: Arc<TraceRecorder>,
}

impl<C: ProcessCounter> Traced<C> {
    /// Wraps `inner` with `recorder`.
    pub fn new(inner: C, recorder: Arc<TraceRecorder>) -> Traced<C> {
        Traced { inner, recorder }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The recorder operations land in.
    pub fn recorder(&self) -> &Arc<TraceRecorder> {
        &self.recorder
    }
}

impl<C: ProcessCounter> ProcessCounter for Traced<C> {
    fn next_for(&self, process: usize) -> u64 {
        let value = self.inner.next_for(process);
        self.recorder.record(process, value);
        value
    }

    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        let values = self.inner.next_batch_for(process, n);
        self.recorder.record_batch(process, &values);
        values
    }
}

/// The outcome of an audited run: the auditor (verdicts, witnesses,
/// fractions) plus the recording bookkeeping.
#[derive(Debug)]
pub struct AuditedRun {
    /// The auditor after consuming the whole merged stream.
    pub auditor: StreamingAuditor,
    /// Events that reached the auditor.
    pub recorded: usize,
    /// Events lost to full rings (0 when `capacity ≥ increments per
    /// thread`).
    pub dropped: u64,
}

/// Runs `workload` against a counter that records into `recorder` (wrap it
/// with [`Traced`] or build it `with_recorder`), draining the rings into a
/// [`StreamingAuditor`] **while the workers run**. `on_progress` fires
/// after each non-empty drain with the auditor's running state.
///
/// # Panics
///
/// Panics if the recorder has fewer shards than the workload has threads
/// (two threads would share a ring, breaking the single-writer contract).
pub fn drive_audited<C: ProcessCounter>(
    counter: &C,
    recorder: &TraceRecorder,
    workload: Workload,
    mut on_progress: impl FnMut(&StreamingAuditor),
) -> AuditedRun {
    assert!(
        recorder.shards() >= workload.threads,
        "recorder has {} shards for {} threads",
        recorder.shards(),
        workload.threads
    );
    let shards = recorder.shards();
    let mut merger = EventMerger::new(shards);
    let mut auditor = StreamingAuditor::new();
    let finished = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..workload.threads {
            let finished = &finished;
            s.spawn(move || {
                for _ in 0..workload.increments_per_thread {
                    counter.next_for(p);
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        loop {
            let done = finished.load(Ordering::Acquire) == workload.threads;
            if recorder.drain_into(&mut merger) > 0 {
                merger.drain_into(&mut auditor);
                on_progress(&auditor);
            }
            if done {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    });
    // Workers are joined: publish every partial batch, collect the stream,
    // then release the merger's watermarks (finished shards no longer
    // constrain release).
    for sh in 0..shards {
        recorder.flush(sh);
    }
    recorder.drain_into(&mut merger);
    for sh in 0..shards {
        merger.finish(sh);
    }
    merger.drain_into(&mut auditor);
    let recorded = auditor.operations();
    AuditedRun { auditor, recorded, dropped: recorder.dropped() }
}

/// The outcome of a parallel audited run: the merged auditor (exact global
/// verdict plus per-shard partial verdicts) and the recording bookkeeping.
#[derive(Debug)]
pub struct ParallelAuditedRun {
    /// The merged auditor after every frontier has been folded in.
    pub auditor: MergeAuditor,
    /// Events that reached the exact auditor.
    pub recorded: usize,
    /// Events lost to full rings.
    pub dropped: u64,
    /// Events skipped by the sampling mode.
    pub skipped: u64,
}

/// The sharded audit pipeline: runs `workload` against a counter that
/// records into `recorder` while `audit_threads` workers steal ring shards
/// **in place** — each owns a disjoint set of shards, consumes them
/// through per-shard [`ShardMonitor`]s (local partial verdicts, no global
/// merge on the steal path), and hands frontiers to a shared
/// [`MergeAuditor`] at epoch boundaries. The merged verdict is exactly the
/// sequential auditor's. `on_progress` fires from the driving thread as
/// the merged operation count grows.
///
/// # Panics
///
/// Panics if the recorder has fewer shards than the workload has threads.
pub fn drive_audited_parallel<C: ProcessCounter>(
    counter: &C,
    recorder: &TraceRecorder,
    workload: Workload,
    audit_threads: usize,
    mut on_progress: impl FnMut(&MergeAuditor),
) -> ParallelAuditedRun {
    assert!(
        recorder.shards() >= workload.threads,
        "recorder has {} shards for {} threads",
        recorder.shards(),
        workload.threads
    );
    let shards = recorder.shards();
    let stealers = audit_threads.clamp(1, shards);
    let shared = Mutex::new(MergeAuditor::new(shards));
    let writers_done = AtomicUsize::new(0);
    let quiesced = AtomicBool::new(false);
    std::thread::scope(|s| {
        for p in 0..workload.threads {
            let writers_done = &writers_done;
            s.spawn(move || {
                for _ in 0..workload.increments_per_thread {
                    counter.next_for(p);
                }
                // The writer flushes its own shard before signalling: by
                // the time the quiesce flag rises, everything is published.
                recorder.flush(p);
                writers_done.fetch_add(1, Ordering::Release);
            });
        }
        for t in 0..stealers {
            let shared = &shared;
            let quiesced = &quiesced;
            s.spawn(move || {
                let mut mons: Vec<ShardMonitor> =
                    (t..shards).step_by(stealers).map(ShardMonitor::new).collect();
                let mut acct = vec![(0u64, 0u64); mons.len()];
                loop {
                    let done = quiesced.load(Ordering::Acquire);
                    let mut pulled = 0;
                    for (mon, acct) in mons.iter_mut().zip(acct.iter_mut()) {
                        let sh = mon.shard();
                        pulled += recorder.pull_shard(sh, |enter_ns, exit_ns, value| {
                            mon.observe(RawOp { process: sh, enter_ns, exit_ns, value });
                        });
                        let totals = (recorder.dropped_on(sh), recorder.skipped_on(sh));
                        mon.add_dropped(totals.0 - acct.0);
                        mon.add_skipped(totals.1 - acct.1);
                        *acct = totals;
                    }
                    if pulled > 0 || done {
                        let mut merged = shared.lock().expect("audit mutex");
                        for mon in &mut mons {
                            if mon.buffered() > 0 || done {
                                merged.ingest(mon.take_frontier(done));
                            }
                        }
                    }
                    if done {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            });
        }
        let mut last = 0usize;
        loop {
            let done = writers_done.load(Ordering::Acquire) == workload.threads;
            if done {
                quiesced.store(true, Ordering::Release);
                break;
            }
            {
                let merged = shared.lock().expect("audit mutex");
                if merged.operations() > last {
                    last = merged.operations();
                    on_progress(&merged);
                }
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    });
    let mut auditor = shared.into_inner().expect("audit mutex");
    auditor.merge();
    ParallelAuditedRun {
        recorded: auditor.operations(),
        dropped: auditor.dropped(),
        skipped: auditor.skipped(),
        auditor,
    }
}

/// Flushes partial batches and drains whatever remains in `recorder` into
/// an arbitrary sink, merging shards in enter order (a convenience for
/// post-run, non-live auditing — all writers must have quiesced).
pub fn drain_remaining(recorder: &TraceRecorder, sink: &mut impl OpSink) -> usize {
    let mut merger = EventMerger::new(recorder.shards());
    for sh in 0..recorder.shards() {
        recorder.flush(sh);
    }
    recorder.drain_into(&mut merger);
    for sh in 0..recorder.shards() {
        merger.finish(sh);
    }
    merger.drain_into(sink)
}

/// Flushes and drains whatever remains in `recorder` through `threads`
/// parallel shard stealers into a [`MergeAuditor`] (all writers must have
/// quiesced). Each stealer owns a disjoint shard set and builds one
/// [`ShardFrontier`] per shard; the frontiers fold into the returned
/// auditor, whose verdict is exactly the sequential one.
pub fn drain_remaining_parallel(recorder: &TraceRecorder, threads: usize) -> MergeAuditor {
    let shards = recorder.shards();
    for sh in 0..shards {
        recorder.flush(sh);
    }
    let threads = threads.clamp(1, shards.max(1));
    let frontiers: Vec<ShardFrontier> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for sh in (t..shards).step_by(threads) {
                        let mut mon = ShardMonitor::new(sh);
                        recorder.pull_shard(sh, |enter_ns, exit_ns, value| {
                            mon.observe(RawOp { process: sh, enter_ns, exit_ns, value });
                        });
                        mon.add_dropped(recorder.dropped_on(sh));
                        mon.add_skipped(recorder.skipped_on(sh));
                        out.push(mon.take_frontier(true));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("stealer panicked")).collect()
    });
    let mut merged = MergeAuditor::new(shards);
    for f in frontiers {
        merged.ingest(f);
    }
    merged.merge();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FetchAddCounter;
    use cnet_core::trace::OpEvent;

    #[test]
    fn record_and_drain_round_trip() {
        let rec = TraceRecorder::new(2, 8);
        assert!(rec.record(0, 0));
        assert!(rec.record(0, 2));
        assert!(rec.record(1, 1));
        let mut events: Vec<OpEvent> = Vec::new();
        let n = drain_remaining(&rec, &mut events);
        assert_eq!(n, 3);
        // Globally enter-ordered; shard index is the process.
        assert!(events.windows(2).all(|w| w[0].enter_key() <= w[1].enter_key()));
        let mine: Vec<u64> =
            events.iter().filter(|e| e.process == 0).map(|e| e.value).collect();
        assert_eq!(mine, vec![0, 2]);
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.skipped(), 0);
    }

    #[test]
    fn batches_share_boundary_intervals() {
        let total = 2 * BATCH + BATCH / 2;
        let rec = TraceRecorder::new(1, 4 * BATCH);
        for v in 0..total as u64 {
            assert!(rec.record(0, v));
        }
        // Two full batches published without any flush; the partial third
        // batch needs one.
        let mut merger = EventMerger::new(1);
        assert_eq!(rec.drain_into(&mut merger), 2 * BATCH);
        rec.flush(0);
        assert_eq!(rec.drain_into(&mut merger), BATCH / 2);
        merger.finish(0);
        let mut events: Vec<OpEvent> = Vec::new();
        merger.drain_into(&mut events);
        assert_eq!(events.len(), total);
        // Every op in a batch carries the batch's boundary interval...
        let first = &events[0];
        assert!(events[..BATCH]
            .iter()
            .all(|e| e.enter_ns == first.enter_ns && e.exit_ns == first.exit_ns));
        // ...so in-batch ops mutually overlap, and adjacent batches meet at
        // the shared boundary instant, which reads as overlap — the
        // widening never fabricates a precedence.
        assert!(events[0].overlaps(&events[BATCH - 1]));
        assert_eq!(events[BATCH].enter_ns, events[0].exit_ns);
        assert!(!events[0].completely_precedes(&events[BATCH]));
        // Batches separated by a full intervening batch do order.
        assert!(events[0].completely_precedes(&events[total - 1]));
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let rec = TraceRecorder::new(1, 2); // capacity 2, batch 2
        assert!(rec.record(0, 0));
        assert!(rec.record(0, 1)); // full batch, auto-published
        assert!(!rec.record(0, 2)); // full
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.dropped_on(0), 1);
        // Draining frees the ring for further events.
        let mut merger = EventMerger::new(1);
        assert_eq!(rec.drain_into(&mut merger), 2);
        assert!(rec.record(0, 3));
        rec.flush(0);
        rec.drain_into(&mut merger);
        merger.finish(0);
        let mut out: Vec<OpEvent> = Vec::new();
        merger.drain_into(&mut out);
        let values: Vec<u64> = out.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![0, 1, 3]); // 2 was dropped
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let rec = TraceRecorder::new(1, 1000);
        assert_eq!(rec.capacity(), 1024);
        assert_eq!(TraceRecorder::new(3, 1).shards(), 3);
    }

    #[test]
    fn stamp_ring_survives_many_wraparounds() {
        // Far more events than the ring holds, drained in lockstep: the
        // per-publish stamp entries must keep covering the right slots
        // across reuse, and enters must stay nondecreasing per shard.
        let rec = TraceRecorder::new(1, 8);
        let mut seen = Vec::new();
        let mut last_enter = 0u64;
        for round in 0..200u64 {
            for i in 0..5 {
                assert!(rec.record(0, round * 5 + i));
            }
            rec.flush(0);
            rec.pull_shard(0, |enter, exit, value| {
                assert!(enter >= last_enter, "enter regressed");
                assert!(exit >= enter, "inverted interval");
                last_enter = enter;
                seen.push(value);
            });
        }
        assert_eq!(seen.len(), 1000);
        assert!(seen.iter().enumerate().all(|(i, &v)| v == i as u64));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn sampling_records_one_in_k_and_counts_the_rest() {
        let rec = TraceRecorder::with_sampling(1, 64, 4);
        assert_eq!(rec.sample_k(), 4);
        for v in 0..40u64 {
            assert!(rec.record(0, v));
        }
        let mut events: Vec<OpEvent> = Vec::new();
        drain_remaining(&rec, &mut events);
        assert_eq!(events.len(), 10, "one in four recorded");
        assert_eq!(rec.skipped(), 30);
        assert_eq!(rec.skipped_on(0), 30);
        // Every 4th value, starting at the 4th op.
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, (0..10).map(|i| 4 * i + 3).collect::<Vec<u64>>());
        // Samples flow through the same batched publish as full recording:
        // these 10 samples fit one batch, so they share one boundary
        // interval, which also covers every skipped op between them —
        // sound widening.
        let first = &events[0];
        assert!(events
            .iter()
            .all(|e| e.enter_ns == first.enter_ns && e.exit_ns == first.exit_ns));
    }

    #[test]
    fn sampled_audit_is_clean_on_a_fetch_add() {
        let threads = 2;
        let recorder = Arc::new(TraceRecorder::with_sampling(threads, 1024, 8));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited_parallel(
            &counter,
            &recorder,
            Workload { threads, increments_per_thread: 1000 },
            2,
            |_| {},
        );
        assert_eq!(run.recorded as u64 + run.skipped + run.dropped, 2000);
        assert!(run.skipped > 0);
        assert!(run.auditor.is_clean(), "{}", run.auditor.auditor().summary());
    }

    #[test]
    fn traced_fetch_add_audits_clean_live() {
        let threads = 4;
        let per_thread = 500;
        let recorder = Arc::new(TraceRecorder::new(threads, per_thread));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let mut progress_calls = 0usize;
        let run = drive_audited(
            &counter,
            &recorder,
            Workload { threads, increments_per_thread: per_thread },
            |_| progress_calls += 1,
        );
        assert_eq!(run.recorded, threads * per_thread);
        assert_eq!(run.dropped, 0);
        assert!(progress_calls >= 1);
        // A fetch-and-add word under a monotone global clock audits clean:
        // recorded intervals only widen the true ones, so a recorded
        // precedence is a real-time precedence, which implies the earlier
        // op's fetch_add happened first, hence the smaller value.
        assert!(run.auditor.is_linearizable());
        assert!(run.auditor.is_sequentially_consistent());
        assert_eq!(run.auditor.f_nl(), 0.0);
        assert_eq!(run.auditor.f_nsc(), 0.0);
    }

    #[test]
    fn parallel_audit_matches_sequential_on_the_same_counter() {
        let threads = 4;
        let per_thread = 800;
        let recorder = Arc::new(TraceRecorder::new(threads, per_thread));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited_parallel(
            &counter,
            &recorder,
            Workload { threads, increments_per_thread: per_thread },
            2,
            |_| {},
        );
        assert_eq!(run.recorded, threads * per_thread);
        assert_eq!(run.dropped, 0);
        assert_eq!(run.skipped, 0);
        assert!(run.auditor.is_clean());
        let aud = run.auditor.auditor();
        assert_eq!(aud.f_nl(), 0.0);
        assert_eq!(aud.f_nsc(), 0.0);
        // Per-shard accounting covered every shard.
        let mut auditor = run.auditor;
        assert_eq!(auditor.shard_stats().iter().map(|s| s.observed).sum::<usize>(), 3200);
        assert!(auditor.summary().ends_with("clean"));
    }

    #[test]
    fn audited_run_with_idle_threads_still_flushes() {
        // More shards than threads: idle shards must not block the merger.
        let recorder = Arc::new(TraceRecorder::new(6, 64));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited(
            &counter,
            &recorder,
            Workload { threads: 2, increments_per_thread: 50 },
            |_| {},
        );
        assert_eq!(run.recorded, 100);
        assert!(run.auditor.is_linearizable());
    }

    #[test]
    fn parallel_audit_with_more_stealers_than_shards_clamps() {
        let recorder = Arc::new(TraceRecorder::new(2, 256));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited_parallel(
            &counter,
            &recorder,
            Workload { threads: 2, increments_per_thread: 100 },
            16,
            |_| {},
        );
        assert_eq!(run.recorded, 200);
        assert!(run.auditor.is_clean());
    }

    #[test]
    fn overflow_during_audited_run_is_reported_not_fatal() {
        // Tiny rings with a workload far beyond them: drops are counted,
        // the run completes, and what was recorded still audits.
        let recorder = Arc::new(TraceRecorder::new(2, 4));
        let counter = Traced::new(FetchAddCounter::new(), Arc::clone(&recorder));
        let run = drive_audited(
            &counter,
            &recorder,
            Workload { threads: 2, increments_per_thread: 2000 },
            |_| {},
        );
        assert_eq!(run.recorded as u64 + run.dropped, 4000);
        assert!(run.auditor.is_sequentially_consistent());
    }

    #[test]
    fn drain_remaining_parallel_matches_sequential_verdict() {
        // Same recorder contents through both finishers: byte-identical
        // summaries (the MergeAuditor promise).
        let rec = TraceRecorder::new(3, 256);
        for i in 0..100u64 {
            rec.record((i % 3) as usize, i);
        }
        // Sequential copy first (drains consume, so replay onto a twin).
        let twin = TraceRecorder::new(3, 256);
        for i in 0..100u64 {
            twin.record((i % 3) as usize, i);
        }
        let mut seq = StreamingAuditor::new();
        drain_remaining(&twin, &mut seq);
        let mut par = drain_remaining_parallel(&rec, 3);
        assert_eq!(par.operations(), seq.operations());
        assert_eq!(par.summary(), seq.summary());
    }
}
