//! Shared-memory threaded implementation of counting networks.
//!
//! Section 2.7 of the paper describes the standard multiprocessor
//! implementation: balancers are records, wires are pointers, and each
//! process performs an increment by shepherding a token from an input
//! pointer to a counter, atomically updating each balancer on the way.
//! [`counter::SharedNetworkCounter`] realizes that design with one
//! `AtomicUsize` per balancer and one `AtomicU64` per counter, over any
//! [`cnet_topology::Network`] — flattened at construction by the
//! [`compiled`] traversal engine into contiguous routing tables, with
//! every state word padded to its own cache line
//! (`cnet_util::sync::CachePadded`) so independent balancers really are
//! independent in the memory system. The pre-compilation form survives as
//! [`counter::GraphWalkCounter`], the benchmark pipeline's baseline.
//!
//! Also provided:
//!
//! * [`baseline`] — the centralized alternatives counting networks were
//!   invented to beat: a single fetch-and-increment word and a lock-based
//!   counter;
//! * [`barrier`] — the paper's Section 1.1 application: barrier
//!   synchronization built on *any* counter, which needs only gap-free
//!   values (and is the motivating example for settling for sequential
//!   consistency);
//! * [`history`] — wall-clock operation recording (integer nanoseconds
//!   from a calibrated monotonic clock), producing [`cnet_core::Op`]s so
//!   the same checkers that analyze simulated executions analyze real
//!   threaded runs;
//! * [`recorder`] — the always-on observability path: per-thread sharded
//!   ring buffers ([`recorder::TraceRecorder`]) capture every increment at
//!   a few nanoseconds apiece and [`recorder::drive_audited`] streams them
//!   through `cnet-core`'s online monitors *while the run executes*.
//!
//! # Example
//!
//! ```
//! use cnet_topology::construct::bitonic;
//! use cnet_runtime::counter::SharedNetworkCounter;
//! use cnet_runtime::ProcessCounter;
//!
//! let net = bitonic(4)?;
//! let counter = SharedNetworkCounter::new(&net);
//! let mut values: Vec<u64> = (0..12).map(|p| counter.next_for(p)).collect();
//! values.sort_unstable();
//! assert_eq!(values, (0..12).collect::<Vec<_>>());
//! # Ok::<(), cnet_topology::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod barrier;
pub mod combine;
pub mod compiled;
pub mod counter;
pub mod diffracting;
pub mod drain;
pub mod history;
pub mod message_passing;
pub mod paced;
pub mod recorder;
pub mod relaxed;
pub mod stats;

pub use baseline::{FetchAddCounter, LockCounter};
pub use barrier::CounterBarrier;
pub use combine::CombiningFunnel;
pub use compiled::CompiledNetwork;
pub use counter::{GraphWalkCounter, SharedNetworkCounter};
pub use diffracting::DiffractingTree;
pub use drain::Drain;
pub use history::{drive, RecordedOp, Workload};
pub use recorder::{
    drain_remaining, drain_remaining_parallel, drive_audited, drive_audited_parallel, AuditedRun,
    ParallelAuditedRun, TraceRecorder, Traced,
};
pub use message_passing::MessagePassingCounter;
pub use paced::LocallyPacedCounter;
pub use relaxed::{EliminationCounter, RelaxedCounter, DEFAULT_SUB_COUNTERS};
pub use stats::InstrumentedNetworkCounter;

/// A shared counter usable concurrently by many processes.
///
/// `next_for(process)` performs one increment operation on behalf of the
/// given process and returns the value obtained. Counting-network
/// implementations route the process to its statically assigned input wire;
/// centralized implementations ignore the process id.
pub trait ProcessCounter: Sync {
    /// Performs one increment for `process` and returns the value.
    fn next_for(&self, process: usize) -> u64;

    /// Performs `n` increments for `process` and returns the `n` values
    /// obtained, in the order they were claimed.
    ///
    /// The default simply loops [`next_for`](Self::next_for); batching
    /// implementations override it to claim the whole batch with one
    /// atomic per touched word (see
    /// [`SharedNetworkCounter`](counter::SharedNetworkCounter) and
    /// [`FetchAddCounter`](baseline::FetchAddCounter)). Every override
    /// must hand out exactly the values `n` sequential `next_for` calls
    /// would have claimed — batching may reorder values *across*
    /// concurrent callers, never invent or drop them.
    ///
    /// `n == 0` is a no-op by contract: it returns an empty vector
    /// without touching shared state — no atomic operation, no lock
    /// acquisition, no network round trip. Callers (the bench harness,
    /// the combining funnel's pass-through) rely on empty batches being
    /// free, and the model checker counts every shim atomic as a
    /// scheduling point, so a stray `fetch_add(0)` is observable there.
    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        let values: Vec<u64> = (0..n).map(|_| self.next_for(process)).collect();
        debug_assert_eq!(values.len(), n, "next_batch_for must return exactly n values");
        values
    }
}
