//! The diffracting tree of Shavit and Zemach (\[SZ96\]) — the optimized
//! concurrent form of the paper's counting tree (Section 2.6.3).
//!
//! A plain counting tree funnels every token through the root balancer's
//! toggle bit. A *diffracting* tree puts a **prism** in front of each
//! toggle: an array of exchanger slots where two concurrent tokens can
//! *collide* and agree to go opposite ways — one left, one right — without
//! touching the toggle at all. Collisions preserve the balancer invariant
//! exactly (a pair contributes one token to each subtree) while removing
//! the hot toggle from both tokens' paths; only collision-less tokens fall
//! back to the toggle.
//!
//! The exchanger protocol per slot (a single atomic word):
//!
//! * `EMPTY → WAITING`: the token parks and spins briefly;
//! * a second token seeing `WAITING` swaps it to `SIGNALED` and goes
//!   **right**; the waiter observes `SIGNALED`, resets the slot, and goes
//!   **left**;
//! * a waiter that times out retracts (`WAITING → EMPTY`); if the
//!   retraction CAS fails, a partner just signaled — the collision counts.

use crate::recorder::TraceRecorder;
use crate::ProcessCounter;
use cnet_util::sync::CachePadded;
use cnet_util::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const EMPTY: usize = 0;
const WAITING: usize = 1;
const SIGNALED: usize = 2;

/// How long a waiter spins before retracting, in loop iterations. Small:
/// on an uncontended (or single-core) host the fallback toggle is cheap.
const SPIN_LIMIT: u32 = 16;

/// After this many consecutive collision-less prism visits the node backs
/// off to the toggle, re-probing the prism only occasionally — \[SZ96\]'s
/// adaptive strategy, which keeps the uncontended path fast.
const MISS_BACKOFF: u64 = 8;

/// One inner node: a prism of exchanger slots plus the fallback toggle.
///
/// Every contended word — each prism slot and the toggle — sits on its own
/// cache line: a slot exists precisely so two threads can meet on it
/// *without* disturbing anyone else, which false sharing would undo.
#[derive(Debug)]
struct Node {
    prism: Vec<CachePadded<AtomicUsize>>,
    toggle: CachePadded<AtomicUsize>,
    /// Tokens that left this node via a collision (both partners counted).
    diffracted: AtomicU64,
    /// Tokens that fell back to the toggle.
    toggled: AtomicU64,
    /// Consecutive prism visits without a collision (adaptation signal).
    miss_streak: AtomicU64,
}

impl Node {
    fn new(prism_width: usize) -> Node {
        Node {
            prism: (0..prism_width)
                .map(|_| CachePadded::new(AtomicUsize::new(EMPTY)))
                .collect(),
            toggle: CachePadded::new(AtomicUsize::new(0)),
            diffracted: AtomicU64::new(0),
            toggled: AtomicU64::new(0),
            miss_streak: AtomicU64::new(0),
        }
    }

    /// Whether this visit should pay for a prism attempt: yes while
    /// collisions are landing, occasionally otherwise (to detect returning
    /// contention).
    fn probe_prism(&self, slot_hint: usize) -> bool {
        !self.prism.is_empty()
            && (self.miss_streak.load(Ordering::Relaxed) < MISS_BACKOFF
                || slot_hint.is_multiple_of(64))
    }

    /// Decides this token's direction: `false` = left (port 0), `true` =
    /// right (port 1).
    fn traverse(&self, slot_hint: usize) -> bool {
        if self.probe_prism(slot_hint) {
            let slot = &self.prism[slot_hint % self.prism.len()];
            // Try to become the waiter.
            if slot
                .compare_exchange(EMPTY, WAITING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for _ in 0..SPIN_LIMIT {
                    if slot.load(Ordering::Acquire) == SIGNALED {
                        slot.store(EMPTY, Ordering::Release);
                        self.diffracted.fetch_add(1, Ordering::Relaxed);
                        self.miss_streak.store(0, Ordering::Relaxed);
                        return false; // collided: waiter goes left
                    }
                    std::hint::spin_loop();
                }
                // Timed out: retract. Failure means a partner signaled at
                // the last instant — take the collision.
                if slot
                    .compare_exchange(WAITING, EMPTY, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    slot.store(EMPTY, Ordering::Release);
                    self.diffracted.fetch_add(1, Ordering::Relaxed);
                    self.miss_streak.store(0, Ordering::Relaxed);
                    return false;
                }
                self.miss_streak.fetch_add(1, Ordering::Relaxed);
            } else if slot
                .compare_exchange(WAITING, SIGNALED, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.diffracted.fetch_add(1, Ordering::Relaxed);
                self.miss_streak.store(0, Ordering::Relaxed);
                return true; // collided: signaler goes right
            }
        }
        // Fallback: the toggle bit, exactly a (1,2)-balancer.
        self.toggled.fetch_add(1, Ordering::Relaxed);
        self.toggle.fetch_xor(1, Ordering::AcqRel) == 1
    }
}

/// A diffracting tree handing out values `0, 1, 2, …` from `w` leaf
/// counters.
///
/// # Example
///
/// ```
/// use cnet_runtime::diffracting::DiffractingTree;
///
/// let tree = DiffractingTree::new(8, 4)?;
/// let mut values: Vec<u64> = (0..16).map(|k| tree.increment(k)).collect();
/// values.sort_unstable();
/// assert_eq!(values, (0..16).collect::<Vec<_>>());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct DiffractingTree {
    /// Inner nodes in heap order: node `i` has children `2i+1`, `2i+2`.
    nodes: Vec<Node>,
    /// Leaf counters: leaf `j` hands out `j, j+w, j+2w, …` — one cache
    /// line each, so leaves absorb their shares of traffic independently.
    counters: Vec<CachePadded<AtomicU64>>,
    /// Sequence salt so callers that pass constant entropy (e.g. a thread
    /// id through [`ProcessCounter::next_for`]) still probe varying slots.
    salt: CachePadded<AtomicU64>,
    width: usize,
    depth: usize,
    /// When present, [`ProcessCounter::next_for`] records every increment
    /// into the recorder's per-process shard (batched boundary stamps).
    recorder: Option<Arc<TraceRecorder>>,
}

impl DiffractingTree {
    /// Builds a diffracting tree with `width` leaves (a power of two) and
    /// the given prism width per node (0 disables diffraction, leaving a
    /// plain counting tree).
    ///
    /// # Errors
    ///
    /// Returns a message if `width` is not a power of two at least 2.
    pub fn new(width: usize, prism_width: usize) -> Result<DiffractingTree, String> {
        if !width.is_power_of_two() || width < 2 {
            return Err(format!("width {width} must be a power of two, at least 2"));
        }
        let depth = width.trailing_zeros() as usize;
        Ok(DiffractingTree {
            nodes: (0..width - 1).map(|_| Node::new(prism_width)).collect(),
            counters: (0..width)
                .map(|j| CachePadded::new(AtomicU64::new(j as u64)))
                .collect(),
            salt: CachePadded::new(AtomicU64::new(0)),
            width,
            depth,
            recorder: None,
        })
    }

    /// Like [`new`](Self::new), with every [`ProcessCounter::next_for`]
    /// operation recorded into `recorder` (process `p` writes shard `p`, so
    /// process ids must stay below [`TraceRecorder::shards`]).
    ///
    /// # Errors
    ///
    /// Returns a message if `width` is not a power of two at least 2.
    pub fn with_recorder(
        width: usize,
        prism_width: usize,
        recorder: Arc<TraceRecorder>,
    ) -> Result<DiffractingTree, String> {
        let mut tree = DiffractingTree::new(width, prism_width)?;
        tree.recorder = Some(recorder);
        Ok(tree)
    }

    /// The number of leaf counters.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Performs one increment; `entropy` seeds the prism slot choices
    /// (callers typically pass a thread id or a per-thread counter).
    pub fn increment(&self, entropy: usize) -> u64 {
        // Mix the entropy so consecutive calls probe different slots.
        let mut h = entropy.wrapping_mul(0x9e3779b97f4a7c15);
        let mut node = 0usize; // heap index
        let mut leaf_bits = 0usize;
        for level in 0..self.depth {
            h = h.rotate_left(17).wrapping_mul(0xbf58476d1ce4e5b9);
            let right = self.nodes[node].traverse(h);
            // Leaf index accumulates LSB-first, matching the counting
            // tree's step-order leaves (port p at level l contributes
            // p << l).
            leaf_bits |= usize::from(right) << level;
            node = 2 * node + 1 + usize::from(right);
        }
        self.counters[leaf_bits].fetch_add(self.width as u64, Ordering::AcqRel)
    }

    /// Total tokens that left any node via a prism collision, and total
    /// that used a toggle — the diffraction rate `(diffracted, toggled)`.
    pub fn diffraction_stats(&self) -> (u64, u64) {
        let d = self.nodes.iter().map(|n| n.diffracted.load(Ordering::Relaxed)).sum();
        let t = self.nodes.iter().map(|n| n.toggled.load(Ordering::Relaxed)).sum();
        (d, t)
    }

    /// Per-leaf token counts (exact only at quiescence).
    pub fn leaf_counts(&self) -> Vec<u64> {
        let w = self.width as u64;
        self.counters
            .iter()
            .enumerate()
            .map(|(j, c)| (c.load(Ordering::Acquire) - j as u64) / w)
            .collect()
    }
}

impl ProcessCounter for DiffractingTree {
    fn next_for(&self, process: usize) -> u64 {
        // Salt the caller's (possibly constant) entropy with a sequence
        // number so successive operations probe different prism slots.
        let salt = self.salt.fetch_add(1, Ordering::Relaxed) as usize;
        let entropy = process.wrapping_mul(0x9e37_79b9).wrapping_add(salt);
        match &self.recorder {
            None => self.increment(entropy),
            Some(rec) => {
                let value = self.increment(entropy);
                rec.record(process, value);
                value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn rejects_bad_widths() {
        assert!(DiffractingTree::new(0, 4).is_err());
        assert!(DiffractingTree::new(1, 4).is_err());
        assert!(DiffractingTree::new(6, 4).is_err());
    }

    #[test]
    fn sequential_counting_without_prisms_matches_the_tree() {
        // prism_width 0: every token uses the toggles; the value sequence
        // must match the counting tree's reference semantics.
        let tree = DiffractingTree::new(8, 0).unwrap();
        let net = cnet_topology::construct::counting_tree(8).unwrap();
        let mut reference = cnet_topology::state::NetworkState::new(&net);
        for k in 0..32usize {
            assert_eq!(tree.increment(k), reference.traverse(&net, 0).value);
        }
    }

    #[test]
    fn concurrent_increments_are_dense_with_prisms() {
        for prism_width in [0usize, 1, 4] {
            let tree = DiffractingTree::new(8, prism_width).unwrap();
            let mut values: Vec<u64> = thread::scope(|s| {
                let handles: Vec<_> = (0..6)
                    .map(|p| {
                        let t = &tree;
                        s.spawn(move || {
                            (0..500)
                                .map(|k| t.increment(p * 10_007 + k))
                                .collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            values.sort_unstable();
            assert_eq!(
                values,
                (0..3000).collect::<Vec<_>>(),
                "prism width {prism_width}"
            );
        }
    }

    #[test]
    fn increments_are_gap_free_under_heavy_contention() {
        // Mirror of `fetch_add_is_gap_free_under_contention` in baseline.rs:
        // many threads, a real prism, and the full dense-range assertion —
        // no gaps, no duplicates, exact total.
        let threads = 8usize;
        let per_thread = 1000usize;
        let tree = DiffractingTree::new(8, 4).unwrap();
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    let t = &tree;
                    s.spawn(move || {
                        (0..per_thread)
                            .map(|k| t.increment(p * 10_007 + k))
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        let total = (threads * per_thread) as u64;
        assert_eq!(values, (0..total).collect::<Vec<_>>());
        assert_eq!(tree.leaf_counts().iter().sum::<u64>(), total);
    }

    #[test]
    fn leaf_counts_balance_at_quiescence() {
        let tree = DiffractingTree::new(4, 2).unwrap();
        thread::scope(|s| {
            for p in 0..4usize {
                let t = &tree;
                s.spawn(move || {
                    for k in 0..250 {
                        t.increment(p * 31 + k);
                    }
                });
            }
        });
        let counts = tree.leaf_counts();
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        // Collisions keep subtrees balanced: totals per leaf are exactly
        // even here because 1000 is a multiple of the width... not quite —
        // diffraction guarantees pairwise balance, and leftovers go through
        // toggles, so leaves differ by at most 1 at quiescence.
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?}");
    }

    #[test]
    fn diffraction_stats_account_for_every_node_visit() {
        let tree = DiffractingTree::new(8, 4).unwrap();
        thread::scope(|s| {
            for p in 0..4usize {
                let t = &tree;
                s.spawn(move || {
                    for k in 0..500 {
                        t.increment(p * 7919 + k);
                    }
                });
            }
        });
        let (diffracted, toggled) = tree.diffraction_stats();
        // Every token visits depth nodes; each visit ends in exactly one of
        // the two outcomes.
        assert_eq!(diffracted + toggled, 2000 * 3);
        // Collisions always come in pairs.
        assert_eq!(diffracted % 2, 0);
    }

    #[test]
    fn values_are_dense_under_the_generic_driver() {
        use crate::history::drive;
        use crate::Workload;
        let tree = DiffractingTree::new(8, 4).unwrap();
        let records = drive(&tree, Workload { threads: 4, increments_per_thread: 250 });
        let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..1000).collect::<Vec<_>>());
    }
}
