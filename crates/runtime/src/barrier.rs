//! Counter-based barrier synchronization — the paper's Section 1.1
//! application.
//!
//! `n` processes each increment a shared counter when they reach the
//! barrier and busy-wait; the process that obtains the round's final value
//! releases everyone. The paper's point: this works with a **sequentially
//! consistent** counter, not just a linearizable one — once all `n`
//! increments have started, exactly one process receives the round's top
//! value (gap-freedom), and that is all the barrier needs.

use crate::ProcessCounter;
use cnet_util::sync::Backoff;
use std::sync::atomic::{AtomicU64, Ordering};

/// A reusable barrier for `parties` processes built on any
/// [`ProcessCounter`].
///
/// # Example
///
/// ```
/// use cnet_runtime::{CounterBarrier, FetchAddCounter};
/// use std::thread;
///
/// let barrier = CounterBarrier::new(FetchAddCounter::new(), 4);
/// thread::scope(|s| {
///     for p in 0..4 {
///         let b = &barrier;
///         s.spawn(move || {
///             for _round in 0..10 {
///                 b.wait(p);
///             }
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct CounterBarrier<C> {
    counter: C,
    parties: u64,
    /// Number of completed rounds; processes past round `r` wait for this to
    /// exceed `r`.
    generation: AtomicU64,
}

impl<C: ProcessCounter> CounterBarrier<C> {
    /// Creates a barrier for `parties` processes over the given counter.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(counter: C, parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        CounterBarrier {
            counter,
            parties: parties as u64,
            generation: AtomicU64::new(0),
        }
    }

    /// Blocks until all parties of the current round have arrived. Returns
    /// `true` for exactly one caller per round (the one that obtained the
    /// round's final value — the "leader", as in `std::sync::Barrier`).
    pub fn wait(&self, process: usize) -> bool {
        let v = self.counter.next_for(process);
        let round = v / self.parties;
        if v % self.parties == self.parties - 1 {
            // Last arrival of this round: release everyone.
            self.generation.store(round + 1, Ordering::Release);
            true
        } else {
            let backoff = Backoff::new();
            while self.generation.load(Ordering::Acquire) <= round {
                backoff.snooze();
            }
            false
        }
    }

    /// The counter backing the barrier.
    pub fn counter(&self) -> &C {
        &self.counter
    }

    /// How many rounds have completed.
    pub fn rounds_completed(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SharedNetworkCounter;
    use crate::FetchAddCounter;
    use cnet_topology::construct::bitonic;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    /// All parties must be inside round r before anyone starts round r+1.
    fn check_barrier<C: ProcessCounter>(counter: C, parties: usize, rounds: usize) {
        let barrier = CounterBarrier::new(counter, parties);
        let in_round = AtomicUsize::new(0);
        let leaders = AtomicUsize::new(0);
        thread::scope(|s| {
            for p in 0..parties {
                let b = &barrier;
                let in_round = &in_round;
                let leaders = &leaders;
                s.spawn(move || {
                    for round in 0..rounds {
                        let before = in_round.fetch_add(1, Ordering::AcqRel);
                        // No one can be more than `parties` arrivals ahead.
                        assert!(before < (round + 1) * parties);
                        if b.wait(p) {
                            leaders.fetch_add(1, Ordering::AcqRel);
                        }
                        // After the barrier, all `parties` arrivals of this
                        // round must have happened.
                        assert!(in_round.load(Ordering::Acquire) >= (round + 1) * parties);
                    }
                });
            }
        });
        assert_eq!(barrier.rounds_completed(), rounds as u64);
        assert_eq!(leaders.load(Ordering::Acquire), rounds);
    }

    #[test]
    fn barrier_over_fetch_add() {
        check_barrier(FetchAddCounter::new(), 4, 25);
    }

    #[test]
    fn barrier_over_counting_network() {
        let net = bitonic(8).unwrap();
        check_barrier(SharedNetworkCounter::new(&net), 6, 25);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let barrier = CounterBarrier::new(FetchAddCounter::new(), 1);
        for _ in 0..5 {
            assert!(barrier.wait(0));
        }
        assert_eq!(barrier.rounds_completed(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        let _ = CounterBarrier::new(FetchAddCounter::new(), 0);
    }
}
