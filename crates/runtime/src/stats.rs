//! Contention statistics for the shared-memory counting network.
//!
//! [`InstrumentedNetworkCounter`] counts, per balancer, how many tokens
//! passed and how many atomic update *retries* were paid (a retry means
//! another thread changed the balancer state mid-update — the memory-level
//! signature of contention that counting networks exist to spread).
//!
//! The instrumented counter routes through the same compiled flat tables
//! as [`crate::SharedNetworkCounter`] (via [`CompiledNetwork::route`]) and
//! pads its state words identically, but it deliberately keeps the manual
//! CAS loop at every balancer — the retry count *is* the measurement, and
//! the wait-free `fetch_xor`/`fetch_add` specializations would hide it.

use crate::compiled::CompiledNetwork;
use crate::ProcessCounter;
use cnet_topology::Network;
use cnet_util::sync::CachePadded;
use cnet_util::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A [`crate::SharedNetworkCounter`] variant that additionally records
/// per-balancer traffic and CAS-retry counts.
#[derive(Debug)]
pub struct InstrumentedNetworkCounter {
    /// The graph is kept (unlike the plain counter) for layer attribution.
    net: Network,
    engine: CompiledNetwork,
    balancers: Box<[CachePadded<AtomicUsize>]>,
    counters: Box<[CachePadded<AtomicU64>]>,
    visits: Vec<AtomicU64>,
    retries: Vec<AtomicU64>,
}

impl InstrumentedNetworkCounter {
    /// Compiles and lays the network out in shared memory with
    /// instrumentation.
    pub fn new(net: &Network) -> Self {
        let engine = CompiledNetwork::compile(net);
        let balancers = engine.new_balancer_states();
        let counters = (0..engine.fan_out())
            .map(|j| CachePadded::new(AtomicU64::new(j as u64)))
            .collect();
        InstrumentedNetworkCounter {
            net: net.clone(),
            engine,
            balancers,
            counters,
            visits: (0..net.size()).map(|_| AtomicU64::new(0)).collect(),
            retries: (0..net.size()).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The network this counter is laid out over.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Shepherds one token from `input` to a counter, recording per-balancer
    /// visits and retries.
    ///
    /// # Panics
    ///
    /// Panics if `input >= network().fan_in()`.
    pub fn increment_from(&self, input: usize) -> u64 {
        let sink = self.engine.route(input, |idx, f| {
            // Manual CAS loop so retries can be counted.
            let word = &*self.balancers[idx];
            let mut current = word.load(Ordering::Acquire);
            let port = loop {
                match word.compare_exchange_weak(
                    current,
                    (current + 1) % f,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(prev) => break prev,
                    Err(actual) => {
                        self.retries[idx].fetch_add(1, Ordering::Relaxed);
                        current = actual;
                    }
                }
            };
            self.visits[idx].fetch_add(1, Ordering::Relaxed);
            port
        });
        self.counters[sink].fetch_add(self.engine.fan_out() as u64, Ordering::AcqRel)
    }

    /// Tokens that passed each balancer so far.
    pub fn visits(&self) -> Vec<u64> {
        self.visits.iter().map(|v| v.load(Ordering::Relaxed)).collect()
    }

    /// Atomic-update retries paid at each balancer so far.
    pub fn retries(&self) -> Vec<u64> {
        self.retries.iter().map(|v| v.load(Ordering::Relaxed)).collect()
    }

    /// Aggregates visits and retries by layer: `(layer, visits, retries)`
    /// rows, 1-based layers — the contention profile across the network's
    /// depth.
    pub fn layer_profile(&self) -> Vec<(usize, u64, u64)> {
        let visits = self.visits();
        let retries = self.retries();
        (1..=self.net.depth())
            .map(|l| {
                let mut v = 0;
                let mut r = 0;
                for b in self.net.layer(l).balancers() {
                    v += visits[b.index()];
                    r += retries[b.index()];
                }
                (l, v, r)
            })
            .collect()
    }
}

impl ProcessCounter for InstrumentedNetworkCounter {
    fn next_for(&self, process: usize) -> u64 {
        self.increment_from(process % self.net.fan_in())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::construct::{bitonic, counting_tree};
    use std::thread;

    #[test]
    fn visits_count_every_balancer_crossing() {
        let net = bitonic(8).unwrap();
        let counter = InstrumentedNetworkCounter::new(&net);
        let tokens = 64u64;
        for k in 0..tokens {
            counter.increment_from(k as usize % 8);
        }
        // Every token crosses depth() balancers.
        let total: u64 = counter.visits().iter().sum();
        assert_eq!(total, tokens * net.depth() as u64);
        // Uniform traffic: each balancer sees tokens proportional to fan-in.
        let profile = counter.layer_profile();
        for &(l, v, _) in &profile {
            assert_eq!(v, tokens, "layer {l} must carry every token once");
        }
    }

    #[test]
    fn sequential_use_has_no_retries() {
        let net = bitonic(4).unwrap();
        let counter = InstrumentedNetworkCounter::new(&net);
        for k in 0..40 {
            counter.increment_from(k % 4);
        }
        assert!(counter.retries().iter().all(|&r| r == 0));
    }

    #[test]
    fn concurrent_values_remain_gap_free() {
        let net = counting_tree(8).unwrap();
        let counter = InstrumentedNetworkCounter::new(&net);
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = &counter;
                    s.spawn(move || (0..250).map(|_| c.increment_from(0)).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        assert_eq!(values, (0..1000).collect::<Vec<_>>());
        // The root of the tree carries all traffic.
        let root_visits = counter.visits()[0];
        assert_eq!(root_visits, 1000);
    }

    #[test]
    fn agrees_with_plain_counter_semantics() {
        let net = bitonic(8).unwrap();
        let instrumented = InstrumentedNetworkCounter::new(&net);
        let plain = crate::SharedNetworkCounter::new(&net);
        for k in 0..100 {
            assert_eq!(instrumented.increment_from(k % 8), plain.increment_from(k % 8));
        }
    }
}
