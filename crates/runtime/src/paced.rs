//! Locally paced counters: Section 4's recipe made executable.
//!
//! The paper stresses that its distinguishing condition
//! `d(G)·(c_max − 2·c_min) < C_L` needs **no global coordination**: "upon
//! completion of an operation, the process sets a timer to expire after
//! time `d(G)·(c_max − 2·c_min)` elapses; it may then issue another
//! operation." [`LocallyPacedCounter`] wraps any [`ProcessCounter`] with
//! exactly that per-process timer.
//!
//! On real hardware the wire-delay bounds `c_min`/`c_max` are empirical, so
//! the wrapper cannot *prove* sequential consistency the way the theorem
//! does in the formal model — but it enforces the measurable part of the
//! condition (`C_L` at least the configured bound, per process), which the
//! recorded histories confirm.

use crate::ProcessCounter;
use cnet_util::sync::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A counter wrapper enforcing a minimum local inter-operation delay: after
/// a process's operation completes, that process's next operation is held
/// back until the delay has elapsed.
///
/// # Example
///
/// ```
/// use cnet_runtime::paced::LocallyPacedCounter;
/// use cnet_runtime::{FetchAddCounter, ProcessCounter};
/// use std::time::Duration;
///
/// let paced = LocallyPacedCounter::new(FetchAddCounter::new(), Duration::from_micros(50));
/// let a = paced.next_for(0);
/// let b = paced.next_for(0); // waited >= 50 us after the first completed
/// assert!(b > a);
/// ```
#[derive(Debug)]
pub struct LocallyPacedCounter<C> {
    inner: C,
    local_delay: Duration,
    /// When each process's last operation completed. A mutexed map keeps the
    /// wrapper simple; the lock is held only for the bookkeeping reads and
    /// writes, never across the inner operation or the wait.
    last_exit: Mutex<HashMap<usize, Instant>>,
}

impl<C: ProcessCounter> LocallyPacedCounter<C> {
    /// Wraps `inner`, enforcing at least `local_delay` between one process's
    /// operations — the timer of Section 4, with
    /// `local_delay > d(G)·(c_max − 2·c_min)` for the network's empirical
    /// delay envelope.
    pub fn new(inner: C, local_delay: Duration) -> Self {
        LocallyPacedCounter { inner, local_delay, last_exit: Mutex::new(HashMap::new()) }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The configured minimum local inter-operation delay.
    pub fn local_delay(&self) -> Duration {
        self.local_delay
    }
}

impl<C: ProcessCounter> ProcessCounter for LocallyPacedCounter<C> {
    fn next_for(&self, process: usize) -> u64 {
        let release = self.last_exit.lock().get(&process).map(|&t| t + self.local_delay);
        if let Some(release) = release {
            // Spin-wait with yields: the delays in question are micro-scale.
            while Instant::now() < release {
                std::hint::spin_loop();
            }
        }
        let value = self.inner.next_for(process);
        self.last_exit.lock().insert(process, Instant::now());
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SharedNetworkCounter;
    use crate::history::{drive, to_ops};
    use crate::{FetchAddCounter, Workload};
    use cnet_core::consistency::is_sequentially_consistent;
    use cnet_topology::construct::bitonic;
    use std::time::Duration;

    #[test]
    fn pacing_enforces_the_local_gap() {
        let delay = Duration::from_micros(200);
        let paced = LocallyPacedCounter::new(FetchAddCounter::new(), delay);
        let t0 = Instant::now();
        paced.next_for(0);
        paced.next_for(0);
        paced.next_for(0);
        // Two enforced gaps of 200us.
        assert!(t0.elapsed() >= 2 * delay);
        // Different processes are not held back by each other.
        let t1 = Instant::now();
        paced.next_for(1);
        paced.next_for(2);
        assert!(t1.elapsed() < delay);
    }

    #[test]
    fn paced_histories_have_measured_local_delay() {
        // `drive` stamps enter before `next_for` (which includes the wait)
        // and exit after it returns, so the externally observable guarantee
        // is on the gap between successive *completions* of one process.
        // Use a delay large enough to dominate timestamping noise.
        let delay = Duration::from_millis(2);
        let net = bitonic(8).unwrap();
        let paced = LocallyPacedCounter::new(SharedNetworkCounter::new(&net), delay);
        let records = drive(&paced, Workload { threads: 2, increments_per_thread: 8 });
        for p in 0..2 {
            let mut mine: Vec<_> = records.iter().filter(|r| r.process == p).collect();
            mine.sort_by_key(|r| r.enter_ns);
            for pair in mine.windows(2) {
                let gap = pair[1].exit_ns - pair[0].exit_ns;
                assert!(
                    gap as f64 >= delay.as_nanos() as f64 * 0.8,
                    "process {p}: completion gap {gap}ns below the pace"
                );
            }
        }
        // The values are still dense and the history auditable.
        let ops = to_ops(&records);
        assert!(is_sequentially_consistent(&ops) || !ops.is_empty());
        let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_delay_is_a_transparent_wrapper() {
        let paced = LocallyPacedCounter::new(FetchAddCounter::new(), Duration::ZERO);
        let values: Vec<u64> = (0..10).map(|_| paced.next_for(0)).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
        assert_eq!(paced.local_delay(), Duration::ZERO);
        assert_eq!(paced.inner().next(), 10);
    }
}
