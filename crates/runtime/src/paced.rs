//! Locally paced counters: Section 4's recipe made executable.
//!
//! The paper stresses that its distinguishing condition
//! `d(G)·(c_max − 2·c_min) < C_L` needs **no global coordination**: "upon
//! completion of an operation, the process sets a timer to expire after
//! time `d(G)·(c_max − 2·c_min)` elapses; it may then issue another
//! operation." [`LocallyPacedCounter`] wraps any [`ProcessCounter`] with
//! exactly that per-process timer.
//!
//! On real hardware the wire-delay bounds `c_min`/`c_max` are empirical, so
//! the wrapper cannot *prove* sequential consistency the way the theorem
//! does in the formal model — but it enforces the measurable part of the
//! condition (`C_L` at least the configured bound, per process), which the
//! recorded histories confirm.

use crate::ProcessCounter;
use cnet_util::sync::{CachePadded, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Number of timer-state shards (power of two). Distinct processes land on
/// distinct shards for all practical process counts, so pacing bookkeeping
/// never couples them through one lock (the paper's whole point is that
/// the condition is *local* — the wrapper must not reintroduce global
/// coordination through its own implementation).
const PACE_SHARDS: usize = 64;

/// A counter wrapper enforcing a minimum local inter-operation delay: after
/// a process's operation completes, that process's next operation is held
/// back until the delay has elapsed.
///
/// Timer state is sharded by process id across [`PACE_SHARDS`] cache-padded
/// locks: process `p` only ever touches shard `p mod PACE_SHARDS`, so up to
/// 64 concurrent processes do their pacing bookkeeping with zero
/// cross-process contention (and beyond that, contention grows 64× slower
/// than the old single-`Mutex<HashMap>` layout).
///
/// # Example
///
/// ```
/// use cnet_runtime::paced::LocallyPacedCounter;
/// use cnet_runtime::{FetchAddCounter, ProcessCounter};
/// use std::time::Duration;
///
/// let paced = LocallyPacedCounter::new(FetchAddCounter::new(), Duration::from_micros(50));
/// let a = paced.next_for(0);
/// let b = paced.next_for(0); // waited >= 50 us after the first completed
/// assert!(b > a);
/// ```
#[derive(Debug)]
pub struct LocallyPacedCounter<C> {
    inner: C,
    local_delay: Duration,
    /// When each process's last operation completed, sharded by process id.
    /// Each shard's lock is held only for the bookkeeping reads and writes,
    /// never across the inner operation or the wait.
    last_exit: Box<[CachePadded<Mutex<HashMap<usize, Instant>>>]>,
}

impl<C: ProcessCounter> LocallyPacedCounter<C> {
    /// Wraps `inner`, enforcing at least `local_delay` between one process's
    /// operations — the timer of Section 4, with
    /// `local_delay > d(G)·(c_max − 2·c_min)` for the network's empirical
    /// delay envelope.
    pub fn new(inner: C, local_delay: Duration) -> Self {
        LocallyPacedCounter {
            inner,
            local_delay,
            last_exit: (0..PACE_SHARDS)
                .map(|_| CachePadded::new(Mutex::new(HashMap::new())))
                .collect(),
        }
    }

    /// The wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The configured minimum local inter-operation delay.
    pub fn local_delay(&self) -> Duration {
        self.local_delay
    }

    /// The number of independent timer-state shards.
    pub fn shard_count(&self) -> usize {
        self.last_exit.len()
    }

    /// The shard holding `process`'s timer state.
    pub fn shard_of(&self, process: usize) -> usize {
        process & (PACE_SHARDS - 1)
    }

    fn shard(&self, process: usize) -> &Mutex<HashMap<usize, Instant>> {
        &self.last_exit[self.shard_of(process)]
    }
}

impl<C: ProcessCounter> ProcessCounter for LocallyPacedCounter<C> {
    fn next_for(&self, process: usize) -> u64 {
        let release =
            self.shard(process).lock().get(&process).map(|&t| t + self.local_delay);
        if let Some(release) = release {
            // Spin-wait with yields: the delays in question are micro-scale,
            // and the yield keeps waiting processes from monopolizing a core
            // (without it, concurrent waits serialize in wall-clock time on
            // machines with fewer cores than processes).
            while Instant::now() < release {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        let value = self.inner.next_for(process);
        self.shard(process).lock().insert(process, Instant::now());
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SharedNetworkCounter;
    use crate::history::{drive, to_ops};
    use crate::{FetchAddCounter, Workload};
    use cnet_core::consistency::is_sequentially_consistent;
    use cnet_topology::construct::bitonic;
    use std::time::Duration;

    #[test]
    fn pacing_enforces_the_local_gap() {
        let delay = Duration::from_micros(200);
        let paced = LocallyPacedCounter::new(FetchAddCounter::new(), delay);
        let t0 = Instant::now();
        paced.next_for(0);
        paced.next_for(0);
        paced.next_for(0);
        // Two enforced gaps of 200us.
        assert!(t0.elapsed() >= 2 * delay);
        // Different processes are not held back by each other.
        let t1 = Instant::now();
        paced.next_for(1);
        paced.next_for(2);
        assert!(t1.elapsed() < delay);
    }

    #[test]
    fn paced_histories_have_measured_local_delay() {
        // `drive` stamps enter before `next_for` (which includes the wait)
        // and exit after it returns, so the externally observable guarantee
        // is on the gap between successive *completions* of one process.
        // Use a delay large enough to dominate timestamping noise.
        let delay = Duration::from_millis(2);
        let net = bitonic(8).unwrap();
        let paced = LocallyPacedCounter::new(SharedNetworkCounter::new(&net), delay);
        let records = drive(&paced, Workload { threads: 2, increments_per_thread: 8 });
        for p in 0..2 {
            let mut mine: Vec<_> = records.iter().filter(|r| r.process == p).collect();
            mine.sort_by_key(|r| r.enter_ns);
            for pair in mine.windows(2) {
                let gap = pair[1].exit_ns - pair[0].exit_ns;
                assert!(
                    gap as f64 >= delay.as_nanos() as f64 * 0.8,
                    "process {p}: completion gap {gap}ns below the pace"
                );
            }
        }
        // The values are still dense and the history auditable.
        let ops = to_ops(&records);
        assert!(is_sequentially_consistent(&ops) || !ops.is_empty());
        let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn timer_state_is_sharded_by_process() {
        let paced = LocallyPacedCounter::new(FetchAddCounter::new(), Duration::ZERO);
        assert_eq!(paced.shard_count(), 64);
        // The first 64 process ids land on 64 distinct shards, so they
        // never touch one another's pacing lock.
        let mut shards: Vec<usize> = (0..64).map(|p| paced.shard_of(p)).collect();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(shards.len(), 64);
        // Beyond that the mapping wraps but stays stable.
        assert_eq!(paced.shard_of(64), paced.shard_of(0));
        assert_eq!(paced.shard_of(130), paced.shard_of(2));
    }

    #[test]
    fn pacing_does_not_serialize_distinct_processes() {
        // Regression test for the old single-`Mutex<HashMap>` layout: P
        // processes pacing concurrently must finish in about the per-process
        // pacing time (K−1 enforced gaps), not P times that. The bound sits
        // halfway to the fully serialized cost so scheduler noise cannot
        // trip it, while genuine cross-process serialization still would.
        let processes: u32 = 8;
        let ops: u32 = 3;
        let delay = Duration::from_millis(20);
        let paced = LocallyPacedCounter::new(FetchAddCounter::new(), delay);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for p in 0..processes {
                let paced = &paced;
                s.spawn(move || {
                    for _ in 0..ops {
                        paced.next_for(p as usize);
                    }
                });
            }
        });
        let elapsed = t0.elapsed();
        let concurrent = delay * (ops - 1);
        let serialized = delay * (ops - 1) * processes;
        assert!(
            elapsed >= concurrent,
            "pacing gaps must still be enforced: {elapsed:?} < {concurrent:?}"
        );
        assert!(
            elapsed < serialized / 2,
            "distinct processes serialized through pacing state: {elapsed:?} \
             (fully serial would be {serialized:?})"
        );
        // Values stay dense through the sharded bookkeeping.
        assert_eq!(paced.inner().next(), u64::from(processes * ops));
    }

    #[test]
    fn zero_delay_is_a_transparent_wrapper() {
        let paced = LocallyPacedCounter::new(FetchAddCounter::new(), Duration::ZERO);
        let values: Vec<u64> = (0..10).map(|_| paced.next_for(0)).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
        assert_eq!(paced.local_delay(), Duration::ZERO);
        assert_eq!(paced.inner().next(), 10);
    }
}
