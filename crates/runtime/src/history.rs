//! Wall-clock operation recording for real threaded runs.
//!
//! [`drive`] runs a multi-threaded increment workload against any
//! [`ProcessCounter`], timestamping every operation in integer nanoseconds
//! against a common monotonic clock ([`cnet_util::time::Clock`]), and
//! returns [`RecordedOp`]s convertible to [`cnet_core::Op`] — so the
//! consistency checkers and fraction meters of `cnet-core` apply to real
//! executions exactly as they do to simulated ones. [`stream_records`]
//! feeds a finished batch straight into any [`OpSink`] (e.g. the online
//! monitors); for auditing *while* the run executes, see
//! [`crate::recorder`].

use crate::ProcessCounter;
use cnet_core::op::Op;
use cnet_core::trace::OpSink;
use cnet_util::time::Clock;
use std::thread;

/// One recorded increment operation from a threaded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordedOp {
    /// The process (thread index) that performed the operation.
    pub process: usize,
    /// Nanoseconds since the workload's epoch at which the operation
    /// started.
    pub enter_ns: u64,
    /// Nanoseconds since the epoch at which the value was obtained.
    pub exit_ns: u64,
    /// The value obtained.
    pub value: u64,
}

impl RecordedOp {
    /// Converts to the checker-facing operation record. Values are unique in
    /// a counting run, so the value doubles as the tiebreak.
    pub fn to_op(self) -> Op {
        Op {
            process: self.process,
            enter_ns: self.enter_ns,
            enter_seq: self.value as usize,
            exit_ns: self.exit_ns,
            exit_seq: self.value as usize,
            value: self.value,
        }
    }
}

/// Converts a batch of recorded operations for the `cnet-core` checkers.
pub fn to_ops(records: &[RecordedOp]) -> Vec<Op> {
    records.iter().map(|r| r.to_op()).collect()
}

/// Streams a finished batch of records into a sink in enter order (the
/// order the online monitors require). Returns the event count.
pub fn stream_records(records: &[RecordedOp], sink: &mut impl OpSink) -> usize {
    let mut ops = to_ops(records);
    ops.sort_by_key(|o| o.enter_key());
    let n = ops.len();
    for op in ops {
        sink.record(op);
    }
    n
}

/// A threaded increment workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Number of threads (= processes).
    pub threads: usize,
    /// Increments each thread performs, back to back.
    pub increments_per_thread: usize,
}

/// Runs the workload and returns every operation, timestamped.
///
/// # Example
///
/// ```
/// use cnet_runtime::{drive, FetchAddCounter, Workload};
/// use cnet_core::consistency::is_linearizable;
/// use cnet_runtime::history::to_ops;
///
/// let records = drive(&FetchAddCounter::new(), Workload { threads: 4, increments_per_thread: 50 });
/// assert_eq!(records.len(), 200);
/// // A single fetch-and-add word is linearizable.
/// assert!(is_linearizable(&to_ops(&records)));
/// ```
pub fn drive<C: ProcessCounter>(counter: &C, workload: Workload) -> Vec<RecordedOp> {
    let clock = Clock::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..workload.threads)
            .map(|p| {
                let clock = &clock;
                s.spawn(move || {
                    let mut ops = Vec::with_capacity(workload.increments_per_thread);
                    for _ in 0..workload.increments_per_thread {
                        let enter = clock.raw();
                        let value = counter.next_for(p);
                        let exit = clock.raw();
                        ops.push((enter, exit, value));
                    }
                    ops.into_iter()
                        .map(|(enter, exit, value)| RecordedOp {
                            process: p,
                            enter_ns: clock.raw_to_ns(enter),
                            exit_ns: clock.raw_to_ns(exit),
                            value,
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::SharedNetworkCounter;
    use crate::FetchAddCounter;
    use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
    use cnet_core::fractions::non_linearizability_fraction;
    use cnet_topology::construct::bitonic;

    #[test]
    fn drive_records_every_operation() {
        let counter = FetchAddCounter::new();
        let records = drive(&counter, Workload { threads: 3, increments_per_thread: 40 });
        assert_eq!(records.len(), 120);
        let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..120).collect::<Vec<_>>());
        for r in &records {
            assert!(r.enter_ns <= r.exit_ns);
        }
    }

    #[test]
    fn fetch_add_histories_are_linearizable() {
        let counter = FetchAddCounter::new();
        let records = drive(&counter, Workload { threads: 4, increments_per_thread: 100 });
        let ops = to_ops(&records);
        assert!(is_linearizable(&ops));
        assert!(is_sequentially_consistent(&ops));
        assert_eq!(non_linearizability_fraction(&ops), 0.0);
    }

    #[test]
    fn network_histories_are_gap_free_and_checkable() {
        let net = bitonic(8).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        let records = drive(&counter, Workload { threads: 8, increments_per_thread: 100 });
        let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
        values.sort_unstable();
        assert_eq!(values, (0..800).collect::<Vec<_>>());
        // The fraction meters run on real histories; counting networks give
        // no hard consistency guarantee here, so only sanity-bound them.
        let ops = to_ops(&records);
        let f = non_linearizability_fraction(&ops);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn per_thread_enter_times_increase() {
        let counter = FetchAddCounter::new();
        let records = drive(&counter, Workload { threads: 2, increments_per_thread: 50 });
        for p in 0..2 {
            let mine: Vec<_> = records.iter().filter(|r| r.process == p).collect();
            assert!(mine.windows(2).all(|w| w[0].exit_ns <= w[1].enter_ns));
        }
    }

    #[test]
    fn streamed_records_match_batch_verdicts() {
        use cnet_core::trace::StreamingAuditor;
        let counter = FetchAddCounter::new();
        let records = drive(&counter, Workload { threads: 3, increments_per_thread: 60 });
        let mut aud = StreamingAuditor::new();
        let n = stream_records(&records, &mut aud);
        assert_eq!(n, 180);
        assert!(aud.is_linearizable());
        assert!(aud.is_sequentially_consistent());
        assert_eq!(aud.f_nl(), 0.0);
    }
}
