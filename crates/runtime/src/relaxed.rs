//! Relaxed counting backends: spend ordering to buy throughput, and let
//! the meters say exactly how much ordering was spent.
//!
//! The paper proves sequential consistency is strictly cheaper than
//! linearizability for counting networks; the relaxation literature
//! (MultiQueues, *Distributionally Linearizable Data Structures*, arXiv
//! 1804.01018; quantitative quiescent consistency, arXiv 1402.4043) pushes
//! the same axis further: give up *bounded amounts* of ordering and get
//! shallower, faster structures back. This module holds the workspace's
//! two deliberately-relaxed [`ProcessCounter`] backends:
//!
//! * [`RelaxedCounter`] — `k` stride-`k` sub-counters behind a wait-free
//!   round-robin ticket dealer. Two uncontended-width atomics per token
//!   (versus one atomic *per network layer* for a compiled traversal), a
//!   hard `0..n` multiset guarantee under **any** schedule, and a proven
//!   per-op lateness bound of `(k−1)·P` (`P` = in-flight tokens).
//! * [`EliminationCounter`] — an elimination array in front of the
//!   compiled network traversal: two colliding tokens split one width-2
//!   batched traversal between them, halving pressure on the network's
//!   balancers; tokens that miss fall through to the ordinary traversal
//!   (the toggle path), so low-contention behaviour is unchanged.
//!
//! # Why the dealer is round-robin, not random d-choice
//!
//! A MultiQueue picks `d` random sub-structures and serves the best of
//! them. For counters that guarantee is *distributional*: an adversarial
//! schedule can starve one sub-counter and leave holes in the handed-out
//! set, so "the values are a permutation of `0..n`" would hold only in
//! expectation. This workspace's acceptance bar (and its audit tooling)
//! demands the multiset property **unconditionally** — only *ordering* may
//! relax. The ticket dealer is the degenerate, deterministic form of
//! d-choice that restores the guarantee: dealing tickets round-robin makes
//! every sub-counter's arrival count step-shaped under any schedule
//! (dispatch counts per bank differ by at most one, in residue order), and
//! a step-shaped family of stride-`k` counters hands out exactly `0..n` —
//! the same argument that makes a balancer network count. What remains
//! relaxed is *when* each value appears: a token can park between taking
//! its ticket and touching its bank, so later entrants overtake it and the
//! audit measures genuine, bounded non-linearizability instead of a clean
//! verdict.
//!
//! # The lateness bound
//!
//! Let `P` bound the tokens in flight (dispatched, bank not yet touched) —
//! `P ≤ threads` when every thread issues single tokens. For a token with
//! ticket `t`, bank `j`, value `v = j + k·c`: any bank `j′` has received at
//! most `⌈t/k⌉` dispatches before ours (round-robin), and our own bank had
//! at least `⌊t/k⌋ − (P−1)` of its dispatches already served (the rest are
//! parked), so `c ≥ ⌊t/k⌋ − P + 1`. A completely-preceding finished token
//! on bank `j′` with a larger value must be one of that bank's takes
//! numbered `≥ c`, of which there are at most `⌈t/k⌉ − c ≤ P`. Summed over
//! the `k−1` other banks (our own bank's earlier takes are all smaller):
//!
//! > `lateness ≤ (k−1)·P`.
//!
//! The property test in this module drives real schedules through the
//! [`StreamingQqcMeter`](cnet_core::trace::StreamingQqcMeter) and holds
//! the measurement to that bound.

use crate::counter::SharedNetworkCounter;
use crate::recorder::TraceRecorder;
use crate::ProcessCounter;
use cnet_topology::Network;
use cnet_util::sync::atomic::{AtomicU64, Ordering};
use cnet_util::sync::{Backoff, CachePadded};
use std::sync::Arc;

/// Default sub-counter count for the relaxed backends (`--sub-counters`).
pub const DEFAULT_SUB_COUNTERS: usize = 8;

/// A wait-free relaxed counter: a round-robin ticket dealer in front of
/// `k` cache-padded stride-`k` sub-counters. See the module docs for the
/// design and its guarantees.
#[derive(Debug)]
pub struct RelaxedCounter {
    /// The dealer: ticket `t` sends its token to bank `t % k`.
    tickets: CachePadded<AtomicU64>,
    /// Bank `j` hands out `j, j+k, j+2k, …` in order.
    banks: Box<[CachePadded<AtomicU64>]>,
    recorder: Option<Arc<TraceRecorder>>,
}

impl RelaxedCounter {
    /// A relaxed counter over `k` sub-counters.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> RelaxedCounter {
        assert!(k > 0, "RelaxedCounter needs at least one sub-counter");
        RelaxedCounter {
            tickets: CachePadded::new(AtomicU64::new(0)),
            banks: (0..k).map(|j| CachePadded::new(AtomicU64::new(j as u64))).collect(),
            recorder: None,
        }
    }

    /// Like [`new`](Self::new), with every operation recorded into
    /// `recorder` (process `p` writes shard `p`).
    pub fn with_recorder(k: usize, recorder: Arc<TraceRecorder>) -> RelaxedCounter {
        let mut c = RelaxedCounter::new(k);
        c.recorder = Some(recorder);
        c
    }

    /// Number of sub-counters.
    pub fn sub_counters(&self) -> usize {
        self.banks.len()
    }

    /// Tokens served by each sub-counter so far (quiescent snapshot).
    pub fn sub_counts(&self) -> Vec<u64> {
        let k = self.banks.len() as u64;
        self.banks
            .iter()
            .enumerate()
            .map(|(j, b)| (b.load(Ordering::Acquire) - j as u64) / k)
            .collect()
    }

    /// One token: take a ticket, touch the dealt bank. Both steps are
    /// single wait-free RMWs; the park window between them is the entire
    /// source of the measured relaxation.
    #[inline]
    fn take(&self) -> u64 {
        let k = self.banks.len() as u64;
        let t = self.tickets.fetch_add(1, Ordering::AcqRel);
        self.banks[(t % k) as usize].fetch_add(k, Ordering::AcqRel)
    }
}

impl ProcessCounter for RelaxedCounter {
    fn next_for(&self, process: usize) -> u64 {
        match &self.recorder {
            None => self.take(),
            Some(rec) => {
                let value = self.take();
                rec.record(process, value);
                value
            }
        }
    }

    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        let k = self.banks.len() as u64;
        // Deal n consecutive tickets in one RMW, then touch each bank that
        // received any of them once: one fetch_add serves all of a bank's
        // share, handing out consecutive stride-k values.
        let first = self.tickets.fetch_add(n as u64, Ordering::AcqRel);
        let mut values = Vec::with_capacity(n);
        let mut base = vec![0u64; self.banks.len().min(n)];
        let mut dealt = vec![0u64; self.banks.len().min(n)];
        // Banks are touched in ticket order, so per-bank values ascend in
        // the same order the tickets were dealt.
        let lanes = base.len() as u64;
        for (i, slot) in base.iter_mut().enumerate() {
            let t = first + i as u64;
            let share = (n as u64 - i as u64).div_ceil(lanes);
            *slot = self.banks[(t % k) as usize].fetch_add(k * share, Ordering::AcqRel);
        }
        for i in 0..n as u64 {
            let lane = (i as usize) % base.len();
            values.push(base[lane] + k * dealt[lane]);
            dealt[lane] += 1;
        }
        if let Some(rec) = &self.recorder {
            rec.record_batch(process, &values);
        }
        values
    }
}

/// Elimination-slot states, packed into one atomic word: the low two bits
/// tag the state, and a `PAID` word carries the deposited value in the
/// high bits.
const EMPTY: u64 = 0;
const WAITING: u64 = 1;
const CLAIMED: u64 = 2;
const PAID_TAG: u64 = 3;
const TAG_BITS: u32 = 2;

#[inline]
fn pack_paid(value: u64) -> u64 {
    (value << TAG_BITS) | PAID_TAG
}

/// How long a waiter spins before retracting its offer, in slot reads.
/// Small on purpose: on an uncontended (or single-core) host the network
/// fallback is the fast path.
const SPIN_LIMIT: u32 = 16;

/// After this many consecutive collision-less probes the counter sends
/// most tokens straight to the traversal, re-probing the array only
/// occasionally — the \[SZ96\] adaptive strategy, which keeps the
/// low-contention path as cheap as the plain compiled backend.
const MISS_BACKOFF: u64 = 8;

/// An elimination array in front of the compiled network traversal.
///
/// Two concurrent tokens that meet on a slot are both served by **one**
/// width-2 batched traversal (the partner runs it and deposits one of the
/// two values in the slot), so a collision halves the balancer traffic the
/// pair would otherwise generate. Tokens that find no partner fall through
/// to the ordinary per-token traversal — under low contention the array is
/// skipped entirely after a few misses, so the backend degrades to the
/// plain compiled counter plus one streak check.
///
/// The multiset guarantee is inherited, not re-proven: every value still
/// comes out of the inner network's counters (singly or as a width-2
/// batch), so the handed-out set is exactly the network's — the exchange
/// only moves *which token carries which value*, which is precisely the
/// reordering the QQC meter prices. The exactly-once property of the
/// exchange itself (a pair never double-serves; a missed exchange falls
/// through) is model-checked exhaustively in `tests/model_check.rs`.
#[derive(Debug)]
pub struct EliminationCounter {
    inner: SharedNetworkCounter,
    slots: Vec<CachePadded<AtomicU64>>,
    /// Probe entropy, salted per operation like the diffracting prism.
    salt: CachePadded<AtomicU64>,
    /// Tokens served via a collision (both partners counted).
    eliminated: AtomicU64,
    /// Tokens served by the fallback traversal.
    fell_through: AtomicU64,
    /// Consecutive collision-less probes (adaptation signal).
    miss_streak: AtomicU64,
    recorder: Option<Arc<TraceRecorder>>,
}

impl EliminationCounter {
    /// An elimination front-end of `slots` exchange slots over the compiled
    /// traversal of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn new(net: &Network, slots: usize) -> EliminationCounter {
        assert!(slots > 0, "EliminationCounter needs at least one slot");
        EliminationCounter {
            inner: SharedNetworkCounter::new(net),
            slots: (0..slots).map(|_| CachePadded::new(AtomicU64::new(EMPTY))).collect(),
            salt: CachePadded::new(AtomicU64::new(0)),
            eliminated: AtomicU64::new(0),
            fell_through: AtomicU64::new(0),
            miss_streak: AtomicU64::new(0),
            recorder: None,
        }
    }

    /// Like [`new`](Self::new), with every operation recorded into
    /// `recorder`. The recording happens at this counter's boundaries, so
    /// a waiter's audited interval covers its time parked in the array.
    pub fn with_recorder(
        net: &Network,
        slots: usize,
        recorder: Arc<TraceRecorder>,
    ) -> EliminationCounter {
        let mut c = EliminationCounter::new(net, slots);
        c.recorder = Some(recorder);
        c
    }

    /// `(eliminated, fell_through)` token counts. Every completed token is
    /// in exactly one bucket.
    pub fn elimination_stats(&self) -> (u64, u64) {
        (self.eliminated.load(Ordering::Acquire), self.fell_through.load(Ordering::Acquire))
    }

    /// Spins until the partner that claimed our offer deposits a value.
    /// The partner is mid-traversal, so this terminates once it is
    /// scheduled; `snooze` yields so it always is.
    fn await_payment(&self, slot: usize) -> u64 {
        let backoff = Backoff::new();
        loop {
            let w = self.slots[slot].load(Ordering::Acquire);
            if w & PAID_TAG == PAID_TAG {
                self.slots[slot].store(EMPTY, Ordering::Release);
                self.eliminated.fetch_add(1, Ordering::Relaxed);
                return w >> TAG_BITS;
            }
            backoff.snooze();
        }
    }

    /// One token through the array-then-network path.
    fn take(&self, process: usize) -> u64 {
        let salt = self.salt.fetch_add(1, Ordering::Relaxed);
        let missing = self.miss_streak.load(Ordering::Relaxed) >= MISS_BACKOFF;
        // Adaptive fallback: on a long miss streak, only every
        // MISS_BACKOFF-th token re-probes the array.
        if !missing || salt % MISS_BACKOFF == 0 {
            let entropy = (process as u64).wrapping_mul(0x9e37_79b9).wrapping_add(salt);
            let slot = (entropy % self.slots.len() as u64) as usize;
            match self.slots[slot].load(Ordering::Acquire) {
                EMPTY => {
                    if self.offer_and_wait(slot) {
                        return self.await_payment(slot);
                    }
                }
                WAITING => {
                    if self
                        .slots[slot]
                        .compare_exchange(WAITING, CLAIMED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // We are the partner: one width-2 batched traversal
                        // serves both tokens; the waiter gets the first
                        // value, we keep the second.
                        let pair = self.inner.next_batch_for(process, 2);
                        self.slots[slot].store(pack_paid(pair[0]), Ordering::Release);
                        self.eliminated.fetch_add(1, Ordering::Relaxed);
                        self.miss_streak.store(0, Ordering::Relaxed);
                        return pair[1];
                    }
                }
                _ => {}
            }
            self.miss_streak.fetch_add(1, Ordering::Relaxed);
        }
        self.fell_through.fetch_add(1, Ordering::Relaxed);
        self.inner.next_for(process)
    }

    /// Parks an offer in `slot` and spins briefly. Returns `true` if a
    /// partner committed to serving us (payment is due), `false` if the
    /// offer was retracted (caller falls through to the traversal).
    fn offer_and_wait(&self, slot: usize) -> bool {
        if self
            .slots[slot]
            .compare_exchange(EMPTY, WAITING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        for _ in 0..SPIN_LIMIT {
            if self.slots[slot].load(Ordering::Acquire) != WAITING {
                // A partner moved us to CLAIMED (or already PAID): it is
                // committed — the value is ours even if we must wait.
                self.miss_streak.store(0, Ordering::Relaxed);
                return true;
            }
        }
        // Timed out: retract. A failed retraction means a partner claimed
        // the offer between our last read and the CAS — the collision
        // stands.
        let retracted = self
            .slots[slot]
            .compare_exchange(WAITING, EMPTY, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if !retracted {
            self.miss_streak.store(0, Ordering::Relaxed);
        }
        !retracted
    }
}

impl ProcessCounter for EliminationCounter {
    fn next_for(&self, process: usize) -> u64 {
        match &self.recorder {
            None => self.take(process),
            Some(rec) => {
                let value = self.take(process);
                rec.record(process, value);
                value
            }
        }
    }

    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        // A batch is already a combining structure: it claims the network
        // once for n tokens, which is strictly better than pairing off in
        // the array. Delegate to the inner batched traversal.
        let values = self.inner.next_batch_for(process, n);
        if let Some(rec) = &self.recorder {
            rec.record_batch(process, &values);
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{drive, stream_records, Workload};
    use cnet_core::trace::StreamingQqcMeter;
    use cnet_topology::construct::bitonic;
    use cnet_util::proptest::prelude::*;
    use std::thread;

    fn assert_permutation(mut values: Vec<u64>, n: u64) {
        values.sort_unstable();
        assert_eq!(values, (0..n).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one sub-counter")]
    fn zero_sub_counters_is_rejected() {
        let _ = RelaxedCounter::new(0);
    }

    #[test]
    fn sequential_relaxed_counts_in_order() {
        let c = RelaxedCounter::new(4);
        let got: Vec<u64> = (0..12).map(|_| c.next_for(0)).collect();
        // One thread never parks between ticket and bank, so the dealer's
        // round-robin makes the values come out exactly in order.
        assert_eq!(got, (0..12).collect::<Vec<_>>());
        assert_eq!(c.sub_counts(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn concurrent_relaxed_values_are_dense() {
        let c = RelaxedCounter::new(8);
        let threads = 4;
        let per = 2_000;
        let mut values = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    let c = &c;
                    s.spawn(move || (0..per).map(|_| c.next_for(p)).collect::<Vec<u64>>())
                })
                .collect();
            for h in handles {
                values.extend(h.join().unwrap());
            }
        });
        assert_permutation(values, (threads * per) as u64);
    }

    #[test]
    fn relaxed_batches_are_dense_and_mixable_with_singles() {
        let c = RelaxedCounter::new(8);
        let mut values = c.next_batch_for(0, 5);
        values.push(c.next_for(1));
        values.extend(c.next_batch_for(2, 17));
        values.extend(c.next_batch_for(3, 0));
        values.push(c.next_for(0));
        assert_eq!(values.len(), 24);
        assert_permutation(values, 24);
    }

    #[test]
    fn relaxed_batch_touches_each_bank_once() {
        // A batch larger than k must deal every bank its exact share.
        let c = RelaxedCounter::new(4);
        let values = c.next_batch_for(0, 10);
        assert_permutation(values, 10);
        assert_eq!(c.sub_counts(), vec![3, 3, 2, 2]);
    }

    #[test]
    fn elimination_sequential_values_are_dense() {
        let net = bitonic(4).unwrap();
        let c = EliminationCounter::new(&net, 2);
        let values: Vec<u64> = (0..100).map(|_| c.next_for(0)).collect();
        assert_permutation(values, 100);
        let (eliminated, fell_through) = c.elimination_stats();
        // One thread can never collide with itself.
        assert_eq!(eliminated, 0);
        assert_eq!(fell_through, 100);
    }

    #[test]
    fn elimination_concurrent_values_are_dense_and_stats_account() {
        let net = bitonic(4).unwrap();
        let c = EliminationCounter::new(&net, 2);
        let threads = 4;
        let per = 1_000;
        let mut values = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    let c = &c;
                    s.spawn(move || (0..per).map(|_| c.next_for(p)).collect::<Vec<u64>>())
                })
                .collect();
            for h in handles {
                values.extend(h.join().unwrap());
            }
        });
        assert_permutation(values, (threads * per) as u64);
        let (eliminated, fell_through) = c.elimination_stats();
        assert_eq!(eliminated + fell_through, (threads * per) as u64);
        assert_eq!(eliminated % 2, 0, "collisions come in pairs");
    }

    #[test]
    fn elimination_batches_delegate_to_the_network() {
        let net = bitonic(4).unwrap();
        let c = EliminationCounter::new(&net, 2);
        let mut values = c.next_batch_for(0, 9);
        values.extend(c.next_batch_for(1, 7));
        assert!(c.next_batch_for(2, 0).is_empty());
        assert_permutation(values, 16);
        let (eliminated, _) = c.elimination_stats();
        assert_eq!(eliminated, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        fn relaxed_counter_is_dense_and_lateness_stays_under_the_bound(
            k in 1usize..12,
            threads in 1usize..6,
            per in 1usize..400,
        ) {
            // Whatever schedule the OS produces: the values are a
            // permutation of 0..n, and the measured QQC lateness respects
            // the analytic (k-1)·P bound with P = threads (each thread has
            // at most one token in flight).
            let c = RelaxedCounter::new(k);
            let records = drive(&c, Workload { threads, increments_per_thread: per });
            let mut values: Vec<u64> = records.iter().map(|r| r.value).collect();
            values.sort_unstable();
            let n = (threads * per) as u64;
            prop_assert_eq!(values, (0..n).collect::<Vec<_>>());
            let mut qqc = StreamingQqcMeter::new();
            stream_records(&records, &mut qqc);
            let bound = ((k - 1) * threads) as u64;
            prop_assert!(
                qqc.qqc_max() <= bound,
                "lateness {} exceeds (k-1)*threads = {} (k={}, threads={})",
                qqc.qqc_max(), bound, k, threads
            );
        }
    }
}
