//! A small shutdown idiom shared by every threaded deployment in the
//! workspace: collect worker [`JoinHandle`]s while spawning, then *drain*
//! them — join every one, exactly once, swallowing worker panics so one
//! crashed server thread cannot abort the teardown of its peers.
//!
//! Both [`crate::MessagePassingCounter`] (per-balancer server threads) and
//! `cnet-net`'s `CounterServer` (acceptor + per-connection threads) tear
//! down the same way: signal the threads through their own channel or flag,
//! then [`Drain::join_all`]. Keeping the joining half here means the two
//! deployments cannot drift apart on the subtle parts (idempotence,
//! panicked-worker handling, drop-time draining).

use std::thread::JoinHandle;

/// An owned set of worker threads joined on [`join_all`](Self::join_all)
/// (called automatically on drop). The signal that makes the workers exit
/// is the owner's business — send a shutdown message, flip a flag, close a
/// socket — `Drain` only guarantees the joins happen, once, panics
/// notwithstanding.
///
/// # Example
///
/// ```
/// use cnet_runtime::drain::Drain;
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
///
/// let stop = Arc::new(AtomicBool::new(false));
/// let mut drain = Drain::new();
/// for _ in 0..4 {
///     let stop = Arc::clone(&stop);
///     drain.push(std::thread::spawn(move || {
///         while !stop.load(Ordering::Acquire) {
///             std::thread::yield_now();
///         }
///     }));
/// }
/// stop.store(true, Ordering::Release); // the signal
/// let joined = drain.join_all();       // the drain
/// assert_eq!(joined, 4);
/// ```
#[derive(Debug, Default)]
pub struct Drain {
    handles: Vec<JoinHandle<()>>,
}

impl Drain {
    /// An empty drain.
    pub fn new() -> Self {
        Drain { handles: Vec::new() }
    }

    /// An empty drain with room for `n` handles.
    pub fn with_capacity(n: usize) -> Self {
        Drain { handles: Vec::with_capacity(n) }
    }

    /// Takes ownership of a worker's handle.
    pub fn push(&mut self, handle: JoinHandle<()>) {
        self.handles.push(handle);
    }

    /// The number of handles not yet joined.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether every handle has been joined (or none was ever pushed).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Joins every pending worker, ignoring individual panics, and returns
    /// how many were joined. Idempotent: a second call is a no-op. The
    /// caller must already have signalled the workers to exit, or this
    /// blocks until they do.
    pub fn join_all(&mut self) -> usize {
        let mut joined = 0;
        for h in self.handles.drain(..) {
            let _ = h.join();
            joined += 1;
        }
        joined
    }
}

impl Drop for Drain {
    fn drop(&mut self) {
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn joins_every_worker_once() {
        let ran = Arc::new(AtomicUsize::new(0));
        let mut drain = Drain::with_capacity(3);
        for _ in 0..3 {
            let ran = Arc::clone(&ran);
            drain.push(std::thread::spawn(move || {
                ran.fetch_add(1, Ordering::Release);
            }));
        }
        assert_eq!(drain.len(), 3);
        assert_eq!(drain.join_all(), 3);
        assert_eq!(ran.load(Ordering::Acquire), 3);
        assert!(drain.is_empty());
        assert_eq!(drain.join_all(), 0); // idempotent
    }

    #[test]
    fn panicked_workers_do_not_poison_the_drain() {
        let mut drain = Drain::new();
        drain.push(std::thread::spawn(|| panic!("worker dies")));
        drain.push(std::thread::spawn(|| {}));
        assert_eq!(drain.join_all(), 2);
    }

    #[test]
    fn drop_drains_implicitly() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let mut drain = Drain::new();
            let ran = Arc::clone(&ran);
            drain.push(std::thread::spawn(move || {
                ran.fetch_add(1, Ordering::Release);
            }));
        }
        // Drop joined the worker, so its effect is visible.
        assert_eq!(ran.load(Ordering::Acquire), 1);
    }
}
