//! The compiled traversal engine: a [`cnet_topology::Network`] flattened
//! into contiguous routing tables so the shared-memory hot path is a tight
//! loop over array indices.
//!
//! The graph form of a network is the right representation for analysis —
//! wires, ports, and layers are all first-class — but it is the wrong
//! representation for a traversal that the paper charges *one atomic
//! operation per balancer* (Section 2.7): every hop through the graph pays
//! a wire lookup, an enum match, a balancer deref, and an output-port
//! lookup before it ever touches the balancer word. [`CompiledNetwork`]
//! performs all of that resolution **once, at construction**:
//!
//! * a CSR-style table `routing` holds, for every balancer output port,
//!   the [`Hop`] the token takes next (another balancer, or a counter);
//!   `route_offset[b]` indexes balancer `b`'s slice of it;
//! * `entries[i]` is the first hop from source wire `i`;
//! * `fan[b]` caches balancer `b`'s fan-out, so the traversal never
//!   touches the `Balancer` records at all.
//!
//! The balancer *state* update is also specialized at compile time. A
//! round-robin step is `s ← (s + 1) mod f`; for the ubiquitous fan-out-2
//! balancer that is exactly `fetch_xor(1)`, and for any power-of-two
//! fan-out it is `fetch_add(1)` with the port read modulo `f` — both
//! **wait-free single atomics**, where a `fetch_update` loop can livelock
//! retries under contention. Only irregular fan-outs fall back to a CAS
//! loop, and that loop pays a bounded-spin [`Backoff`] per failure instead
//! of hammering the line.
//!
//! The engine is pure routing: it owns no atomics. Counters that traverse
//! it ([`crate::SharedNetworkCounter`], [`crate::InstrumentedNetworkCounter`],
//! [`crate::MessagePassingCounter`]) own their own (cache-line-padded)
//! state words and either call [`CompiledNetwork::traverse`] or walk the
//! tables themselves.

use cnet_topology::ids::SourceId;
use cnet_topology::network::WireEnd;
use cnet_topology::Network;
use cnet_util::sync::{Backoff, CachePadded};
use cnet_util::sync::atomic::{AtomicUsize, Ordering};

/// Where a token goes after leaving a balancer output port (or entering on
/// a source wire): the next balancer, or a final counter.
///
/// Packed into one word — the low bit tags counters — so the routing table
/// stays dense and a hop is a single load.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Hop(usize);

impl Hop {
    fn balancer(index: usize) -> Hop {
        Hop(index << 1)
    }

    fn counter(index: usize) -> Hop {
        Hop((index << 1) | 1)
    }

    /// `true` if this hop lands on a counter (ends the traversal).
    #[inline]
    pub fn is_counter(self) -> bool {
        self.0 & 1 == 1
    }

    /// The balancer or counter index this hop lands on.
    #[inline]
    pub fn index(self) -> usize {
        self.0 >> 1
    }
}

impl std::fmt::Debug for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_counter() {
            write!(f, "Counter({})", self.index())
        } else {
            write!(f, "Balancer({})", self.index())
        }
    }
}

/// A network flattened into contiguous per-balancer routing tables: the
/// compiled form every shared-memory runtime traverses.
///
/// # Example
///
/// ```
/// use cnet_runtime::compiled::CompiledNetwork;
/// use cnet_topology::construct::bitonic;
///
/// let engine = CompiledNetwork::compile(&bitonic(8)?);
/// assert_eq!(engine.fan_in(), 8);
/// assert_eq!(engine.fan_out(), 8);
/// assert_eq!(engine.size(), 24);
/// // A token entering on wire 3, always taking port 0, reaches a counter.
/// let mut hop = engine.entry(3);
/// while !hop.is_counter() {
///     hop = engine.hops(hop.index())[0];
/// }
/// assert!(hop.index() < 8);
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledNetwork {
    fan_in: usize,
    fan_out: usize,
    depth: usize,
    /// First hop from each source wire.
    entries: Vec<Hop>,
    /// CSR offsets: balancer `b`'s output hops are
    /// `routing[route_offset[b]..route_offset[b + 1]]`.
    route_offset: Vec<usize>,
    /// All output hops, balancer-major, port-minor.
    routing: Vec<Hop>,
    /// Cached fan-out per balancer (`route_offset[b+1] - route_offset[b]`,
    /// kept flat so the hot loop avoids the extra offset load).
    fan: Vec<usize>,
    /// Whether every balancer has fan-out 2 (true for all the classic
    /// constructions). Then `route_offset[b] == 2 * b`, and [`Self::traverse`]
    /// runs a specialized loop with no fan or offset loads at all.
    uniform_binary: bool,
    /// Balancer indices in topological order (every wire goes from an
    /// earlier entry to a later one). [`Self::traverse_batch`] sweeps this
    /// order so a balancer's whole sub-batch has accumulated before its
    /// single atomic fires. Networks are validated acyclic at build time,
    /// so the order always exists.
    topo: Vec<usize>,
}

/// Resolves a wire's terminus to a hop.
fn hop_of(end: WireEnd) -> Hop {
    match end {
        WireEnd::Balancer { balancer, .. } => Hop::balancer(balancer.index()),
        WireEnd::Sink(sink) => Hop::counter(sink.index()),
    }
}

/// Kahn's algorithm over the balancer→balancer hops: the returned order
/// visits every balancer after all of its predecessors.
fn topo_order(route_offset: &[usize], routing: &[Hop], size: usize) -> Vec<usize> {
    let mut indegree = vec![0usize; size];
    for hop in routing {
        if !hop.is_counter() {
            indegree[hop.index()] += 1;
        }
    }
    let mut order: Vec<usize> = (0..size).filter(|&b| indegree[b] == 0).collect();
    let mut next = 0;
    while next < order.len() {
        let b = order[next];
        next += 1;
        for hop in &routing[route_offset[b]..route_offset[b + 1]] {
            if !hop.is_counter() {
                let succ = hop.index();
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    order.push(succ);
                }
            }
        }
    }
    debug_assert_eq!(order.len(), size, "networks are validated acyclic");
    order
}

impl CompiledNetwork {
    /// Flattens `net` into routing tables. All graph resolution — wire
    /// lookups, port maps, balancer records — happens here, once.
    pub fn compile(net: &Network) -> CompiledNetwork {
        let entries: Vec<Hop> = (0..net.fan_in())
            .map(|i| hop_of(net.wire(net.source_wire(SourceId(i))).end))
            .collect();
        let mut route_offset = Vec::with_capacity(net.size() + 1);
        let mut routing = Vec::new();
        let mut fan = Vec::with_capacity(net.size());
        route_offset.push(0);
        for (_, bal) in net.balancers() {
            for &wire in bal.outputs() {
                routing.push(hop_of(net.wire(wire).end));
            }
            fan.push(bal.fan_out());
            route_offset.push(routing.len());
        }
        let uniform_binary = fan.iter().all(|&f| f == 2);
        let topo = topo_order(&route_offset, &routing, fan.len());
        CompiledNetwork {
            fan_in: net.fan_in(),
            fan_out: net.fan_out(),
            depth: net.depth(),
            entries,
            route_offset,
            routing,
            fan,
            uniform_binary,
            topo,
        }
    }

    /// The network's fan-in (number of input wires).
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// The network's fan-out (number of output wires / counters).
    #[inline]
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The number of balancers.
    #[inline]
    pub fn size(&self) -> usize {
        self.fan.len()
    }

    /// The network depth `d(G)`.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The first hop from source wire `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input >= fan_in()`.
    #[inline]
    pub fn entry(&self, input: usize) -> Hop {
        self.entries[input]
    }

    /// Balancer `balancer`'s output hops, in port order.
    #[inline]
    pub fn hops(&self, balancer: usize) -> &[Hop] {
        &self.routing[self.route_offset[balancer]..self.route_offset[balancer + 1]]
    }

    /// Balancer `balancer`'s fan-out.
    #[inline]
    pub fn balancer_fan_out(&self, balancer: usize) -> usize {
        self.fan[balancer]
    }

    /// Routes one token from source wire `input` to a counter, asking
    /// `choose_port(balancer, fan_out)` for the output port at every
    /// balancer; returns the counter index reached.
    ///
    /// This is the generic walk — the closure supplies the balancer-state
    /// discipline, so the same tight loop serves the atomic counters, the
    /// instrumented counter (which counts retries), and tests that force
    /// fixed ports.
    ///
    /// # Panics
    ///
    /// Panics if `input >= fan_in()` or the closure returns a port out of
    /// range.
    #[inline]
    pub fn route(&self, input: usize, mut choose_port: impl FnMut(usize, usize) -> usize) -> usize {
        assert!(input < self.fan_in, "input wire {input} out of range");
        let mut hop = self.entries[input];
        while !hop.is_counter() {
            let b = hop.index();
            let base = self.route_offset[b];
            let port = choose_port(b, self.fan[b]);
            hop = self.routing[base + port];
        }
        hop.index()
    }

    /// Routes one token from `input` through shared atomic balancer words
    /// to a counter: the lock-free hot path. Returns the counter reached.
    ///
    /// The round-robin update is specialized by fan-out — `fetch_xor` for
    /// 2, masked `fetch_add` for other powers of two (both wait-free), and
    /// a backoff-paced CAS loop otherwise — so on the classic
    /// constructions every balancer visit is **one** atomic instruction
    /// with no retry loop at all.
    ///
    /// # Panics
    ///
    /// Panics if `input >= fan_in()` or `balancers.len() != size()`.
    #[inline]
    pub fn traverse(&self, input: usize, balancers: &[CachePadded<AtomicUsize>]) -> usize {
        assert_eq!(balancers.len(), self.fan.len(), "one state word per balancer");
        if self.uniform_binary {
            // All-binary network (every classic construction): the CSR
            // offset of balancer `b` is just `2 * b`, so the loop touches
            // only the state word and the routing table — one atomic and
            // one load per hop.
            assert!(input < self.fan_in, "input wire {input} out of range");
            let mut hop = self.entries[input];
            while !hop.is_counter() {
                let b = hop.index();
                let port = balancers[b].fetch_xor(1, Ordering::AcqRel) & 1;
                hop = self.routing[2 * b + port];
            }
            return hop.index();
        }
        self.route(input, |b, f| {
            let word = &*balancers[b];
            if f == 2 {
                // (s + 1) mod 2 == s xor 1: a single wait-free atomic.
                word.fetch_xor(1, Ordering::AcqRel)
            } else if f.is_power_of_two() {
                // Wrapping add preserves congruence mod a power of two, so
                // the word may run ahead of the paper's state `s`; the port
                // handed out is still exactly round-robin.
                word.fetch_add(1, Ordering::AcqRel) & (f - 1)
            } else {
                let backoff = Backoff::new();
                let mut s = word.load(Ordering::Acquire);
                loop {
                    match word.compare_exchange_weak(
                        s,
                        (s + 1) % f,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(prev) => break prev,
                        Err(actual) => {
                            backoff.snooze();
                            s = actual;
                        }
                    }
                }
            }
        })
    }

    /// Routes `k` tokens from `input` through the shared balancer words in
    /// one sweep, charging **at most one atomic per balancer for the whole
    /// batch** instead of one per balancer per token. On return,
    /// `sink_counts[j]` holds how many of the `k` tokens reached counter
    /// `j` (`sink_counts` is resized to `fan_out()` and overwritten).
    ///
    /// # Why one atomic suffices
    ///
    /// A balancer is round-robin state plus fan-out `f`: `n` consecutive
    /// tokens arriving at state `s` take ports `s, s+1, …, s+n−1 (mod f)`
    /// and leave the state at `(s + n) mod f`. Both facts are pure
    /// arithmetic in `(s, n, f)`, so the balancer's entire contribution to
    /// the batch is captured by atomically advancing the state by `n` and
    /// reading the prior `s`: port `p` receives `⌊n/f⌋ + [((p−s) mod f) <
    /// n mod f]` tokens. The advance is specialized exactly like
    /// [`Self::traverse`]: `fetch_xor(1)` when `f == 2` and `n` is odd, a
    /// masked `fetch_add(n)` for other powers of two (congruence mod a
    /// power of two survives wrapping), a backoff-paced CAS advancing by
    /// `n mod f` otherwise — and when `n ≡ 0 (mod f)` the split is uniform
    /// and the state unchanged, so the balancer is not touched at all.
    ///
    /// Balancers are visited in topological order, so every upstream
    /// sub-batch has been split before a downstream balancer fires. From a
    /// quiescent state the resulting per-counter counts equal `k`
    /// sequential [`Self::traverse`] calls exactly (induction over the
    /// topological order: same arrival counts and same starting state at
    /// every balancer imply the same port split). Under concurrency each
    /// atomic advance claims `n` consecutive round-robin slots, so the
    /// gap-freedom argument of the single-token path carries over
    /// unchanged.
    ///
    /// `k == 0` resets `sink_counts` to zeros and touches no balancer
    /// word — an empty batch is free, matching the
    /// `ProcessCounter::next_batch_for` contract.
    ///
    /// # Panics
    ///
    /// Panics if `input >= fan_in()` or `balancers.len() != size()`.
    pub fn traverse_batch(
        &self,
        input: usize,
        k: usize,
        balancers: &[CachePadded<AtomicUsize>],
        sink_counts: &mut Vec<usize>,
    ) {
        assert_eq!(balancers.len(), self.fan.len(), "one state word per balancer");
        assert!(input < self.fan_in, "input wire {input} out of range");
        sink_counts.clear();
        sink_counts.resize(self.fan_out, 0);
        if k == 0 {
            return;
        }
        // Tokens waiting at each balancer, accumulated wavefront-style.
        let mut waiting = vec![0usize; self.fan.len()];
        match self.entries[input] {
            hop if hop.is_counter() => {
                sink_counts[hop.index()] += k;
                return;
            }
            hop => waiting[hop.index()] = k,
        }
        for &b in &self.topo {
            let n = waiting[b];
            if n == 0 {
                continue;
            }
            let f = self.fan[b];
            let rem = n % f;
            let s = if rem == 0 {
                // Uniform split, state unchanged: zero atomics.
                0
            } else if f == 2 {
                // (s + n) mod 2 == s xor 1 for odd n: one wait-free atomic
                // that also returns the prior state.
                balancers[b].fetch_xor(1, Ordering::AcqRel) & 1
            } else if f.is_power_of_two() {
                // Wrapping add preserves congruence mod a power of two.
                balancers[b].fetch_add(n, Ordering::AcqRel) & (f - 1)
            } else {
                let word = &*balancers[b];
                let backoff = Backoff::new();
                let mut cur = word.load(Ordering::Acquire);
                loop {
                    match word.compare_exchange_weak(
                        cur,
                        (cur + rem) % f,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(prev) => break prev,
                        Err(actual) => {
                            backoff.snooze();
                            cur = actual;
                        }
                    }
                }
            };
            let base = self.route_offset[b];
            let share = n / f;
            for p in 0..f {
                // Ports s, s+1, …, s+rem−1 (mod f) carry the remainder.
                let count = share + usize::from((p + f - s) % f < rem);
                if count == 0 {
                    continue;
                }
                let hop = self.routing[base + p];
                if hop.is_counter() {
                    sink_counts[hop.index()] += count;
                } else {
                    waiting[hop.index()] += count;
                }
            }
        }
        debug_assert_eq!(
            sink_counts.iter().sum::<usize>(),
            k,
            "feed-forward conservation: every token reaches exactly one sink"
        );
    }

    /// A fresh bank of balancer state words, one per balancer, each on its
    /// own cache line, all in the initial state 0.
    pub fn new_balancer_states(&self) -> Box<[CachePadded<AtomicUsize>]> {
        (0..self.fan.len()).map(|_| CachePadded::new(AtomicUsize::new(0))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::builder::LayeredBuilder;
    use cnet_topology::construct::{bitonic, counting_tree, periodic};
    use cnet_topology::state::NetworkState;

    #[test]
    fn tables_mirror_the_graph() {
        let net = bitonic(8).unwrap();
        let engine = CompiledNetwork::compile(&net);
        assert_eq!(engine.fan_in(), 8);
        assert_eq!(engine.fan_out(), 8);
        assert_eq!(engine.size(), net.size());
        assert_eq!(engine.depth(), net.depth());
        // Every balancer's hop slice matches its fan-out and the graph's
        // wire endpoints.
        for (b, bal) in net.balancers() {
            let hops = engine.hops(b.index());
            assert_eq!(hops.len(), bal.fan_out());
            assert_eq!(engine.balancer_fan_out(b.index()), bal.fan_out());
            for (port, &hop) in hops.iter().enumerate() {
                let end = net.wire(bal.output(port)).end;
                match end {
                    WireEnd::Balancer { balancer, .. } => {
                        assert!(!hop.is_counter());
                        assert_eq!(hop.index(), balancer.index());
                    }
                    WireEnd::Sink(s) => {
                        assert!(hop.is_counter());
                        assert_eq!(hop.index(), s.index());
                    }
                }
            }
        }
    }

    #[test]
    fn route_agrees_with_walk_to_sink() {
        for net in [bitonic(8).unwrap(), periodic(4).unwrap(), counting_tree(8).unwrap()] {
            let engine = CompiledNetwork::compile(&net);
            for input in 0..net.fan_in() {
                for fixed_port in 0..2usize {
                    let compiled = engine.route(input, |_, f| fixed_port.min(f - 1));
                    let graph = net
                        .walk_to_sink(net.source_wire(SourceId(input)), |b| {
                            fixed_port.min(net.balancer(b).fan_out() - 1)
                        })
                        .index();
                    assert_eq!(compiled, graph, "{net} input {input} port {fixed_port}");
                }
            }
        }
    }

    #[test]
    fn traverse_matches_reference_semantics() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap(), counting_tree(8).unwrap()] {
            let engine = CompiledNetwork::compile(&net);
            let states = engine.new_balancer_states();
            let mut reference = NetworkState::new(&net);
            for k in 0..64usize {
                let input = k % net.fan_in();
                let sink = engine.traverse(input, &states);
                assert_eq!(sink, reference.traverse(&net, input).sink.index(), "{net}");
            }
        }
    }

    #[test]
    fn irregular_fan_outs_use_the_cas_path_correctly() {
        // A single (3,3)-balancer: fan-out 3 is not a power of two, so the
        // traversal exercises the CAS fallback. Round-robin must hold.
        let mut lb = LayeredBuilder::new(3);
        lb.balancer(&[0, 1, 2]);
        let net = lb.finish().unwrap();
        let engine = CompiledNetwork::compile(&net);
        let states = engine.new_balancer_states();
        let sinks: Vec<usize> = (0..7).map(|_| engine.traverse(0, &states)).collect();
        assert_eq!(sinks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_input_panics() {
        let engine = CompiledNetwork::compile(&bitonic(2).unwrap());
        let states = engine.new_balancer_states();
        engine.traverse(5, &states);
    }

    /// `k` sequential single-token traversals, tallied per sink.
    fn sequential_histogram(
        engine: &CompiledNetwork,
        input: usize,
        k: usize,
        states: &[CachePadded<AtomicUsize>],
    ) -> Vec<usize> {
        let mut counts = vec![0usize; engine.fan_out()];
        for _ in 0..k {
            counts[engine.traverse(input, states)] += 1;
        }
        counts
    }

    #[test]
    fn batch_matches_sequential_traversals_from_quiescence() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap(), counting_tree(8).unwrap()] {
            let engine = CompiledNetwork::compile(&net);
            for input in 0..engine.fan_in() {
                for k in [0usize, 1, 2, 3, 7, 8, 64, 1001] {
                    let batched = engine.new_balancer_states();
                    let mut counts = Vec::new();
                    engine.traverse_batch(input, k, &batched, &mut counts);
                    let sequential = engine.new_balancer_states();
                    let reference = sequential_histogram(&engine, input, k, &sequential);
                    assert_eq!(counts, reference, "{net} input {input} k {k}");
                }
            }
        }
    }

    #[test]
    fn batch_interleaves_with_single_tokens() {
        // Singles and batches share the same state words, so a batch must
        // pick up the round-robin exactly where the singles left it (and
        // vice versa) on every specialization: parity xor, masked add, CAS.
        let mut lb = LayeredBuilder::new(3);
        lb.balancer(&[0, 1, 2]);
        let irregular = lb.finish().unwrap();
        for net in [bitonic(8).unwrap(), counting_tree(8).unwrap(), irregular] {
            let engine = CompiledNetwork::compile(&net);
            let mixed = engine.new_balancer_states();
            let sequential = engine.new_balancer_states();
            let mut mixed_counts = vec![0usize; engine.fan_out()];
            let mut reference = vec![0usize; engine.fan_out()];
            let mut scratch = Vec::new();
            for (round, k) in [1usize, 5, 2, 16, 3, 9].into_iter().enumerate() {
                let input = round % engine.fan_in();
                if round % 2 == 0 {
                    for _ in 0..k {
                        mixed_counts[engine.traverse(input, &mixed)] += 1;
                    }
                } else {
                    engine.traverse_batch(input, k, &mixed, &mut scratch);
                    for (sink, n) in scratch.iter().enumerate() {
                        mixed_counts[sink] += n;
                    }
                }
                for (sink, n) in
                    sequential_histogram(&engine, input, k, &sequential).into_iter().enumerate()
                {
                    reference[sink] += n;
                }
                assert_eq!(mixed_counts, reference, "{net} after round {round}");
            }
        }
    }

    #[test]
    fn batch_round_robin_on_the_irregular_cas_path() {
        // One (3,3)-balancer, batch of 7 from state 0: ports 0,1,2 repeat
        // so the counts are [3,2,2] and the state ends at 7 mod 3 = 1.
        let mut lb = LayeredBuilder::new(3);
        lb.balancer(&[0, 1, 2]);
        let net = lb.finish().unwrap();
        let engine = CompiledNetwork::compile(&net);
        let states = engine.new_balancer_states();
        let mut counts = Vec::new();
        engine.traverse_batch(0, 7, &states, &mut counts);
        assert_eq!(counts, vec![3, 2, 2]);
        assert_eq!(engine.traverse(0, &states), 1);
    }

    #[test]
    fn uniform_batches_leave_balancer_state_untouched() {
        // A multiple-of-fan batch splits uniformly without an atomic; the
        // next single token must still come out on the original port.
        let net = bitonic(8).unwrap();
        let engine = CompiledNetwork::compile(&net);
        let states = engine.new_balancer_states();
        let first = engine.traverse(0, &states);
        let mut counts = Vec::new();
        let fresh = engine.new_balancer_states();
        engine.traverse_batch(0, 1024, &fresh, &mut counts);
        assert_eq!(counts.iter().sum::<usize>(), 1024);
        assert!(counts.iter().all(|&c| c == 1024 / 8), "uniform split: {counts:?}");
        assert_eq!(engine.traverse(0, &fresh), first, "state must be unchanged");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_batch_input_panics() {
        let engine = CompiledNetwork::compile(&bitonic(2).unwrap());
        let states = engine.new_balancer_states();
        engine.traverse_batch(5, 1, &states, &mut Vec::new());
    }

    #[test]
    fn hop_debug_is_informative() {
        assert_eq!(format!("{:?}", Hop::balancer(3)), "Balancer(3)");
        assert_eq!(format!("{:?}", Hop::counter(1)), "Counter(1)");
    }
}
