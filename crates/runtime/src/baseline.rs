//! Centralized counter baselines.
//!
//! Counting networks were introduced (\[AHS94\]) to beat counters "handing out
//! values from a single memory location" under contention. These are those
//! single locations: the benchmark harness races them against
//! [`crate::SharedNetworkCounter`].

use crate::ProcessCounter;
use cnet_util::sync::Mutex;
use cnet_util::sync::atomic::{AtomicU64, Ordering};

/// A single-word fetch-and-increment counter — linearizable by
/// construction, but every operation contends on one cache line.
///
/// # Example
///
/// ```
/// use cnet_runtime::{FetchAddCounter, ProcessCounter};
///
/// let c = FetchAddCounter::new();
/// assert_eq!(c.next_for(0), 0);
/// assert_eq!(c.next_for(1), 1);
/// ```
#[derive(Debug, Default)]
pub struct FetchAddCounter {
    value: AtomicU64,
}

impl FetchAddCounter {
    /// A counter poised to hand out 0.
    pub fn new() -> Self {
        FetchAddCounter::default()
    }

    /// Returns the next value.
    pub fn next(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel)
    }
}

impl ProcessCounter for FetchAddCounter {
    fn next_for(&self, _process: usize) -> u64 {
        self.next()
    }

    /// One `fetch_add(n)` claims the whole batch: the values are the
    /// contiguous range `base..base + n`. An empty batch touches nothing
    /// (the `n == 0` contract — a `fetch_add(0)` is still a shared RMW).
    fn next_batch_for(&self, _process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        let base = self.value.fetch_add(n as u64, Ordering::AcqRel);
        (base..base + n as u64).collect()
    }
}

/// A mutex-protected counter — the queue-lock style baseline (\[MS91\]
/// motivates counting networks against exactly this kind of serialization).
#[derive(Debug, Default)]
pub struct LockCounter {
    value: Mutex<u64>,
}

impl LockCounter {
    /// A counter poised to hand out 0.
    pub fn new() -> Self {
        LockCounter::default()
    }

    /// Returns the next value.
    pub fn next(&self) -> u64 {
        let mut guard = self.value.lock();
        let v = *guard;
        *guard += 1;
        v
    }
}

impl ProcessCounter for LockCounter {
    fn next_for(&self, _process: usize) -> u64 {
        self.next()
    }

    /// One lock acquisition claims the whole batch; an empty batch takes
    /// no lock at all (the `n == 0` contract).
    fn next_batch_for(&self, _process: usize, n: usize) -> Vec<u64> {
        if n == 0 {
            return Vec::new();
        }
        let mut guard = self.value.lock();
        let base = *guard;
        *guard += n as u64;
        (base..base + n as u64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn hammer<C: ProcessCounter>(c: &C, threads: usize, per_thread: usize) -> Vec<u64> {
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    s.spawn(move || {
                        (0..per_thread).map(|_| c.next_for(p)).collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        values
    }

    #[test]
    fn fetch_add_is_gap_free_under_contention() {
        let c = FetchAddCounter::new();
        assert_eq!(hammer(&c, 8, 1000), (0..8000).collect::<Vec<_>>());
    }

    #[test]
    fn lock_counter_is_gap_free_under_contention() {
        let c = LockCounter::new();
        assert_eq!(hammer(&c, 8, 500), (0..4000).collect::<Vec<_>>());
    }

    #[test]
    fn batched_baselines_stay_gap_free() {
        for c in [
            Box::new(FetchAddCounter::new()) as Box<dyn ProcessCounter>,
            Box::new(LockCounter::new()),
        ] {
            let mut values: Vec<u64> = thread::scope(|s| {
                let handles: Vec<_> = (0..4usize)
                    .map(|p| {
                        let c = &c;
                        s.spawn(move || {
                            (0..50).flat_map(|_| c.next_batch_for(p, 20)).collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            values.sort_unstable();
            assert_eq!(values, (0..4000).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fetch_add_batch_is_a_contiguous_range() {
        let c = FetchAddCounter::new();
        assert_eq!(c.next_batch_for(0, 4), vec![0, 1, 2, 3]);
        assert_eq!(c.next_for(0), 4);
        assert!(c.next_batch_for(0, 0).is_empty());
    }

    #[test]
    fn fetch_add_values_per_thread_increase() {
        // A single-word counter is linearizable, hence trivially SC: each
        // thread's own values must increase.
        let c = FetchAddCounter::new();
        thread::scope(|s| {
            for _ in 0..4 {
                let c = &c;
                s.spawn(move || {
                    let mut last = None;
                    for _ in 0..1000 {
                        let v = c.next();
                        assert!(last.is_none_or(|l| v > l));
                        last = Some(v);
                    }
                });
            }
        });
    }
}
