//! The shared-memory counting network (Section 2.7).
//!
//! Two implementations live here:
//!
//! * [`SharedNetworkCounter`] — the production path: traverses the
//!   [`CompiledNetwork`] flat routing tables with cache-line-padded state
//!   words (see `crates/runtime/src/compiled.rs` and DESIGN.md, "Runtime
//!   performance");
//! * [`GraphWalkCounter`] — the retained pre-compilation reference: the
//!   same lock-free protocol, but resolving every hop through the
//!   [`Network`] graph with unpadded state vectors. It exists so the
//!   benchmark pipeline can measure the compiled engine against its own
//!   baseline in a single run, and so equivalence tests can hold the two
//!   traversals against each other.

use crate::compiled::CompiledNetwork;
use crate::recorder::TraceRecorder;
use crate::ProcessCounter;
use cnet_topology::ids::SourceId;
use cnet_topology::network::WireEnd;
use cnet_topology::Network;
use cnet_util::sync::CachePadded;
use cnet_util::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A counting network laid out in shared memory: one atomic round-robin
/// word per balancer, one atomic counter per output wire — every word on
/// its own cache line, routed by compiled flat tables.
///
/// Threads traverse the structure with [`increment_from`]; each balancer
/// visit is a single atomic instruction on the classic constructions
/// (`fetch_xor`/`fetch_add` — see [`CompiledNetwork::traverse`]), and the
/// final counter visit a `fetch_add` of the network fan-out — so the whole
/// operation is lock-free (wait-free on power-of-two fan-outs) and
/// contention spreads across the network instead of piling onto one word.
///
/// [`increment_from`]: SharedNetworkCounter::increment_from
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_runtime::SharedNetworkCounter;
/// use std::thread;
///
/// let net = bitonic(8)?;
/// let counter = SharedNetworkCounter::new(&net);
/// let mut values: Vec<u64> = thread::scope(|s| {
///     let handles: Vec<_> = (0..8)
///         .map(|p| {
///             let counter = &counter;
///             s.spawn(move || (0..100).map(|_| counter.increment_from(p % 8)).collect::<Vec<_>>())
///         })
///         .collect();
///     handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
/// });
/// values.sort_unstable();
/// assert_eq!(values, (0..800).collect::<Vec<_>>()); // no gaps, no duplicates
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Debug)]
pub struct SharedNetworkCounter {
    engine: CompiledNetwork,
    /// Round-robin state of each balancer, one cache line each.
    balancers: Box<[CachePadded<AtomicUsize>]>,
    /// Next value handed out by each counter; counter `j` starts at `j` and
    /// strides by the fan-out. One cache line each.
    counters: Box<[CachePadded<AtomicU64>]>,
    /// When present, [`ProcessCounter::next_for`] records every traversal
    /// into the recorder's per-process shard (batched boundary stamps).
    recorder: Option<Arc<TraceRecorder>>,
}

impl SharedNetworkCounter {
    /// Compiles the network and lays it out in shared memory, all balancers
    /// in their initial state and counter `j` poised to hand out `j`.
    pub fn new(net: &Network) -> Self {
        SharedNetworkCounter::from_compiled(CompiledNetwork::compile(net))
    }

    /// Lays out a counter over an already-compiled network (sharing no
    /// state with any other counter over the same engine).
    pub fn from_compiled(engine: CompiledNetwork) -> Self {
        let balancers = engine.new_balancer_states();
        let counters = (0..engine.fan_out())
            .map(|j| CachePadded::new(AtomicU64::new(j as u64)))
            .collect();
        SharedNetworkCounter { engine, balancers, counters, recorder: None }
    }

    /// Like [`new`](Self::new), with every [`ProcessCounter::next_for`]
    /// operation recorded into `recorder` (process `p` writes shard `p`, so
    /// process ids must stay below [`TraceRecorder::shards`]).
    pub fn with_recorder(net: &Network, recorder: Arc<TraceRecorder>) -> Self {
        let mut counter = SharedNetworkCounter::new(net);
        counter.recorder = Some(recorder);
        counter
    }

    /// The compiled routing tables this counter traverses.
    pub fn engine(&self) -> &CompiledNetwork {
        &self.engine
    }

    /// Shepherds one token from input wire `input` to a counter and returns
    /// the value obtained. Safe to call from any number of threads.
    ///
    /// # Panics
    ///
    /// Panics if `input >= engine().fan_in()`.
    pub fn increment_from(&self, input: usize) -> u64 {
        let sink = self.engine.traverse(input, &self.balancers);
        self.counters[sink].fetch_add(self.engine.fan_out() as u64, Ordering::AcqRel)
    }

    /// Shepherds `n` tokens from input wire `input` in one batched sweep —
    /// at most one atomic per balancer (see
    /// [`CompiledNetwork::traverse_batch`]) plus one `fetch_add` per
    /// reached counter — appending the `n` values obtained to `out`. A
    /// counter reached by `c` of the tokens hands out `c` consecutive
    /// round-robin values with a single `fetch_add(c * fan_out)`. The
    /// values are gap-free against every concurrent caller, batched or
    /// not, because each atomic claims its whole sub-batch at once.
    ///
    /// # Panics
    ///
    /// Panics if `input >= engine().fan_in()`.
    pub fn increment_batch_from(&self, input: usize, n: usize, out: &mut Vec<u64>) {
        let mut sink_counts = Vec::new();
        self.engine.traverse_batch(input, n, &self.balancers, &mut sink_counts);
        let w = self.engine.fan_out() as u64;
        out.reserve(n);
        for (sink, &count) in sink_counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let base = self.counters[sink].fetch_add(count as u64 * w, Ordering::AcqRel);
            out.extend((0..count as u64).map(|i| base + i * w));
        }
    }

    /// The number of tokens that have fully traversed the network so far
    /// (exact only in quiescent moments).
    pub fn tokens_counted(&self) -> u64 {
        let w = self.engine.fan_out() as u64;
        self.counters
            .iter()
            .enumerate()
            .map(|(j, c)| (c.load(Ordering::Acquire) - j as u64) / w)
            .sum()
    }

    /// Reads the per-counter token counts (exact only in quiescent moments)
    /// — the history variables `y_j`, for step-property checks.
    pub fn output_counts(&self) -> Vec<u64> {
        let w = self.engine.fan_out() as u64;
        self.counters
            .iter()
            .enumerate()
            .map(|(j, c)| (c.load(Ordering::Acquire) - j as u64) / w)
            .collect()
    }
}

impl ProcessCounter for SharedNetworkCounter {
    #[inline]
    fn next_for(&self, process: usize) -> u64 {
        match &self.recorder {
            None => self.increment_from(process % self.engine.fan_in()),
            Some(rec) => {
                let value = self.increment_from(process % self.engine.fan_in());
                rec.record(process, value);
                value
            }
        }
    }

    fn next_batch_for(&self, process: usize, n: usize) -> Vec<u64> {
        let mut values = Vec::with_capacity(n);
        self.increment_batch_from(process % self.engine.fan_in(), n, &mut values);
        if let Some(rec) = &self.recorder {
            rec.record_batch(process, &values);
        }
        values
    }
}

/// The pre-compilation shared-memory counter, retained as a measured
/// baseline: every hop resolves through the [`Network`] graph (wire lookup,
/// enum match, balancer record, output-port lookup), balancer updates go
/// through a `fetch_update` CAS loop, and the state words sit unpadded in
/// plain `Vec`s — so logically independent balancers share cache lines.
///
/// Semantically identical to [`SharedNetworkCounter`] (the equivalence
/// property test holds the two against each other); only the constant
/// factors differ. `BENCH_throughput.json` records both.
#[derive(Debug)]
pub struct GraphWalkCounter {
    net: Network,
    balancers: Vec<AtomicUsize>,
    counters: Vec<AtomicU64>,
}

impl GraphWalkCounter {
    /// Lays the network out in shared memory, graph-walk style.
    pub fn new(net: &Network) -> Self {
        GraphWalkCounter {
            net: net.clone(),
            balancers: (0..net.size()).map(|_| AtomicUsize::new(0)).collect(),
            counters: (0..net.fan_out()).map(|j| AtomicU64::new(j as u64)).collect(),
        }
    }

    /// The network this counter walks.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Shepherds one token from input wire `input` to a counter and returns
    /// the value obtained, resolving every hop through the graph.
    ///
    /// # Panics
    ///
    /// Panics if `input >= network().fan_in()`.
    pub fn increment_from(&self, input: usize) -> u64 {
        assert!(input < self.net.fan_in(), "input wire {input} out of range");
        let mut wire = self.net.source_wire(SourceId(input));
        loop {
            match self.net.wire(wire).end {
                WireEnd::Balancer { balancer, .. } => {
                    let bal = self.net.balancer(balancer);
                    let f = bal.fan_out();
                    let port = self.balancers[balancer.index()]
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                            Some((s + 1) % f)
                        })
                        .expect("fetch_update closure always returns Some");
                    wire = bal.output(port);
                }
                WireEnd::Sink(sink) => {
                    return self.counters[sink.index()]
                        .fetch_add(self.net.fan_out() as u64, Ordering::AcqRel);
                }
            }
        }
    }

    /// Per-counter token counts (exact only in quiescent moments).
    pub fn output_counts(&self) -> Vec<u64> {
        let w = self.net.fan_out() as u64;
        self.counters
            .iter()
            .enumerate()
            .map(|(j, c)| (c.load(Ordering::Acquire) - j as u64) / w)
            .collect()
    }
}

impl ProcessCounter for GraphWalkCounter {
    fn next_for(&self, process: usize) -> u64 {
        self.increment_from(process % self.net.fan_in())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::construct::{bitonic, counting_tree, periodic};
    use cnet_topology::state::has_step_property;
    use std::thread;

    #[test]
    fn sequential_use_matches_reference_semantics() {
        let net = bitonic(4).unwrap();
        let shared = SharedNetworkCounter::new(&net);
        let mut reference = cnet_topology::state::NetworkState::new(&net);
        for k in 0..32 {
            let input = k % 4;
            assert_eq!(shared.increment_from(input), reference.traverse(&net, input).value);
        }
        assert_eq!(shared.output_counts(), reference.output_counts());
    }

    #[test]
    fn compiled_and_graph_walk_agree_sequentially() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap(), counting_tree(8).unwrap()] {
            let compiled = SharedNetworkCounter::new(&net);
            let walk = GraphWalkCounter::new(&net);
            for k in 0..96usize {
                let input = k % net.fan_in();
                assert_eq!(compiled.increment_from(input), walk.increment_from(input), "{net}");
            }
            assert_eq!(compiled.output_counts(), walk.output_counts());
        }
    }

    #[test]
    fn concurrent_increments_are_gap_free() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
            let counter = SharedNetworkCounter::new(&net);
            let per_thread = 500;
            let threads = 8;
            let mut values: Vec<u64> = thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|p| {
                        let c = &counter;
                        s.spawn(move || {
                            (0..per_thread).map(|_| c.increment_from(p)).collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            values.sort_unstable();
            let n = (threads * per_thread) as u64;
            assert_eq!(values, (0..n).collect::<Vec<_>>());
            assert_eq!(counter.tokens_counted(), n);
        }
    }

    #[test]
    fn graph_walk_concurrent_increments_are_gap_free() {
        let net = bitonic(8).unwrap();
        let counter = GraphWalkCounter::new(&net);
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|p| {
                    let c = &counter;
                    s.spawn(move || (0..500).map(|_| c.increment_from(p)).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        assert_eq!(values, (0..4000).collect::<Vec<_>>());
    }

    #[test]
    fn quiescent_state_has_step_property() {
        let net = bitonic(8).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        // 8 threads, unequal token counts, all through different wires.
        thread::scope(|s| {
            for p in 0..8usize {
                let c = &counter;
                s.spawn(move || {
                    for _ in 0..(50 + 13 * p) {
                        c.increment_from(p);
                    }
                });
            }
        });
        assert!(has_step_property(&counter.output_counts()));
    }

    #[test]
    fn counting_tree_runtime() {
        let net = counting_tree(8).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = &counter;
                    s.spawn(move || (0..200).map(|_| c.increment_from(0)).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        assert_eq!(values, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn batched_increments_hand_out_the_same_value_set() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap(), counting_tree(8).unwrap()] {
            let batched = SharedNetworkCounter::new(&net);
            let sequential = SharedNetworkCounter::new(&net);
            let mut got = Vec::new();
            let mut want = Vec::new();
            for (round, n) in [3usize, 64, 1, 17, 8].into_iter().enumerate() {
                let input = round % net.fan_in();
                batched.increment_batch_from(input, n, &mut got);
                for _ in 0..n {
                    want.push(sequential.increment_from(input));
                }
            }
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{net}");
            assert_eq!(batched.output_counts(), sequential.output_counts());
        }
    }

    #[test]
    fn concurrent_batches_are_gap_free() {
        let net = bitonic(8).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        let per_thread = 40; // batches per thread, 25 tokens each
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..8usize)
                .map(|p| {
                    let c = &counter;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for _ in 0..per_thread {
                            if p % 2 == 0 {
                                c.increment_batch_from(p, 25, &mut out);
                            } else {
                                out.extend((0..25).map(|_| c.increment_from(p)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        let n = 8 * per_thread * 25;
        assert_eq!(values, (0..n as u64).collect::<Vec<_>>());
        assert_eq!(counter.tokens_counted(), n as u64);
    }

    #[test]
    fn next_batch_for_is_batched_and_empty_batches_are_free() {
        let net = bitonic(4).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        assert!(counter.next_batch_for(0, 0).is_empty());
        let mut values = counter.next_batch_for(1, 10);
        values.sort_unstable();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn from_compiled_shares_no_state() {
        let net = bitonic(4).unwrap();
        let engine = CompiledNetwork::compile(&net);
        let a = SharedNetworkCounter::from_compiled(engine.clone());
        let b = SharedNetworkCounter::from_compiled(engine);
        assert_eq!(a.increment_from(0), 0);
        assert_eq!(b.increment_from(0), 0); // fresh state, same first value
        assert_eq!(a.engine().size(), b.engine().size());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_input_wire_panics() {
        let net = bitonic(2).unwrap();
        SharedNetworkCounter::new(&net).increment_from(7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn graph_walk_bad_input_wire_panics() {
        let net = bitonic(2).unwrap();
        GraphWalkCounter::new(&net).increment_from(7);
    }
}
