//! The shared-memory counting network (Section 2.7).

use crate::ProcessCounter;
use cnet_topology::ids::SourceId;
use cnet_topology::network::WireEnd;
use cnet_topology::Network;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A counting network laid out in shared memory: one atomic round-robin
/// word per balancer, one atomic counter per output wire.
///
/// Threads traverse the structure with [`increment_from`]; each balancer
/// visit is a single atomic `fetch_update`, and the final counter visit a
/// `fetch_add` of the network fan-out — so the whole operation is lock-free
/// and contention spreads across the network instead of piling onto one
/// word.
///
/// [`increment_from`]: SharedNetworkCounter::increment_from
///
/// # Example
///
/// ```
/// use cnet_topology::construct::bitonic;
/// use cnet_runtime::SharedNetworkCounter;
/// use std::thread;
///
/// let net = bitonic(8)?;
/// let counter = SharedNetworkCounter::new(&net);
/// let mut values: Vec<u64> = thread::scope(|s| {
///     let handles: Vec<_> = (0..8)
///         .map(|p| {
///             let counter = &counter;
///             s.spawn(move || (0..100).map(|_| counter.increment_from(p % 8)).collect::<Vec<_>>())
///         })
///         .collect();
///     handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
/// });
/// values.sort_unstable();
/// assert_eq!(values, (0..800).collect::<Vec<_>>()); // no gaps, no duplicates
/// # Ok::<(), cnet_topology::BuildError>(())
/// ```
#[derive(Debug)]
pub struct SharedNetworkCounter {
    net: Network,
    /// Round-robin state of each balancer: the output port the next token
    /// exits on.
    balancers: Vec<AtomicUsize>,
    /// Next value handed out by each counter; counter `j` starts at `j` and
    /// strides by the fan-out.
    counters: Vec<AtomicU64>,
}

impl SharedNetworkCounter {
    /// Lays the network out in shared memory, all balancers in their initial
    /// state and counter `j` poised to hand out `j`.
    pub fn new(net: &Network) -> Self {
        SharedNetworkCounter {
            net: net.clone(),
            balancers: (0..net.size()).map(|_| AtomicUsize::new(0)).collect(),
            counters: (0..net.fan_out()).map(|j| AtomicU64::new(j as u64)).collect(),
        }
    }

    /// The network this counter is laid out over.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Shepherds one token from input wire `input` to a counter and returns
    /// the value obtained. Safe to call from any number of threads.
    ///
    /// # Panics
    ///
    /// Panics if `input >= network().fan_in()`.
    pub fn increment_from(&self, input: usize) -> u64 {
        assert!(input < self.net.fan_in(), "input wire {input} out of range");
        let mut wire = self.net.source_wire(SourceId(input));
        loop {
            match self.net.wire(wire).end {
                WireEnd::Balancer { balancer, .. } => {
                    let bal = self.net.balancer(balancer);
                    let f = bal.fan_out();
                    let port = self.balancers[balancer.index()]
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                            Some((s + 1) % f)
                        })
                        .expect("fetch_update closure always returns Some");
                    wire = bal.output(port);
                }
                WireEnd::Sink(sink) => {
                    return self.counters[sink.index()]
                        .fetch_add(self.net.fan_out() as u64, Ordering::AcqRel);
                }
            }
        }
    }

    /// The number of tokens that have fully traversed the network so far
    /// (exact only in quiescent moments).
    pub fn tokens_counted(&self) -> u64 {
        let w = self.net.fan_out() as u64;
        self.counters
            .iter()
            .enumerate()
            .map(|(j, c)| (c.load(Ordering::Acquire) - j as u64) / w)
            .sum()
    }

    /// Reads the per-counter token counts (exact only in quiescent moments)
    /// — the history variables `y_j`, for step-property checks.
    pub fn output_counts(&self) -> Vec<u64> {
        let w = self.net.fan_out() as u64;
        self.counters
            .iter()
            .enumerate()
            .map(|(j, c)| (c.load(Ordering::Acquire) - j as u64) / w)
            .collect()
    }
}

impl ProcessCounter for SharedNetworkCounter {
    fn next_for(&self, process: usize) -> u64 {
        self.increment_from(process % self.net.fan_in())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_topology::construct::{bitonic, counting_tree, periodic};
    use cnet_topology::state::has_step_property;
    use std::thread;

    #[test]
    fn sequential_use_matches_reference_semantics() {
        let net = bitonic(4).unwrap();
        let shared = SharedNetworkCounter::new(&net);
        let mut reference = cnet_topology::state::NetworkState::new(&net);
        for k in 0..32 {
            let input = k % 4;
            assert_eq!(shared.increment_from(input), reference.traverse(&net, input).value);
        }
        assert_eq!(shared.output_counts(), reference.output_counts());
    }

    #[test]
    fn concurrent_increments_are_gap_free() {
        for net in [bitonic(8).unwrap(), periodic(8).unwrap()] {
            let counter = SharedNetworkCounter::new(&net);
            let per_thread = 500;
            let threads = 8;
            let mut values: Vec<u64> = thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|p| {
                        let c = &counter;
                        s.spawn(move || {
                            (0..per_thread).map(|_| c.increment_from(p)).collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
            });
            values.sort_unstable();
            let n = (threads * per_thread) as u64;
            assert_eq!(values, (0..n).collect::<Vec<_>>());
            assert_eq!(counter.tokens_counted(), n);
        }
    }

    #[test]
    fn quiescent_state_has_step_property() {
        let net = bitonic(8).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        // 8 threads, unequal token counts, all through different wires.
        thread::scope(|s| {
            for p in 0..8usize {
                let c = &counter;
                s.spawn(move || {
                    for _ in 0..(50 + 13 * p) {
                        c.increment_from(p);
                    }
                });
            }
        });
        assert!(has_step_property(&counter.output_counts()));
    }

    #[test]
    fn counting_tree_runtime() {
        let net = counting_tree(8).unwrap();
        let counter = SharedNetworkCounter::new(&net);
        let mut values: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = &counter;
                    s.spawn(move || (0..200).map(|_| c.increment_from(0)).collect::<Vec<u64>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        values.sort_unstable();
        assert_eq!(values, (0..800).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_input_wire_panics() {
        let net = bitonic(2).unwrap();
        SharedNetworkCounter::new(&net).increment_from(7);
    }
}
