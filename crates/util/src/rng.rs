//! Seedable pseudo-random number generation.
//!
//! [`StdRng`] is a PCG64 (XSL-RR 128/64) generator whose 128-bit state is
//! expanded from a 64-bit seed with [`SplitMix64`]. It is deterministic
//! across platforms and releases of this workspace: golden-sequence tests
//! below pin the exact output stream, so any change to the algorithm is a
//! deliberate, visible diff — schedules generated from a seed are part of
//! the experimental record.
//!
//! The API mirrors the subset of `rand` the workspace uses:
//!
//! ```
//! use cnet_util::rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = rng.random_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(0..10usize);
//! assert!(k < 10);
//! ```

use std::ops::Range;

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The uniform-sampling surface shared by all generators.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (`start >= end`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Alias of [`Rng::random_range`] under `rand`'s pre-0.9 name.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        self.random_range(range)
    }

    /// Fills the byte slice with uniform bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle of the slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Sebastiano Vigna's SplitMix64: one multiply–xor–shift pipeline per
/// output. Used to expand seeds and derive per-case seeds in the property
/// harness; also a serviceable generator on its own.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// Mixes a case index into a base seed, for deriving independent
/// sub-streams (one SplitMix64 step over the xor).
pub fn mix_seed(base: u64, index: u64) -> u64 {
    SplitMix64::new(base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
}

/// PCG64 (XSL-RR 128/64, O'Neill 2014): a 128-bit LCG with an
/// xorshift-rotate output function. Fast, equidistributed, and more than
/// adequate for schedule generation and property testing.
#[derive(Clone, Debug)]
pub struct Pcg64 {
    state: u128,
}

const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;
const PCG_INC: u128 = 0x5851_f42d_4c95_7f2d_1405_7b7e_f767_814f;

impl Rng for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(PCG_INC);
        let rot = (self.state >> 122) as u32;
        (((self.state >> 64) as u64) ^ (self.state as u64)).rotate_right(rot)
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let hi = sm.next_u64() as u128;
        let lo = sm.next_u64() as u128;
        Pcg64 { state: (hi << 64) | lo }
    }
}

/// The workspace's default generator.
pub type StdRng = Pcg64;

/// Half-open ranges a generator can sample from.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 uniform bits onto `0..span` by widening multiply (Lemire-style;
/// the residual bias is below 2⁻⁶⁴·span, irrelevant at these spans).
#[inline]
fn offset_below(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + offset_below(rng.next_u64(), span) as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(offset_below(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_int!(i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * u;
        // Affine rounding can land exactly on `end`; the range is half-open.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Published SplitMix64 test vectors for seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn pcg_golden_sequence_is_pinned() {
        // Golden outputs of THIS workspace's StdRng; seeds are part of the
        // experimental record, so the stream may never silently change.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6712888308908870716,
                12364033628255014625,
                11235848350104121611,
                7892852915985276856,
            ]
        );
        let mut rng = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                17897454358849564083,
                13615167422939807278,
                15347016298901141737,
                15607320551039524008,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(10);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.random_range(2usize..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "1000 draws cover 2..9: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(0..3u8);
            assert!(v < 3);
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_are_half_open() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.random_range(1.0..3.0);
            assert!((1.0..3.0).contains(&v), "{v} outside [1, 3)");
        }
        // Degenerate-width range still respects the bound strictly.
        let lo = 1.0;
        let hi = lo + f64::EPSILON * 4.0;
        for _ in 0..1000 {
            let v = rng.random_range(lo..hi);
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(5usize..5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [0usize, 1, 2, 10, 100] {
            let mut v: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut v);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "shuffle of len {n}");
        }
        // Shuffles actually move things (overwhelmingly likely at n = 100).
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fill_covers_every_byte() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        // 37 zero bytes from a uniform source is a 2^-296 event.
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 37];
        StdRng::seed_from_u64(5).fill(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gen_range_is_an_alias() {
        let a = StdRng::seed_from_u64(1).gen_range(0..1000u64);
        let b = StdRng::seed_from_u64(1).random_range(0..1000u64);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_seed_decorrelates_indices() {
        let s: Vec<u64> = (0..100).map(|i| mix_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
