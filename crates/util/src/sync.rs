//! Concurrency shims over `std::sync`, replacing `parking_lot` and
//! `crossbeam` for the runtime crate's counter implementations.
//!
//! * [`Mutex`] — a poison-free mutex (lock-holder panics don't cascade
//!   into unrelated threads, matching `parking_lot` semantics);
//! * [`Backoff`] — truncated exponential spin-then-yield backoff for
//!   contended retry loops;
//! * [`CachePadded`] — aligns a value to its own cache line so logically
//!   independent atomics never false-share;
//! * [`channel`] — an unbounded multi-producer **multi-consumer** channel
//!   (both ends clonable; `std::sync::mpsc` receivers are not, and the
//!   message-passing counter shares one receiver per balancer across
//!   worker threads).

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar};

/// The atomic types used by every lock-free algorithm in the workspace.
///
/// In normal builds this is a zero-cost re-export of
/// `std::sync::atomic`. Under the `model-check` feature the same names
/// resolve to the shims in [`crate::model::atomic`], which route every
/// load/store/RMW through the bounded-interleaving model checker's
/// cooperative scheduler (and fall back to plain `std` behavior on
/// threads that are not part of a model scenario). Code that wants to
/// be model-checkable imports from here instead of `std::sync::atomic`
/// — a pure rename.
pub mod atomic {
    #[cfg(not(feature = "model-check"))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };

    #[cfg(feature = "model-check")]
    pub use crate::model::atomic::{
        AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

/// Pads and aligns a value to the size of a cache line (64 bytes — the
/// coherence granule on x86-64 and most AArch64 parts).
///
/// The point of a counting network is that logically independent balancers
/// absorb contention *independently*; packing their state words densely
/// into one `Vec` re-couples them through the cache-coherence protocol
/// (false sharing). Wrapping each word restores the independence the
/// paper's model assumes.
///
/// # Example
///
/// ```
/// use cnet_util::sync::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slots: Vec<CachePadded<AtomicU64>> =
///     (0..4).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
/// assert_eq!(std::mem::align_of_val(&slots[0]), 64);
/// assert!(std::mem::size_of_val(&slots[0]) >= 64);
/// ```
#[derive(Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the padding, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

/// A mutual-exclusion lock that ignores poisoning: if a holder panics, the
/// next `lock()` simply proceeds with the data as it was.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new lock owning `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held, never failing on poison.
    ///
    /// Under the `model-check` feature, acquisition by a model-scenario
    /// thread becomes a scheduling point (a try-lock/yield loop), so
    /// the checker explores lock-acquisition orders; release is not a
    /// separate point (it is bundled with the holder's next operation).
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        #[cfg(feature = "model-check")]
        if crate::model::thread_is_modeled() {
            loop {
                crate::model::op_point();
                match self.inner.try_lock() {
                    Ok(guard) => return guard,
                    Err(std::sync::TryLockError::Poisoned(p)) => {
                        return p.into_inner()
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        crate::model::yield_point()
                    }
                }
            }
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Truncated exponential backoff: spin-loop hints that double each step,
/// then thread yields once the spin budget saturates. Call
/// [`Backoff::snooze`] on each failed attempt of a retry loop.
pub struct Backoff {
    step: Cell<u32>,
}

const SPIN_LIMIT: u32 = 6;

impl Backoff {
    /// A fresh backoff at the shortest delay.
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Resets to the shortest delay (after a successful attempt).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Waits briefly, escalating from busy-spin to `yield_now`.
    ///
    /// Under the `model-check` feature, a model-scenario thread parks
    /// at a yield point instead of spinning: it becomes runnable again
    /// only after another thread has progressed, which keeps retry
    /// loops finite under exhaustive schedule exploration.
    pub fn snooze(&self) {
        #[cfg(feature = "model-check")]
        if crate::model::thread_is_modeled() {
            crate::model::yield_point();
            return;
        }
        let step = self.step.get();
        if step <= SPIN_LIMIT {
            for _ in 0..1u32 << step {
                std::hint::spin_loop();
            }
            self.step.set(step + 1);
        } else {
            std::thread::yield_now();
        }
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

impl fmt::Debug for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Backoff").field("step", &self.step.get()).finish()
    }
}

/// Sending on a channel with no remaining receivers.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like crossbeam, debug-printable regardless of whether `T` is.
impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Receiving on an empty channel with no remaining senders.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

struct ChannelState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    ready: Condvar,
}

/// The sending half of an unbounded channel; clonable.
pub struct Sender<T> {
    chan: Arc<Channel<T>>,
}

/// The receiving half of an unbounded channel; clonable (multi-consumer —
/// each message is delivered to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Channel<T>>,
}

/// An unbounded MPMC FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender { chan: Arc::clone(&chan) },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Enqueues a message; fails only when every receiver has dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock();
        if state.receivers == 0 {
            return Err(SendError(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.chan.state.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake blocked receivers so they observe the disconnect.
            self.chan.ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking while the channel is empty;
    /// fails once the channel is empty and every sender has dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        // The shim Mutex guard is a std guard, so Condvar::wait composes.
        let mut state = self.chan.state.lock();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues without blocking; `None` when currently empty.
    pub fn try_recv(&self) -> Option<T> {
        self.chan.state.lock().queue.pop_front()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.state.lock().receivers -= 1;
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mutex_survives_holder_panics() {
        let m = Arc::new(Mutex::new(5u64));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn channel_is_fifo_per_sender() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(1).unwrap();
        drop(rx2);
        assert_eq!(tx.send(2), Err(SendError(2)));
    }

    #[test]
    fn cloned_receivers_partition_messages() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let n = 1000u64;
        let consumer = |rx: Receiver<u64>| {
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            })
        };
        let h1 = consumer(rx);
        let h2 = consumer(rx2);
        for i in 0..n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = h1.join().unwrap();
        all.extend(h2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || rx.recv());
        thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn cache_padded_is_line_sized_and_transparent() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        assert!(std::mem::size_of::<CachePadded<AtomicUsize>>() >= 64);
        assert_eq!(std::mem::align_of::<CachePadded<AtomicUsize>>(), 64);
        let mut c = CachePadded::new(AtomicUsize::new(7));
        assert_eq!(c.load(Ordering::Relaxed), 7);
        *c.get_mut() = 9;
        assert_eq!(c.into_inner().into_inner(), 9);
        // Adjacent vector elements land on distinct cache lines.
        let v: Vec<CachePadded<AtomicUsize>> =
            (0..2).map(|_| CachePadded::new(AtomicUsize::new(0))).collect();
        let a = &*v[0] as *const AtomicUsize as usize;
        let b = &*v[1] as *const AtomicUsize as usize;
        assert!(b.abs_diff(a) >= 64);
    }

    #[test]
    fn backoff_makes_progress() {
        let b = Backoff::new();
        for _ in 0..100 {
            b.snooze();
        }
        b.reset();
        b.snooze();
    }
}
