//! A criterion-compatible benchmark harness, small enough to audit.
//!
//! The `benches/*.rs` targets keep their `criterion_group!`/
//! `criterion_main!` structure; only the import line changes. Behavior:
//!
//! * under `cargo bench` (the harness sees `--bench` in its arguments) each
//!   benchmark warms up, then takes `sample_size` timed samples and reports
//!   the median ns/iter plus throughput;
//! * under `cargo test` (no `--bench` flag on `harness = false` targets)
//!   each routine runs **once** as a smoke test, so the suite stays fast
//!   while still compiling and executing every benchmark body;
//! * a positional argument acts as a substring filter on benchmark ids,
//!   like criterion's.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness configuration (criterion's builder subset).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    measure: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_millis(1500),
            measure: args.iter().any(|a| a == "--bench"),
            filter: args.iter().find(|a| !a.starts_with('-')).cloned(),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up (and calibrating iterations per sample).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Work-per-iteration declaration, for ops/sec reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier within a group: `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter (`"lock/8"`).
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just a parameter (`"bitonic_16"`).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            measure: self.criterion.measure,
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            ns_per_iter: None,
        };
        f(&mut bencher, input);
        match bencher.ns_per_iter {
            Some(ns) if self.criterion.measure => {
                let rate = |count: u64| {
                    let per_sec = count as f64 * 1e9 / ns;
                    format!("{per_sec:.3e}")
                };
                let thrpt = match self.throughput {
                    Some(Throughput::Elements(n)) => format!("  thrpt: {} elem/s", rate(n)),
                    Some(Throughput::Bytes(n)) => format!("  thrpt: {} B/s", rate(n)),
                    None => String::new(),
                };
                println!("{full:<50} time: {ns:>12.1} ns/iter{thrpt}");
            }
            Some(ns) => {
                println!("{full:<50} smoke-tested once ({:.3} ms)", ns / 1e6);
            }
            None => println!("{full:<50} (no iter call)"),
        }
    }

    /// Ends the group (criterion writes reports here; we need nothing).
    pub fn finish(self) {}
}

/// Times a routine; handed to benchmark closures.
pub struct Bencher {
    measure: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `routine`, storing the median ns/iter.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if !self.measure {
            let start = Instant::now();
            black_box(routine());
            self.ns_per_iter = Some(start.elapsed().as_nanos() as f64);
            return;
        }

        // Warm-up doubles as calibration for iterations per sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let sample_budget =
            self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((sample_budget / per_iter) as u64).max(1);

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Declares a benchmark group function, criterion-style:
///
/// ```ignore
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(15);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

// Let benches import the macros from this module, mirroring the
// `criterion::{criterion_group, criterion_main}` path shape.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Criterion {
        // Bypass Default so tests don't depend on the test binary's argv.
        Criterion {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(3),
            measure: false,
            filter: None,
        }
    }

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut c = quiet();
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_samples_repeatedly() {
        let mut c = Criterion {
            measure: true,
            ..quiet()
        };
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter("p"), &(), |b, _| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs > 3, "expected warmup + samples, got {runs} runs");
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("match_me".to_string()),
            ..quiet()
        };
        let mut ran = Vec::new();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("match_me", 1), &(), |b, _| {
            b.iter(|| ran.push("yes"));
        });
        group.bench_with_input(BenchmarkId::new("other", 1), &(), |b, _| {
            b.iter(|| ran.push("no"));
        });
        group.finish();
        assert_eq!(ran, vec!["yes"]);
    }
}
