//! A monotonic nanosecond clock cheap enough to timestamp every operation
//! of a lock-free counter.
//!
//! The trace recorder in `cnet-runtime` brackets each increment with two
//! timestamps. `std::time::Instant::now` costs a `clock_gettime` call —
//! tens of nanoseconds, comparable to the whole traversal it is supposed
//! to observe. On x86_64 a [`Clock`] reads the CPU timestamp counter
//! instead (`rdtsc`, a few nanoseconds), calibrates it against `Instant`
//! **once per process**, and converts raw ticks to nanoseconds lazily —
//! the hot path stores raw ticks and the drain path pays for the
//! conversion. On other architectures every method transparently falls
//! back to `Instant`, so callers never need their own `cfg`.
//!
//! Tick-to-nanosecond conversion is monotone (a fixed positive scale
//! followed by rounding), so the ordering of raw readings survives
//! conversion — the property the consistency checkers rely on.

use std::sync::OnceLock;
use std::time::Instant;

/// Ticks-per-nanosecond calibration, measured once per process.
fn ticks_per_ns() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        // Bracket a short busy-wait with both clocks. 2ms keeps process
        // startup cheap while bounding the rate error well below what the
        // checkers could notice (ties are handled by sequence numbers).
        let start = Instant::now();
        let t0 = raw_ticks();
        while start.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let ticks = raw_ticks().wrapping_sub(t0) as f64;
        let ns = start.elapsed().as_nanos() as f64;
        let rate = ticks / ns;
        // An implausible rate (tsc unavailable, emulated, or stopped)
        // degrades to 1 tick == 1 ns via the fallback reader.
        if rate.is_finite() && rate > 0.0 {
            rate
        } else {
            1.0
        }
    })
}

/// Reads the raw cycle counter (x86_64) or a nanosecond `Instant` delta
/// (elsewhere). Only meaningful relative to other readings in-process.
///
/// Under the `model-check` feature, threads inside a model-checker
/// session read a strictly increasing *logical* counter instead, so
/// timestamp-dependent code is deterministic per explored schedule.
#[inline]
pub fn raw_ticks() -> u64 {
    #[cfg(feature = "model-check")]
    if let Some(tick) = crate::model::logical_raw_ticks() {
        return tick;
    }
    raw_ticks_arch()
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_ticks_arch() -> u64 {
    // SAFETY: `_rdtsc` has no memory effects and no preconditions; it is
    // available on every x86_64 CPU. This is the one place the workspace
    // needs an intrinsic the safe standard library cannot express at an
    // acceptable cost (see module docs).
    #[allow(unsafe_code)]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn raw_ticks_arch() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A process-local monotonic clock: raw readings via [`Clock::raw`] on the
/// hot path, conversion to nanoseconds-since-construction via
/// [`Clock::raw_to_ns`] off it.
///
/// # Example
///
/// ```
/// use cnet_util::time::Clock;
///
/// let clock = Clock::new();
/// let a = clock.raw();
/// let b = clock.raw();
/// assert!(clock.raw_to_ns(a) <= clock.raw_to_ns(b));
/// ```
#[derive(Clone, Debug)]
pub struct Clock {
    origin: u64,
    ticks_per_ns: f64,
}

impl Clock {
    /// A clock whose nanosecond scale starts (near) zero now. The
    /// process-wide calibration runs on first use (~2ms, once).
    pub fn new() -> Clock {
        Clock { origin: raw_ticks(), ticks_per_ns: ticks_per_ns() }
    }

    /// A raw reading, for storing cheaply on a hot path.
    #[inline]
    pub fn raw(&self) -> u64 {
        raw_ticks()
    }

    /// Converts a raw reading to nanoseconds since this clock's
    /// construction. Monotone: `a <= b` implies
    /// `raw_to_ns(a) <= raw_to_ns(b)`. Readings taken before construction
    /// saturate to 0.
    #[inline]
    pub fn raw_to_ns(&self, raw: u64) -> u64 {
        (raw.saturating_sub(self.origin) as f64 / self.ticks_per_ns) as u64
    }

    /// The current time in nanoseconds since construction.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.raw_to_ns(self.raw())
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn readings_are_monotone_through_conversion() {
        let clock = Clock::new();
        let raws: Vec<u64> = (0..1000).map(|_| clock.raw()).collect();
        let ns: Vec<u64> = raws.iter().map(|&r| clock.raw_to_ns(r)).collect();
        assert!(raws.windows(2).all(|w| w[0] <= w[1]), "raw ticks regressed");
        assert!(ns.windows(2).all(|w| w[0] <= w[1]), "converted ns regressed");
    }

    #[test]
    fn scale_tracks_wall_time() {
        let clock = Clock::new();
        let t0 = clock.now_ns();
        let wall = Instant::now();
        std::thread::sleep(Duration::from_millis(20));
        let measured = clock.now_ns() - t0;
        let actual = wall.elapsed().as_nanos() as u64;
        // Calibration error plus sleep jitter: allow a generous band.
        assert!(
            measured > actual / 2 && measured < actual * 2,
            "clock measured {measured}ns for ~{actual}ns of wall time"
        );
    }

    #[test]
    fn pre_construction_readings_saturate_to_zero() {
        let before = raw_ticks();
        std::thread::sleep(Duration::from_millis(1));
        let clock = Clock::new();
        assert_eq!(clock.raw_to_ns(before.saturating_sub(1_000_000)), 0);
        assert_eq!(clock.raw_to_ns(clock.origin), 0);
    }

    #[test]
    fn distinct_clocks_share_calibration_but_not_origin() {
        let a = Clock::new();
        std::thread::sleep(Duration::from_millis(2));
        let b = Clock::new();
        assert_eq!(a.ticks_per_ns, b.ticks_per_ns);
        // b starts near zero even though a has advanced.
        assert!(b.now_ns() < a.now_ns());
    }
}
