//! A log-bucketed latency histogram for end-to-end percentiles.
//!
//! The connection-scaling benchmark needs p50/p99/p999 over millions of
//! per-burst round-trip times without allocating per sample or paying a
//! sort at the end. A [`LatencyHistogram`] buckets nanosecond values
//! HDR-style: exact buckets for 0..32 ns, then 32 geometric sub-buckets
//! per power of two. With 32 sub-buckets per octave the relative error of
//! any reported quantile is below 1/32 ≈ 3.1% — far finer than the
//! run-to-run noise of a networked benchmark — while the whole histogram
//! is a fixed ~2K `u64` array: recording is two shifts and an increment,
//! merging is element-wise addition, and the memory footprint is
//! independent of the sample count.
//!
//! Quantiles report the **upper edge** of the containing bucket (clamped
//! to the exact observed maximum), so reported percentiles never
//! understate the latency a user actually saw.

/// Sub-bucket resolution: 2^5 = 32 buckets per power of two.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;

/// Bucket count: values 0..32 map one-to-one, then each of the remaining
/// octaves of the u64 range contributes 32 sub-buckets.
const BUCKETS: usize = SUB * (64 - SUB_BITS as usize) + SUB;

/// A fixed-size log-bucketed histogram of nanosecond latencies. See the
/// module docs for the bucketing scheme and error bound.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a value to its bucket index. Values below 32 are exact; above,
/// the index is (octave, top-5-mantissa-bits).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS here
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + octave * SUB + sub
}

/// The (inclusive) upper edge of a bucket: the largest value mapping to
/// that index. Quantiles report this edge so they never understate.
fn bucket_upper_edge(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    let base = 1u64 << (octave + SUB_BITS);
    let width = 1u64 << octave; // values per sub-bucket in this octave
    // Summed as (base - 1) + ... so the top octave's edge (u64::MAX)
    // does not overflow mid-expression.
    (base - 1) + (sub + 1) * width
}

impl LatencyHistogram {
    /// An empty histogram. The backing array is heap-allocated once
    /// (~15 KiB) and never grows.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram { counts: Box::new([0u64; BUCKETS]), total: 0, sum: 0, max: 0 }
    }

    /// Records one latency sample, in nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_index(ns)] += 1;
        self.total += 1;
        self.sum += ns as u128;
        if ns > self.max {
            self.max = ns;
        }
    }

    /// Folds `other` into `self` (element-wise). Used to merge per-worker
    /// histograms into one report without sharing during the run.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples, in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128) as u64
        }
    }

    /// The value at quantile `q` in [0.0, 1.0]: an upper bound within
    /// ~3.1% (bucket upper edge, clamped to the observed maximum).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based: ceil(q * total), at least 1.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_edge(idx).min(self.max);
            }
        }
        self.max
    }

    /// Convenience: the (p50, p99, p999) triple, in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.99), self.quantile(0.999))
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (p50, p99, p999) = self.percentiles();
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_ns", &p50)
            .field("p99_ns", &p99)
            .field("p999_ns", &p999)
            .field("max_ns", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
        // Median of 0..=31: rank 16 => value 15.
        assert_eq!(h.quantile(0.5), 15);
    }

    #[test]
    fn bucket_index_and_edge_are_consistent() {
        // Every probed value must land in a bucket whose upper edge is
        // >= the value and within 1/32 relative error above it.
        let probes = [
            0u64, 1, 31, 32, 33, 63, 64, 100, 1_000, 4_095, 4_096, 65_535,
            1_000_000, 123_456_789, u64::MAX / 2, u64::MAX - 1, u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let edge = bucket_upper_edge(idx);
            assert!(edge >= v, "edge {edge} < value {v}");
            // Relative error bound (only meaningful for v >= 32).
            if v >= 32 {
                let err = (edge - v) as f64 / v as f64;
                assert!(err <= 1.0 / 32.0 + 1e-9, "value {v}: error {err}");
            }
            // Edges map back into their own bucket.
            assert_eq!(bucket_index(edge), idx, "edge {edge} of bucket {idx}");
            if edge < u64::MAX {
                assert!(bucket_index(edge + 1) > idx);
            }
        }
    }

    #[test]
    fn quantiles_bound_the_exact_values_within_the_error_budget() {
        // A deterministic skewed distribution: compare against exact
        // order statistics from a sorted copy.
        let mut h = LatencyHistogram::new();
        let mut values = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..100_000 {
            // xorshift-ish mix, squashed to a latency-like range.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 1_000 + (x % 1_000_000); // 1µs .. 1ms
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for &q in &[0.5f64, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = h.quantile(q);
            assert!(approx >= exact, "q{q}: approx {approx} < exact {exact}");
            let err = (approx - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q{q}: error {err} too large");
        }
        assert_eq!(h.max(), *values.last().unwrap());
        assert_eq!(h.quantile(1.0), *values.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..10_000u64 {
            let v = i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for &q in &[0.1f64, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q{q} differs after merge");
        }
    }

    #[test]
    fn merging_disjoint_shards_keeps_quantiles_within_the_error_budget() {
        // Cluster audit merges per-node histogram shards whose ranges do
        // not overlap at all (e.g. head-local bursts vs forwarded hops):
        // fast shard in 1..10µs, slow shard in 1..10ms. The merged
        // quantiles must still bound the exact order statistics within
        // the 1/32 ≈ 3.1% bucket error.
        let mut fast = LatencyHistogram::new();
        let mut slow = LatencyHistogram::new();
        let mut values = Vec::new();
        let mut x = 0x243f6a8885a308d3u64;
        for i in 0..50_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 4 == 0 {
                // Slow shard: 1ms .. 10ms — strictly above the fast range.
                let v = 1_000_000 + (x % 9_000_000);
                slow.record(v);
                values.push(v);
            } else {
                // Fast shard: 1µs .. 10µs.
                let v = 1_000 + (x % 9_000);
                fast.record(v);
                values.push(v);
            }
        }
        let mut merged = fast.clone();
        merged.merge(&slow);
        assert_eq!(merged.count(), 50_000);
        values.sort_unstable();
        // q=0.75 straddles the gap between the shards; the rest probe
        // deep inside each shard's range.
        for &q in &[0.25f64, 0.5, 0.74, 0.75, 0.76, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = merged.quantile(q);
            assert!(approx >= exact, "q{q}: approx {approx} < exact {exact}");
            let err = (approx - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "q{q}: error {err} exceeds 3.1%");
        }
        assert_eq!(merged.max(), *values.last().unwrap());
        // Merge order must not matter.
        let mut other = slow.clone();
        other.merge(&fast);
        for &q in &[0.25f64, 0.75, 0.999] {
            assert_eq!(merged.quantile(q), other.quantile(q));
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(10);
        h.record(20);
        h.record(33);
        assert_eq!(h.mean(), 21);
    }
}
