//! A tiny deterministic property-testing harness with the `proptest!`
//! macro surface the workspace's tests already use.
//!
//! Differences from the `proptest` crate, on purpose:
//!
//! * **Deterministic by default.** Cases derive from a fixed base seed
//!   (override with `CNET_PROPTEST_SEED`), so `cargo test` is replayable —
//!   the whole point of this workspace's consistency checkers. The base
//!   seed is logged to stderr at the start of every property run.
//! * **Shrinking-lite.** On failure the harness greedily tries a bounded
//!   set of structurally smaller inputs (range minimum / midpoint, shorter
//!   vectors, element-wise shrinks) and reports the smallest reproduction
//!   plus the case seed. No persistence files; regressions get pinned as
//!   explicit `#[test]`s instead.
//!
//! ```
//! use cnet_util::proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     fn sum_is_commutative(a in 0u64..100, b in 0u64..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{mix_seed, Rng, SeedableRng, StdRng};

/// Fallback base seed when `CNET_PROPTEST_SEED` is unset.
const DEFAULT_BASE_SEED: u64 = 0x636e_6574_2d70_7431; // "cnet-pt1"

/// How many shrink-candidate executions a failing case may spend.
const SHRINK_BUDGET: usize = 128;

/// Run-count configuration for a property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Structurally smaller variants of a failing input, most aggressive
    /// first. Default: no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// A strategy that post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// [`Strategy::prop_map`]'s adapter. Mapped values cannot shrink (the map
/// is not invertible), matching shrinking-lite's scope.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    if *value - 1 != self.start && Some(&(*value - 1)) != out.last() {
                        out.push(*value - 1);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let mut out = Vec::new();
        if *value > self.start {
            out.push(self.start);
            let mid = self.start + (*value - self.start) / 2.0;
            if mid > self.start && mid < *value {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{StdRng, Strategy};
    use crate::rng::Rng;

    /// A uniformly random boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The only boolean strategy: a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use crate::rng::Rng;
    use std::ops::Range;

    /// Length bounds for generated collections: `lo..hi` (half-open), or a
    /// single `usize` for an exact length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// A vector whose length is drawn from a [`SizeRange`] and whose
    /// elements come from an inner strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Shorter prefixes first (length is usually the dominant cost).
            if value.len() > self.size.lo {
                out.push(value[..self.size.lo].to_vec());
                let half = self.size.lo + (value.len() - self.size.lo) / 2;
                if half > self.size.lo && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            for (i, item) in value.iter().enumerate() {
                for cand in self.element.shrink(item) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The base seed for this process's property runs.
pub fn base_seed() -> u64 {
    std::env::var("CNET_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_BASE_SEED)
}

enum CaseOutcome {
    Pass,
    Fail(String),
    Panic(Box<dyn std::any::Any + Send>),
}

fn run_one<V>(
    test: &mut impl FnMut(V) -> Result<(), String>,
    input: V,
) -> CaseOutcome {
    match catch_unwind(AssertUnwindSafe(|| test(input))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(msg)) => CaseOutcome::Fail(msg),
        Err(payload) => CaseOutcome::Panic(payload),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

/// Drives one property: `config.cases` inputs drawn from `strategy`, each
/// from a seed derived deterministically from the base seed. On failure,
/// shrinks within [`SHRINK_BUDGET`] executions and panics with the
/// smallest reproduction found plus replay instructions.
///
/// This is the expansion target of the [`proptest!`](crate::proptest)
/// macro; call it directly for custom harnesses.
pub fn run_with<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> Result<(), String>,
) where
    S::Value: Clone + Debug,
{
    let base = base_seed();
    eprintln!(
        "proptest {name}: {} cases from base seed {base} \
         (replay: CNET_PROPTEST_SEED={base})",
        config.cases
    );
    for case in 0..config.cases {
        let seed = mix_seed(base, case as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = strategy.generate(&mut rng);
        let outcome = run_one(&mut test, input.clone());
        let first_message = match outcome {
            CaseOutcome::Pass => continue,
            CaseOutcome::Fail(msg) => msg,
            CaseOutcome::Panic(payload) => panic_message(payload.as_ref()),
        };

        // Greedy shrink: repeatedly take the first failing candidate.
        let mut minimal = input;
        let mut message = first_message;
        let mut budget = SHRINK_BUDGET;
        'shrinking: while budget > 0 {
            for cand in strategy.shrink(&minimal) {
                budget -= 1;
                match run_one(&mut test, cand.clone()) {
                    CaseOutcome::Pass => {}
                    CaseOutcome::Fail(msg) => {
                        minimal = cand;
                        message = msg;
                        continue 'shrinking;
                    }
                    CaseOutcome::Panic(payload) => {
                        minimal = cand;
                        message = panic_message(payload.as_ref());
                        continue 'shrinking;
                    }
                }
                if budget == 0 {
                    break;
                }
            }
            break;
        }

        panic!(
            "property {name} failed at case {case} (case seed {seed}): {message}\n\
             minimal failing input: {minimal:?}\n\
             replay the full run with CNET_PROPTEST_SEED={base}"
        );
    }
}

/// Re-runs `payload` panics from user code transparently.
#[doc(hidden)]
pub fn repanic(payload: Box<dyn std::any::Any + Send>) -> ! {
    resume_unwind(payload)
}

/// Everything a property-test module needs:
/// `use cnet_util::proptest::prelude::*;` brings in the [`Strategy`]
/// trait, [`ProptestConfig`], the `proptest!`/`prop_assert*!` macros, and
/// the module itself under both `proptest` and `prop` so existing
/// `proptest::bool::ANY` / `prop::collection::vec` paths keep resolving.
pub mod prelude {
    pub use crate::proptest::{ProptestConfig, Strategy};
    #[doc(no_inline)]
    pub use crate::proptest;
    #[doc(no_inline)]
    pub use crate::proptest as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0u32..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            $crate::proptest::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config: $crate::proptest::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::proptest::run_with(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// `assert!` for property bodies: failures are reported through the
/// shrinking machinery instead of an immediate panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left == right` ({})\n  left: {left:?}\n right: {right:?}",
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `left != right`\n  both: {left:?}"
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    proptest! {
        fn ranges_respect_bounds(x in 3u64..17, y in 0.0..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {y}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0u32..5, 2..6),
            w in prop::collection::vec(0u32..5, 4),
            b in proptest::bool::ANY,
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 5));
            let _ = b;
        }
    }

    proptest! {
        fn prop_map_transforms(n in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=9).contains(&n));
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let strat = collection::vec(0u64..1000, 1..20);
        let a = strat.generate(&mut StdRng::seed_from_u64(5));
        let b = strat.generate(&mut StdRng::seed_from_u64(5));
        let c = strat.generate(&mut StdRng::seed_from_u64(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn failures_shrink_and_report_seed() {
        let config = ProptestConfig::with_cases(50);
        let strat = (0u64..1000,);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_with("doc_example", &config, &strat, |(x,)| {
                // Fails for all x >= 10; minimal reproduction is x == 10.
                if x >= 10 {
                    Err(format!("{x} too big"))
                } else {
                    Ok(())
                }
            });
        }));
        let msg = panic_message(outcome.unwrap_err().as_ref());
        assert!(msg.contains("minimal failing input: (10,)"), "{msg}");
        assert!(msg.contains("CNET_PROPTEST_SEED"), "{msg}");
    }

    #[test]
    fn panics_inside_properties_are_reported_like_failures() {
        let config = ProptestConfig::with_cases(10);
        let strat = (0u64..100,);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_with("panicky", &config, &strat, |(x,)| {
                assert!(x > 1000, "x was {x}");
                Ok(())
            });
        }));
        let msg = panic_message(outcome.unwrap_err().as_ref());
        assert!(msg.contains("property panicky failed"), "{msg}");
        assert!(msg.contains("minimal failing input: (0,)"), "{msg}");
    }

    #[test]
    fn int_shrink_moves_toward_range_start() {
        let strat = 5u64..100;
        assert!(strat.shrink(&5).is_empty());
        let cands = strat.shrink(&80);
        assert_eq!(cands[0], 5);
        assert!(cands.iter().all(|&c| (5..80).contains(&c)));
    }
}
