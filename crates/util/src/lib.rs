//! Zero-dependency in-tree infrastructure for the counting-network
//! workspace.
//!
//! The workspace builds **offline, hermetically, from a clean checkout**:
//! no crates-io dependency may appear in any manifest (`scripts/verify.sh`
//! enforces this). Everything the crates used to pull from the registry is
//! replaced by a small, tested, deterministic implementation here:
//!
//! * [`rng`] — a seedable PCG64 generator (SplitMix64-seeded) with the
//!   `random_range` / `gen_range` / `shuffle` / `fill` surface the workload
//!   generators and schedule search use (replaces `rand`);
//! * [`json`] — a JSON value, writer, and parser plus the [`json::ToJson`]
//!   / [`json::FromJson`] traits and `json_struct!` / `json_newtype!`
//!   impl macros (replaces `serde` + `serde_json`);
//! * [`sync`] — a poison-free [`sync::Mutex`], an exponential
//!   [`sync::Backoff`], a cache-line-aligned [`sync::CachePadded`]
//!   wrapper, and an unbounded MPMC [`sync::channel`] (replaces
//!   `parking_lot` + `crossbeam`);
//! * [`proptest`] — a deterministic property-testing harness with the
//!   `proptest!` / `prop_assert!` macro surface, seeded case generation and
//!   failure-seed reporting (replaces `proptest`);
//! * [`bench`] — a criterion-compatible timer harness so the `benches/`
//!   targets compile and run as plain binaries (replaces `criterion`);
//! * [`time`] — a calibrated monotonic nanosecond clock ([`time::Clock`])
//!   cheap enough to timestamp individual lock-free operations (`rdtsc` on
//!   x86_64, `Instant` elsewhere), for the trace recorder in
//!   `cnet-runtime`;
//! * [`poll`] — a minimal level-triggered readiness poller (epoll on
//!   Linux via direct `extern "C"` declarations — no `libc` crate) plus a
//!   loopback-pair [`poll::Waker`], for the sharded reactor in `cnet-net`
//!   (replaces `mio`);
//! * [`hist`] — a fixed-size log-bucketed [`hist::LatencyHistogram`]
//!   (32 sub-buckets per octave, ≤3.1% quantile error) for the
//!   end-to-end p50/p99/p999 latency columns in the bench artifact
//!   (replaces `hdrhistogram`).
//!
//! Determinism is the point, not a side effect: the paper's consistency
//! checkers only mean something when runs are replayable, so every source
//! of pseudo-randomness in the workspace flows through [`rng`] from an
//! explicit, logged seed.

//!
//! With the `model-check` feature, the [`model`] module adds a
//! bounded-interleaving model checker: the [`sync::atomic`] shim types
//! route every operation through a cooperative scheduler that
//! exhaustively enumerates thread interleavings up to a preemption
//! bound, with deterministic replay strings for counterexamples. In
//! normal builds [`sync::atomic`] is a zero-cost `std` re-export.

pub mod bench;
pub mod hist;
pub mod json;
#[cfg(feature = "model-check")]
pub mod model;
pub mod poll;
pub mod proptest;
pub mod rng;
pub mod sync;
pub mod time;
