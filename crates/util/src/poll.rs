//! Minimal nonblocking readiness polling for the service layer.
//!
//! The reactor in `cnet-net` needs one thing the safe standard library
//! cannot express: "park this thread until any of these sockets is ready".
//! On Linux a [`Poller`] wraps an epoll instance through `extern "C"`
//! declarations of `epoll_create1` / `epoll_ctl` / `epoll_wait` — symbols
//! exported by the libc that `std` already links, so the workspace stays
//! hermetic (no `libc` crate, no registry dependency; see DESIGN.md,
//! "Dependencies"). The epoll fd is held as an [`std::os::fd::OwnedFd`]
//! so it closes on drop.
//!
//! Polling is **level-triggered**: a socket with unread input (or writable
//! buffer space, when write interest is registered) reports ready on every
//! [`Poller::wait`] until drained. Level-triggered readiness keeps the
//! per-connection state machine simple — a short read is never a lost
//! wakeup, just a future one.
//!
//! On non-Linux platforms the same API degrades to a portable fallback
//! that sleeps briefly and reports every registered source as ready;
//! correct (the caller's nonblocking reads/writes return `WouldBlock`
//! immediately) but it burns a little CPU per idle connection, so the
//! Linux path is the one that gets benchmarked.
//!
//! A [`Waker`] lets any thread interrupt a blocked [`Poller::wait`]. It is
//! built on a connected loopback TCP pair from `std::net` — no pipes, no
//! `eventfd`, hence no extra unsafe — with the read end registered in the
//! poller under a caller-chosen token and the write end poked with a
//! single byte by [`Waker::wake`].

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

/// What readiness a registered source should be watched for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source has bytes to read (or a peer hangup).
    pub readable: bool,
    /// Wake when the source can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest { readable: true, writable: false };

    /// Read and write readiness — used while a response is partially
    /// flushed and the connection waits for buffer space.
    pub const READABLE_WRITABLE: Interest = Interest { readable: true, writable: true };
}

/// One readiness report from [`Poller::wait`].
///
/// Error and hangup conditions are folded into *both* flags: the caller's
/// next read observes EOF or the error, and the next write surfaces it —
/// exactly the paths a level-triggered reactor already handles.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the source was registered with.
    pub token: u64,
    /// The source is readable (or has hung up / errored).
    pub readable: bool,
    /// The source is writable (or has hung up / errored).
    pub writable: bool,
}

/// A readiness queue over nonblocking sockets. See the module docs.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates a new, empty readiness queue.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: sys::Poller::new()? })
    }

    /// Starts watching `source` for `interest`, tagging future events with
    /// `token`. The source must already be in nonblocking mode; tokens are
    /// caller-chosen and need not be unique (the reactor uses slot ids).
    pub fn register(&self, source: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(source.as_raw_fd(), token, interest)
    }

    /// Changes the interest set (and token) of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(source.as_raw_fd(), token, interest)
    }

    /// Stops watching `source`. Must be called before the source is closed;
    /// dropping a registered fd without deregistering leaves a stale epoll
    /// entry until the kernel notices the close.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.inner.deregister(source.as_raw_fd())
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` = wait forever), or a [`Waker`] fires. Clears
    /// `events` and fills it with the ready set; returns the event count.
    /// A signal interruption reports as zero events rather than an error.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        self.inner.wait(events, timeout)?;
        Ok(events.len())
    }
}

/// A cross-thread wakeup handle for a [`Poller`]; see the module docs.
pub struct Waker {
    /// Write end: poked by `wake`, from any thread.
    tx: TcpStream,
    /// Read end: registered in the poller, drained by the poll loop.
    rx: TcpStream,
}

impl Waker {
    /// Builds a connected loopback pair and registers the read end in
    /// `poller` under `token`. Events carrying `token` mean "someone called
    /// [`Waker::wake`]" — call [`Waker::drain`] and re-check shared state.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        // A loopback TCP pair stands in for pipe2/eventfd: bind an
        // ephemeral listener, connect to it, accept the peer, drop the
        // listener. Nodelay so a 1-byte wake is not Nagle-delayed.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nodelay(true)?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poller.register(&rx, token, Interest::READABLE)?;
        Ok(Waker { tx, rx })
    }

    /// Wakes the poller. Safe to call from any thread, any number of
    /// times; wakes coalesce. A full socket buffer (`WouldBlock`) already
    /// guarantees a pending wakeup, so it is not an error.
    pub fn wake(&self) -> io::Result<()> {
        use std::io::Write;
        loop {
            match (&self.tx).write(&[1u8]) {
                Ok(_) => return Ok(()),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    /// Consumes pending wake bytes so the (level-triggered) poller stops
    /// reporting the waker as readable. Call on every waker event.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return,           // peer closed: shutdown path
                Ok(_) => continue,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,          // WouldBlock: fully drained
            }
        }
    }

    /// The registered read end, for deregistration during teardown.
    pub fn reader(&self) -> &TcpStream {
        &self.rx
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! Linux backend: epoll through `extern "C"` declarations against the
    //! libc `std` already links. This module owns the only `unsafe` in the
    //! polling layer; everything above it is safe code.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    /// `struct epoll_event` from `<sys/epoll.h>`. The kernel ABI packs it
    /// on x86_64 (12 bytes, unaligned u64 payload); other architectures
    /// use the natural C layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        // SAFETY (of the declarations): these signatures match the libc
        // prototypes for the epoll family on every Linux target; std
        // links libc, so the symbols are always present.
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    }

    /// Upper bound on events decoded per `epoll_wait` call. Level-triggered
    /// polling re-reports anything still ready, so a small fixed buffer
    /// never loses events — it only spreads a large ready set over
    /// several wakeups.
    const MAX_EVENTS: usize = 512;

    pub struct Poller {
        epfd: OwnedFd,
        /// Scratch buffer for `epoll_wait`, reused across calls.
        buf: Box<[EpollEvent; MAX_EVENTS]>,
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return is
            // an error reported through errno, checked below.
            #[allow(unsafe_code)]
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` is a freshly created epoll fd we exclusively
            // own; wrapping it in OwnedFd gives close-on-drop.
            #[allow(unsafe_code)]
            let epfd = unsafe { OwnedFd::from_raw_fd(fd) };
            Ok(Poller { epfd, buf: Box::new([EpollEvent { events: 0, data: 0 }; MAX_EVENTS]) })
        }

        fn ctl(&self, op: c_int, fd: RawFd, ev: Option<EpollEvent>) -> io::Result<()> {
            let mut ev = ev;
            let ptr = match ev.as_mut() {
                Some(e) => e as *mut EpollEvent,
                None => std::ptr::null_mut(),
            };
            // SAFETY: `ptr` is either null (EPOLL_CTL_DEL ignores it) or
            // points at a live stack-local EpollEvent for the duration of
            // the call; the kernel only reads it.
            #[allow(unsafe_code)]
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(EpollEvent { events: interest_bits(interest), data: token }))
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(EpollEvent { events: interest_bits(interest), data: token }))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 100µs timeout does not busy-spin as 0ms.
                Some(d) => d.as_millis().max(1).min(c_int::MAX as u128) as c_int,
            };
            // SAFETY: the buffer outlives the call and MAX_EVENTS matches
            // its length; the kernel writes at most `maxevents` entries.
            #[allow(unsafe_code)]
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    MAX_EVENTS as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                // A signal during the wait is a spurious (empty) wakeup,
                // not a poller failure.
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for i in 0..n as usize {
                // Copy out of the (possibly packed) struct before use —
                // no references into packed fields.
                let raw = self.buf[i];
                let bits = raw.events;
                let token = raw.data;
                let err = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0 || err,
                    writable: bits & EPOLLOUT != 0 || err,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallback: no readiness syscall, so `wait` sleeps in short
    //! slices and reports every registered source as ready. Callers run
    //! nonblocking I/O anyway, so spurious readiness is merely a few
    //! `WouldBlock` reads per slice — correct but not benchmark-grade.

    use super::{Event, Interest};
    use crate::sync::Mutex;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    /// How long one fallback wait slice sleeps: bounds waker latency.
    const SLICE: Duration = Duration::from_millis(2);

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { registered: Mutex::new(Vec::new()) })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.lock().push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut reg = self.registered.lock();
            for entry in reg.iter_mut() {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().retain(|e| e.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            std::thread::sleep(match timeout {
                Some(t) => t.min(SLICE),
                None => SLICE,
            });
            for &(_, token, interest) in self.registered.lock().iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    /// A connected nonblocking loopback pair for driving the poller.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        a.set_nodelay(true).unwrap();
        b.set_nodelay(true).unwrap();
        (a, b)
    }

    /// Waits until an event with `token` and the asked-for readiness shows
    /// up, with a bounded number of poll rounds.
    fn wait_for(poller: &mut Poller, token: u64, readable: bool) -> Event {
        let mut events = Vec::new();
        for _ in 0..500 {
            poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            if let Some(ev) = events
                .iter()
                .find(|e| e.token == token && (!readable || e.readable))
            {
                return *ev;
            }
        }
        panic!("no event for token {token} within budget");
    }

    #[test]
    fn readable_event_fires_when_bytes_arrive() {
        let mut poller = Poller::new().unwrap();
        let (tx, rx) = pair();
        poller.register(&rx, 7, Interest::READABLE).unwrap();
        (&tx).write_all(b"x").unwrap();
        let ev = wait_for(&mut poller, 7, true);
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        assert_eq!((&rx).read(&mut buf).unwrap(), 1);
        poller.deregister(&rx).unwrap();
    }

    #[test]
    fn timeout_expires_without_events() {
        let mut poller = Poller::new().unwrap();
        let (_tx, rx) = pair();
        poller.register(&rx, 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Some(Duration::from_millis(30))).unwrap();
        // Linux: nothing is readable, so the wait blocks for the timeout
        // and returns empty. The fallback may report spurious readiness;
        // either way the call returns promptly.
        assert!(start.elapsed() < Duration::from_secs(5));
        #[cfg(target_os = "linux")]
        assert!(events.iter().all(|e| e.token != 1) || events.is_empty());
    }

    #[test]
    fn writable_interest_reports_on_an_open_socket() {
        let mut poller = Poller::new().unwrap();
        let (tx, _rx) = pair();
        poller.register(&tx, 3, Interest::READABLE_WRITABLE).unwrap();
        let ev = wait_for(&mut poller, 3, false);
        assert!(ev.writable, "fresh socket buffer should accept writes");
    }

    #[test]
    fn modify_switches_interest() {
        let mut poller = Poller::new().unwrap();
        let (tx, rx) = pair();
        poller.register(&rx, 9, Interest::READABLE).unwrap();
        (&tx).write_all(b"y").unwrap();
        wait_for(&mut poller, 9, true);
        // Retag under a new token; the old token must stop appearing.
        poller.modify(&rx, 10, Interest::READABLE).unwrap();
        let ev = wait_for(&mut poller, 10, true);
        assert!(ev.readable);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, u64::MAX).unwrap());
        let mut poller = poller;
        let w = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        let ev = wait_for(&mut poller, u64::MAX, true);
        assert!(ev.readable);
        waker.drain();
        handle.join().unwrap();
        // After draining, the waker should go quiet on Linux.
        #[cfg(target_os = "linux")]
        {
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert!(events.iter().all(|e| e.token != u64::MAX));
        }
    }

    #[test]
    fn wakes_coalesce_and_drain_clears_them() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&poller, 42).unwrap();
        for _ in 0..1000 {
            waker.wake().unwrap();
        }
        let ev = wait_for(&mut poller, 42, true);
        assert!(ev.readable);
        waker.drain();
        #[cfg(target_os = "linux")]
        {
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
            assert!(events.iter().all(|e| e.token != 42), "drain must clear readiness");
        }
    }

    #[test]
    fn hangup_reports_as_readable() {
        let mut poller = Poller::new().unwrap();
        let (tx, rx) = pair();
        poller.register(&rx, 5, Interest::READABLE).unwrap();
        drop(tx);
        let ev = wait_for(&mut poller, 5, true);
        assert!(ev.readable, "peer close must surface as readability (EOF)");
    }
}
