//! Minimal JSON value, writer, parser, and derive-free serialization
//! traits.
//!
//! Replaces `serde`/`serde_json` for the workspace's artifact formats
//! (network descriptions, schedule specs, execution histories, CLI
//! artifacts). The wire format is serde-compatible so artifacts written by
//! earlier builds still parse:
//!
//! * structs → objects with the field names, in declaration order;
//! * newtype ids → their inner number, transparently;
//! * enums → externally tagged (`"Unit"` or `{"Variant": {...}}`);
//! * maps with numeric keys → objects with stringified keys;
//! * `Option` → `null` or the inner value;
//! * non-integral floats via `{:?}` (shortest round-trip, `99.0` not `99`).
//!
//! Types opt in by implementing [`ToJson`]/[`FromJson`], usually via the
//! [`json_struct!`](crate::json_struct) / [`json_newtype!`](crate::json_newtype)
//! macros, which expand inside the defining module and therefore reach
//! private fields.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// writer emits fields in the order a struct declares them, which keeps
/// artifacts diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A serialization or deserialization failure, with a human-readable path
/// hint where available.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// Prefixes the message with a field/element context.
    pub fn in_context(self, ctx: &str) -> Self {
        JsonError {
            msg: format!("{}: {}", ctx, self.msg),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Member lookup; `None` when `self` is not an object or lacks `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable member lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Compact serialization of this value.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Pretty serialization (two-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no member {key:?} in {self:?}"))
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self.get_mut(key) {
            Some(v) => v,
            None => panic!("no member {key:?}"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => &a[idx],
            other => panic!("cannot index {other:?} with {idx}"),
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            other => panic!("cannot index {other:?} with {idx}"),
        }
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Int(v as i64)
            }
        }
    )*};
}

impl_value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    fn to_json(&self) -> Value;
}

/// Conversion from a JSON [`Value`].
pub trait FromJson: Sized {
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i).map_err(|_| {
                        JsonError::new(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    ref other => Err(JsonError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64()
            .ok_or_else(|| JsonError::new(format!("expected number, found {v:?}")))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, found {v:?}")))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(JsonError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    T::from_json(item).map_err(|e| e.in_context(&format!("[{i}]")))
                })
                .collect(),
            other => Err(JsonError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

/// Types usable as `BTreeMap` keys in JSON objects (serialized as member
/// names, like serde's integer-keyed maps).
pub trait JsonMapKey: Sized + Ord {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, JsonError>;
}

impl JsonMapKey for usize {
    fn to_key(&self) -> String {
        self.to_string()
    }

    fn from_key(s: &str) -> Result<Self, JsonError> {
        s.parse()
            .map_err(|_| JsonError::new(format!("invalid integer key {s:?}")))
    }
}

impl JsonMapKey for u64 {
    fn to_key(&self) -> String {
        self.to_string()
    }

    fn from_key(s: &str) -> Result<Self, JsonError> {
        s.parse()
            .map_err(|_| JsonError::new(format!("invalid integer key {s:?}")))
    }
}

impl JsonMapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, JsonError> {
        Ok(s.to_string())
    }
}

impl<K: JsonMapKey, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonMapKey, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| {
                    Ok((
                        K::from_key(k)?,
                        V::from_json(v).map_err(|e| e.in_context(k))?,
                    ))
                })
                .collect(),
            other => Err(JsonError::new(format!("expected object, found {other:?}"))),
        }
    }
}

/// Looks up and deserializes a struct field, with the name attached to any
/// error. Missing fields deserialize as `Null` (so `Option` fields may be
/// omitted, matching serde's common `default` pattern for options).
pub fn field<T: FromJson>(v: &Value, name: &str) -> Result<T, JsonError> {
    match v {
        Value::Object(_) => {
            let member = v.get(name).unwrap_or(&Value::Null);
            if matches!(member, Value::Null) && v.get(name).is_none() {
                // Distinguish "absent" for better messages on non-Option types.
                T::from_json(&Value::Null)
                    .map_err(|_| JsonError::new(format!("missing field {name:?}")))
            } else {
                T::from_json(member).map_err(|e| e.in_context(name))
            }
        }
        other => Err(JsonError::new(format!(
            "expected object with field {name:?}, found {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Top-level entry points
// ---------------------------------------------------------------------------

/// Serializes to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_json_string()
}

/// Serializes to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_json_string_pretty()
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: ToJson + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Reconstructs a value from a [`Value`] tree.
pub fn from_value<T: FromJson>(v: &Value) -> Result<T, JsonError> {
    T::from_json(v)
}

/// Parses a JSON document and deserializes it.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&parse(s)?)
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` is the shortest representation that round-trips, and keeps
        // a ".0" on integral values — matching serde_json's output.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/inf; serde_json writes null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = |out: &mut String, n: usize| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            None => Err(JsonError::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(JsonError::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(JsonError::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(JsonError::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(JsonError::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| JsonError::new("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(JsonError::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let cp =
            u32::from_str_radix(s, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
        }
    }
}

// ---------------------------------------------------------------------------
// Impl macros
// ---------------------------------------------------------------------------

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serializing as an object in field order. Expand it inside the struct's
/// defining module so private fields are reachable:
///
/// ```
/// use cnet_util::json_struct;
///
/// struct Point {
///     x: i64,
///     y: i64,
/// }
///
/// json_struct!(Point { x, y });
///
/// let v = cnet_util::json::to_string(&Point { x: 1, y: 2 });
/// assert_eq!(v, r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Object(vec![
                    $(
                        (
                            stringify!($field).to_string(),
                            $crate::json::ToJson::to_json(&self.$field),
                        ),
                    )+
                ])
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($name {
                    $($field: $crate::json::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a single-field tuple struct,
/// serializing transparently as the inner value (serde's newtype
/// convention — ids stay plain numbers on the wire).
///
/// ```
/// use cnet_util::json_newtype;
///
/// #[derive(Debug, PartialEq)]
/// struct TokenId(usize);
///
/// json_newtype!(TokenId: usize);
///
/// assert_eq!(cnet_util::json::to_string(&TokenId(7)), "7");
/// ```
#[macro_export]
macro_rules! json_newtype {
    ($name:ident: $inner:ty) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::ToJson::to_json(&self.0)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                <$inner as $crate::json::FromJson>::from_json(v).map($name)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for doc in ["null", "true", "false", "0", "-17", "42"] {
            assert_eq!(parse(doc).unwrap().to_json_string(), doc);
        }
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Value::Float(99.0).to_json_string(), "99.0");
        assert_eq!(Value::Float(0.125).to_json_string(), "0.125");
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-2.5e-2").unwrap(), Value::Float(-0.025));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quote\" and \\ backslash\nand\ttabs \u{1F600} ok";
        let doc = Value::Str(s.to_string()).to_json_string();
        assert_eq!(parse(&doc).unwrap(), Value::Str(s.to_string()));
        assert_eq!(
            parse(r#""Aé😀""#).unwrap(),
            Value::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let doc = r#"{"z":1,"a":[true,null,{"k":2.5}],"m":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.to_json_string(), doc);
        assert_eq!(v["z"], Value::Int(1));
        assert_eq!(v["a"][2]["k"], Value::Float(2.5));
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let doc = r#"{"family":"bitonic","w":4,"specs":[{"p":0,"t":[1.0,2.0]},{"p":1,"t":[]}]}"#;
        let v = parse(doc).unwrap();
        let pretty = v.to_json_string_pretty();
        assert!(pretty.contains("\n  \"family\": \"bitonic\""));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for doc in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "", "{'a':1}"] {
            assert!(parse(doc).is_err(), "{doc:?} should not parse");
        }
    }

    #[test]
    fn typed_primitives_enforce_types() {
        assert_eq!(from_str::<u64>("5").unwrap(), 5);
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u64>("\"5\"").is_err());
        assert!(from_str::<String>("3").is_err());
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("9").unwrap(), Some(9));
        assert_eq!(from_str::<Vec<u8>>("[1,2,3]").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3usize, vec![1.0f64]);
        m.insert(1usize, vec![]);
        let doc = to_string(&m);
        assert_eq!(doc, r#"{"1":[],"3":[1.0]}"#);
        let back: BTreeMap<usize, Vec<f64>> = from_str(&doc).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn struct_macro_round_trips_with_private_fields() {
        mod inner {
            pub struct Secret {
                a: u32,
                b: Option<f64>,
                c: Vec<String>,
            }

            crate::json_struct!(Secret { a, b, c });

            impl Secret {
                pub fn new() -> Self {
                    Secret {
                        a: 7,
                        b: None,
                        c: vec!["x".into()],
                    }
                }

                pub fn parts(&self) -> (u32, Option<f64>, &[String]) {
                    (self.a, self.b, &self.c)
                }
            }
        }

        let s = inner::Secret::new();
        let doc = to_string(&s);
        assert_eq!(doc, r#"{"a":7,"b":null,"c":["x"]}"#);
        let back: inner::Secret = from_str(&doc).unwrap();
        assert_eq!(back.parts(), s.parts());
        // Omitted Option fields read as None; omitted required fields fail.
        let partial: inner::Secret = from_str(r#"{"a":1,"c":[]}"#).unwrap();
        assert_eq!(partial.parts().1, None);
        assert!(from_str::<inner::Secret>(r#"{"b":1.0,"c":[]}"#).is_err());
    }

    #[test]
    fn newtype_macro_is_transparent() {
        #[derive(Debug, PartialEq)]
        struct Id(usize);
        json_newtype!(Id: usize);
        assert_eq!(to_string(&Id(12)), "12");
        assert_eq!(from_str::<Id>("12").unwrap(), Id(12));
        assert!(from_str::<Id>("\"12\"").is_err());
    }

    #[test]
    fn value_mutation_surface_works() {
        let mut v = parse(r#"{"steps":[{"time":1.0,"k":2}]}"#).unwrap();
        v["steps"].as_array_mut().unwrap()[0]["time"] = 99.0.into();
        let old = v["steps"][0]["k"].as_u64().unwrap();
        v["steps"][0]["k"] = (old + 4).into();
        assert_eq!(v.to_json_string(), r#"{"steps":[{"time":99.0,"k":6}]}"#);
        v["steps"].as_array_mut().unwrap().pop();
        assert_eq!(v.to_json_string(), r#"{"steps":[]}"#);
    }

    #[test]
    fn error_messages_name_the_path() {
        let err = from_str::<Vec<u64>>("[1,\"x\"]").unwrap_err();
        assert!(err.to_string().contains("[1]"), "{err}");
        #[derive(Debug)]
        struct S {
            n: u64,
        }
        json_struct!(S { n });
        let err = from_str::<S>(r#"{"n":"x"}"#).unwrap_err();
        assert!(err.to_string().contains('n'), "{err}");
        let err = from_str::<S>("{}").unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }
}
