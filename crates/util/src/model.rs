//! A bounded-interleaving model checker for the workspace's lock-free
//! core (compiled only under the `model-check` feature).
//!
//! Stress tests sample a vanishing fraction of the interleavings of a
//! lock-free algorithm; this module *enumerates* them. Test code wraps a
//! scenario in [`explore`], which runs the scenario once per distinct
//! schedule of its 2–3 logical threads, exhaustively, up to a
//! **preemption bound** (CHESS-style: most real bugs need very few
//! preemptions, and bounding them keeps the schedule tree polynomial
//! where spin loops would otherwise make it exponential).
//!
//! ## How scheduling works
//!
//! Production code never imports this module directly. It uses the shim
//! types in [`crate::sync::atomic`] (plus the shim
//! [`crate::sync::Mutex`] and [`crate::sync::Backoff`]), which compile
//! to plain `std` re-exports normally. Under `model-check` every atomic
//! load/store/RMW first calls [`op_point`]: if the calling OS thread is
//! one of the scenario's logical threads, it parks until the scheduler
//! grants it permission to execute exactly one operation. Exactly one
//! logical thread runs at any instant, so an execution is fully
//! determined by the sequence of grant decisions — and that sequence is
//! driven by a depth-first search over a persistent decision stack,
//! giving exhaustive enumeration with deterministic replay.
//!
//! Decisions with a single runnable alternative are not recorded; the
//! branch points that remain form a **replay string**
//! (`v1:<threads>:<bound>:<tid>.<tid>...`) printed with every failure,
//! so any counterexample schedule reruns in one call to [`replay`].
//!
//! ## What is and is not explored
//!
//! * Explored: every sequentially consistent interleaving of shim
//!   atomic operations, shim `Mutex` acquisitions, and spin-loop yields
//!   ([`crate::sync::Backoff::snooze`] becomes a scheduling point), up
//!   to the preemption bound.
//! * Not explored: weak-memory (non-SC) reorderings — shim ops run at
//!   `SeqCst` regardless of the ordering argument; spurious
//!   `compare_exchange_weak` failures; `fetch_update` is treated as one
//!   atomic RMW rather than a load + CAS loop; `Condvar` waits (the
//!   channel in [`crate::sync`]) are unsupported inside scenarios.
//!
//! Yield semantics keep spin loops finite: a thread that parks at a
//! yield point is ineligible to run until *every* other unfinished
//! thread has passed a scheduling point (the CHESS fairness rule —
//! anything weaker lets two spinners re-enable each other forever and
//! the schedule tree stops being finite). If only yielded threads
//! remain they become eligible again, and a per-execution step cap
//! converts true livelock or deadlock into a reported failure with a
//! replay string.
//!
//! Time is virtualized too: while a scenario is running,
//! [`crate::time::raw_ticks`] returns a strictly increasing logical
//! counter instead of `rdtsc`, so timestamp-dependent code (the trace
//! recorder) is deterministic under the model.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard, Once};

/// Sentinel distinguishing "no thread granted".
const NONE: usize = usize::MAX;

/// Per-execution scheduling-point cap: past this, the execution is
/// reported as livelock/divergence rather than explored further.
const STEP_CAP: usize = 200_000;

/// Kind of scheduling point a logical thread has parked at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Point {
    /// About to execute an atomic operation (or lock attempt).
    Op,
    /// Spin-loop backoff: ineligible until another thread progresses.
    Yield,
    /// The thread's scenario closure returned.
    Finish,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Granted and executing (or not yet parked).
    Running,
    /// Parked at a point, waiting for a grant.
    Parked(Point),
    Finished,
}

/// One recorded branch point of the DFS: which alternative was taken
/// out of the runnable set (only sets with ≥ 2 alternatives are
/// recorded).
struct Decision {
    chosen: usize,
    alternatives: Vec<usize>,
}

struct Core {
    status: Vec<Status>,
    /// Thread currently granted (or `NONE`).
    current: usize,
    /// True while `current` holds an unconsumed one-operation grant.
    token: bool,
    /// Threads that have reached the start barrier.
    started: usize,
    /// Per-thread fairness mask: while `yield_wait[t]` is non-zero, a
    /// thread parked at a yield stays ineligible; bit `u` means thread
    /// `u` has not passed a scheduling point since `t` yielded.
    yield_wait: Vec<u32>,
    preemptions: usize,
    steps: usize,
    /// Branch decisions consumed so far this execution.
    depth: usize,
    /// Persistent DFS decision stack (prefix replayed each execution).
    path: Vec<Decision>,
    /// Explicit replay mode: forced thread ids per branch point.
    forced: Option<Vec<usize>>,
    failed: Option<String>,
}

struct Sched {
    threads: usize,
    bound: usize,
    core: StdMutex<Core>,
    cv: Condvar,
}

/// Panic payload used to unwind parked threads during teardown after a
/// failure elsewhere; never reported as the failure itself.
struct Abort;

struct Ctx {
    sched: Arc<Sched>,
    tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// Set on the driver thread for the duration of explore/replay so
    /// `make`/`check` closures also see logical time.
    static DRIVER_SESSION: Cell<bool> = const { Cell::new(false) };
}

/// Process-global logical clock backing `time::raw_ticks` during model
/// sessions. Monotone forever; only relative order matters.
static LOGICAL_TICKS: StdAtomicU64 = StdAtomicU64::new(1);

/// `Some(tick)` when the calling thread is inside a model session (a
/// scenario logical thread, or the driver during make/run/check), else
/// `None`. Called by `crate::time::raw_ticks`; not a scheduling point.
pub(crate) fn logical_raw_ticks() -> Option<u64> {
    let modeled = CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false)
        || DRIVER_SESSION.try_with(Cell::get).unwrap_or(false);
    if modeled {
        Some(LOGICAL_TICKS.fetch_add(1, StdOrdering::Relaxed))
    } else {
        None
    }
}

/// Whether the calling OS thread is a scenario logical thread. Used by
/// the shims to decide whether an operation must be scheduled.
pub fn thread_is_modeled() -> bool {
    CTX.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

fn with_ctx(f: impl FnOnce(&Sched, usize)) {
    let ctx = CTX.with(|c| {
        c.borrow().as_ref().map(|x| (Arc::clone(&x.sched), x.tid))
    });
    if let Some((sched, tid)) = ctx {
        f(&sched, tid);
    }
}

/// Scheduling point before an atomic operation (no-op outside a
/// scenario thread). The shim atomics call this before every op.
#[inline]
pub fn op_point() {
    with_ctx(|sched, tid| sched.op_point_impl(tid));
}

/// Scheduling point for a spin-loop backoff: parks the thread until
/// some other thread has progressed (no-op outside a scenario thread).
#[inline]
pub fn yield_point() {
    with_ctx(|sched, tid| sched.park_entry(tid, Point::Yield));
}

impl Sched {
    fn lock(&self) -> MutexGuard<'_, Core> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn op_point_impl(&self, tid: usize) {
        let mut core = self.lock();
        if core.failed.is_some() {
            drop(core);
            panic::panic_any(Abort);
        }
        if core.current == tid && core.token {
            // The grant covers exactly this one operation.
            core.token = false;
            return;
        }
        self.park(core, tid, Point::Op);
    }

    fn park_entry(&self, tid: usize, kind: Point) {
        let core = self.lock();
        if core.failed.is_some() {
            drop(core);
            panic::panic_any(Abort);
        }
        self.park(core, tid, kind);
    }

    /// Parks `tid` at a point, runs the next scheduling decision, and
    /// (unless `kind == Finish`) blocks until `tid` is granted again.
    fn park(&self, mut core: MutexGuard<'_, Core>, tid: usize, kind: Point) {
        // Defensive: abandoning an unconsumed grant (possible only if a
        // scenario yields twice with no operation in between).
        if core.current == tid {
            core.token = false;
        }
        core.steps += 1;
        if core.steps > STEP_CAP {
            self.fail_locked(
                core,
                format!(
                    "execution exceeded {STEP_CAP} scheduling points \
                     (livelock or deadlock in the scenario)"
                ),
            );
        }
        // Fairness (the CHESS rule that keeps spin loops finite): a
        // yielded thread becomes eligible only after EVERY other
        // unfinished thread has passed a scheduling point. Anything
        // weaker lets two spinners re-enable each other forever and the
        // DFS tree stops being finite. The caller just passed a point,
        // so clear its bit everywhere.
        for t in 0..self.threads {
            if t != tid && core.status[t] == Status::Parked(Point::Yield) {
                core.yield_wait[t] &= !(1 << tid);
                if core.yield_wait[t] == 0 {
                    core.status[t] = Status::Parked(Point::Op);
                }
            }
        }
        core.status[tid] = match kind {
            Point::Finish => Status::Finished,
            k => Status::Parked(k),
        };
        if kind == Point::Yield {
            core.yield_wait[tid] = (0..self.threads)
                .filter(|&t| t != tid && core.status[t] != Status::Finished)
                .fold(0, |m, t| m | (1 << t));
        }
        if let Err(msg) = self.decide(&mut core, Some(tid)) {
            self.fail_locked(core, msg);
        }
        if kind == Point::Finish {
            drop(core);
            self.cv.notify_all();
            return;
        }
        // An `Op` park is itself the scheduling point of a pending
        // operation, so its grant is consumed on wake-up; a `Yield`
        // park keeps the grant for the next real operation (otherwise
        // every spin iteration would cost two decisions).
        let consume = kind == Point::Op;
        if core.current == tid {
            if consume {
                core.token = false;
            }
            core.status[tid] = Status::Running;
            return;
        }
        drop(core);
        self.cv.notify_all();
        self.acquire_grant(tid, consume);
    }

    /// Blocks until `tid` holds the grant (or aborts on failure).
    /// `consume` spends the one-operation token immediately — true only
    /// when the caller parked at an `Op` point whose operation executes
    /// as soon as this returns.
    fn acquire_grant(&self, tid: usize, consume: bool) {
        let mut core = self.lock();
        loop {
            if core.failed.is_some() {
                drop(core);
                panic::panic_any(Abort);
            }
            if core.current == tid && core.token {
                if consume {
                    core.token = false;
                }
                core.status[tid] = Status::Running;
                return;
            }
            core = self.cv.wait(core).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Start barrier: the first decision fires only once every logical
    /// thread has parked, so thread spawn order never leaks into the
    /// schedule.
    fn announce_start(&self, tid: usize) {
        let mut core = self.lock();
        core.status[tid] = Status::Parked(Point::Op);
        core.started += 1;
        if core.started == self.threads {
            if let Err(msg) = self.decide(&mut core, None) {
                self.fail_locked(core, msg);
            }
            if core.current == tid {
                // Keep the token: the thread's first op point spends it.
                core.status[tid] = Status::Running;
                return;
            }
            drop(core);
            self.cv.notify_all();
        } else {
            drop(core);
        }
        self.acquire_grant(tid, false);
    }

    /// Picks the next thread to grant one operation to. `prev` is the
    /// thread whose park triggered this decision (`None` at the start
    /// barrier).
    fn decide(&self, core: &mut Core, prev: Option<usize>) -> Result<(), String> {
        let ops: Vec<usize> = (0..self.threads)
            .filter(|&t| core.status[t] == Status::Parked(Point::Op))
            .collect();
        let eligible: Vec<usize> = if ops.is_empty() {
            (0..self.threads)
                .filter(|&t| core.status[t] == Status::Parked(Point::Yield))
                .collect()
        } else {
            ops
        };
        if eligible.is_empty() {
            // All threads finished; nothing left to schedule.
            core.current = NONE;
            core.token = false;
            return Ok(());
        }
        // A switch away from a thread that still has an operation
        // pending is a preemption and is bounded; switches at yield or
        // finish points are free.
        let contended =
            prev.filter(|&p| core.status[p] == Status::Parked(Point::Op));
        let alts: Vec<usize> = match contended {
            Some(p) if core.preemptions >= self.bound => vec![p],
            Some(p) => std::iter::once(p)
                .chain(eligible.iter().copied().filter(|&t| t != p))
                .collect(),
            None => eligible,
        };
        let next = self.choose(core, alts)?;
        if let Some(p) = contended {
            if next != p {
                core.preemptions += 1;
            }
        }
        core.current = next;
        core.token = true;
        Ok(())
    }

    /// Resolves a runnable set via the DFS stack (or a forced replay).
    /// Only sets with ≥ 2 alternatives consume a branch decision.
    fn choose(&self, core: &mut Core, alts: Vec<usize>) -> Result<usize, String> {
        if alts.len() == 1 {
            return Ok(alts[0]);
        }
        let i = core.depth;
        core.depth += 1;
        if let Some(forced) = &core.forced {
            // Best-effort once the scenario diverges from the recorded
            // schedule: a *fixed* scenario legitimately takes different
            // branches than the buggy code the counterexample was found
            // against, so an unrunnable forced choice (or a too-short
            // string) falls back to the first runnable alternative.
            return match forced.get(i).copied() {
                Some(t) if alts.contains(&t) => Ok(t),
                _ => Ok(alts[0]),
            };
        }
        if i < core.path.len() {
            debug_assert_eq!(
                core.path[i].alternatives, alts,
                "scenario is nondeterministic: runnable sets diverged \
                 while replaying a DFS prefix"
            );
            let d = &core.path[i];
            Ok(d.alternatives[d.chosen])
        } else {
            core.path.push(Decision { chosen: 0, alternatives: alts.clone() });
            Ok(alts[0])
        }
    }

    /// Records the first failure, wakes everyone, and unwinds the
    /// calling thread.
    fn fail_locked(&self, mut core: MutexGuard<'_, Core>, msg: String) -> ! {
        if core.failed.is_none() {
            core.failed = Some(msg);
        }
        drop(core);
        self.cv.notify_all();
        panic::panic_any(Abort)
    }

    /// Records a panic that escaped a scenario closure.
    fn record_panic(&self, msg: String) {
        let mut core = self.lock();
        if core.failed.is_none() {
            core.failed = Some(msg);
        }
        drop(core);
        self.cv.notify_all();
    }
}

/// Statistics from a completed (failure-free) exploration.
#[derive(Debug, Clone, Copy)]
pub struct Explored {
    /// Distinct schedules executed to completion.
    pub schedules: u64,
    /// Total scheduling points across all executions.
    pub points: u64,
    /// Deepest branch-decision stack reached.
    pub max_depth: usize,
}

/// A schedule that violated the scenario's invariants.
#[derive(Debug)]
pub struct Failure {
    /// Replay string (`v1:<threads>:<bound>:<tid>.<tid>...`) that
    /// reproduces the failing schedule via [`replay`].
    pub replay: String,
    /// The panic message of the failed execution or check.
    pub message: String,
    /// Schedules that completed cleanly before the failure.
    pub schedules: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule violates invariant after {} clean schedules: {}\n  \
             replay with: {}",
            self.schedules, self.message, self.replay
        )
    }
}

fn replay_string(threads: usize, bound: usize, path: &[Decision]) -> String {
    let choices: Vec<String> = path
        .iter()
        .map(|d| d.alternatives[d.chosen].to_string())
        .collect();
    format!("v1:{threads}:{bound}:{}", choices.join("."))
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Suppresses the default panic printout for scenario threads (their
/// panics are caught and reported once, with a replay string, by the
/// driver). Installed once per process; panics on non-scenario threads
/// print as usual.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !thread_is_modeled() {
                prev(info);
            }
        }));
    });
}

struct SessionGuard;

impl SessionGuard {
    fn enter() -> SessionGuard {
        DRIVER_SESSION.with(|d| d.set(true));
        SessionGuard
    }
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        DRIVER_SESSION.with(|d| d.set(false));
    }
}

/// Runs one execution under the schedule prescribed by `path` (DFS
/// mode) or `forced` (replay mode). Returns the failure (if any), the
/// decision stack, the decisions consumed, and the points visited.
fn run_once<S, M, R, C>(
    threads: usize,
    bound: usize,
    path: Vec<Decision>,
    forced: Option<Vec<usize>>,
    make: &M,
    run: &R,
    check: &C,
) -> (Option<String>, Vec<Decision>, usize, u64)
where
    S: Sync,
    M: Fn() -> S,
    R: Fn(&S, usize) + Sync,
    C: Fn(&S),
{
    let _session = SessionGuard::enter();
    let sched = Arc::new(Sched {
        threads,
        bound,
        core: StdMutex::new(Core {
            status: vec![Status::Running; threads],
            current: NONE,
            token: false,
            started: 0,
            yield_wait: vec![0; threads],
            preemptions: 0,
            steps: 0,
            depth: 0,
            path,
            forced,
            failed: None,
        }),
        cv: Condvar::new(),
    });
    let state = make();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let sched = Arc::clone(&sched);
            let state = &state;
            scope.spawn(move || {
                CTX.with(|c| {
                    *c.borrow_mut() =
                        Some(Ctx { sched: Arc::clone(&sched), tid })
                });
                let result = panic::catch_unwind(AssertUnwindSafe(|| {
                    sched.announce_start(tid);
                    run(state, tid);
                    sched.park_entry(tid, Point::Finish);
                }));
                CTX.with(|c| *c.borrow_mut() = None);
                if let Err(payload) = result {
                    if payload.downcast_ref::<Abort>().is_none() {
                        sched.record_panic(format!(
                            "thread {tid} panicked: {}",
                            payload_message(payload.as_ref())
                        ));
                    }
                }
            });
        }
    });
    let sched = Arc::try_unwrap(sched)
        .ok()
        .expect("all model threads have exited");
    let mut core =
        sched.core.into_inner().unwrap_or_else(|e| e.into_inner());
    if core.failed.is_none() {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| check(&state))) {
            core.failed = Some(format!(
                "check failed: {}",
                payload_message(payload.as_ref())
            ));
        }
    }
    (core.failed, core.path, core.depth, core.steps as u64)
}

/// Exhaustively explores every schedule of `threads` logical threads
/// running `run`, up to `bound` preemptions, returning statistics — or
/// the first [`Failure`] with its replay string.
///
/// Per schedule: `make()` builds fresh shared state on the driver,
/// `run(&state, tid)` executes on each logical thread under the
/// cooperative scheduler, and `check(&state)` validates the final
/// (quiescent) state on the driver. Panics anywhere become the
/// failure message.
pub fn try_explore<S, M, R, C>(
    threads: usize,
    bound: usize,
    make: M,
    run: R,
    check: C,
) -> Result<Explored, Failure>
where
    S: Sync,
    M: Fn() -> S,
    R: Fn(&S, usize) + Sync,
    C: Fn(&S),
{
    assert!(
        (1..=8).contains(&threads),
        "model: thread count must be in 1..=8"
    );
    install_quiet_hook();
    let mut path: Vec<Decision> = Vec::new();
    let mut schedules = 0u64;
    let mut points = 0u64;
    let mut max_depth = 0usize;
    loop {
        let (failed, new_path, depth, steps) =
            run_once(threads, bound, path, None, &make, &run, &check);
        path = new_path;
        points += steps;
        max_depth = max_depth.max(depth);
        if let Some(message) = failed {
            path.truncate(depth);
            return Err(Failure {
                replay: replay_string(threads, bound, &path),
                message,
                schedules,
            });
        }
        schedules += 1;
        // Backtrack: advance the deepest unexhausted branch decision.
        loop {
            match path.last_mut() {
                None => {
                    return Ok(Explored { schedules, points, max_depth })
                }
                Some(d) if d.chosen + 1 < d.alternatives.len() => {
                    d.chosen += 1;
                    break;
                }
                Some(_) => {
                    path.pop();
                }
            }
        }
    }
}

/// Like [`try_explore`], but panics with the failure message and replay
/// string on a counterexample. This is the main test entry point.
pub fn explore<S, M, R, C>(
    threads: usize,
    bound: usize,
    make: M,
    run: R,
    check: C,
) -> Explored
where
    S: Sync,
    M: Fn() -> S,
    R: Fn(&S, usize) + Sync,
    C: Fn(&S),
{
    match try_explore(threads, bound, make, run, check) {
        Ok(stats) => stats,
        Err(failure) => panic!("model: {failure}"),
    }
}

/// Reruns exactly one schedule from a replay string produced by a
/// [`Failure`]. Returns `Err` with the failure message if the schedule
/// (still) violates the scenario's invariants, `Ok` if it now passes.
///
/// Replay is exact against the code the counterexample was found in.
/// Against *changed* (e.g. fixed) code the scenario may branch
/// differently; from the first divergent point on, unrunnable forced
/// choices fall back to the first runnable thread.
pub fn replay<S, M, R, C>(
    spec: &str,
    make: M,
    run: R,
    check: C,
) -> Result<(), String>
where
    S: Sync,
    M: Fn() -> S,
    R: Fn(&S, usize) + Sync,
    C: Fn(&S),
{
    let parsed = parse_replay(spec)
        .unwrap_or_else(|e| panic!("model: bad replay string {spec:?}: {e}"));
    let (threads, bound, forced) = parsed;
    install_quiet_hook();
    let (failed, _, _, _) =
        run_once(threads, bound, Vec::new(), Some(forced), &make, &run, &check);
    match failed {
        Some(msg) => Err(msg),
        None => Ok(()),
    }
}

fn parse_replay(spec: &str) -> Result<(usize, usize, Vec<usize>), String> {
    let rest = spec
        .strip_prefix("v1:")
        .ok_or_else(|| "missing v1: prefix".to_string())?;
    let mut parts = rest.splitn(3, ':');
    let threads: usize = parts
        .next()
        .ok_or("missing thread count")?
        .parse()
        .map_err(|e| format!("bad thread count: {e}"))?;
    let bound: usize = parts
        .next()
        .ok_or("missing preemption bound")?
        .parse()
        .map_err(|e| format!("bad preemption bound: {e}"))?;
    let tail = parts.next().ok_or("missing choice list")?;
    let forced = if tail.is_empty() {
        Vec::new()
    } else {
        tail.split('.')
            .map(|s| s.parse().map_err(|e| format!("bad choice {s:?}: {e}")))
            .collect::<Result<Vec<usize>, String>>()?
    };
    if !(1..=8).contains(&threads) {
        return Err("thread count out of range".to_string());
    }
    Ok((threads, bound, forced))
}

/// Model-checked stand-ins for `std::sync::atomic` types. Re-exported
/// as [`crate::sync::atomic`] when `model-check` is enabled; production
/// code should import from there, never from here.
///
/// Every operation runs at `SeqCst` regardless of the ordering argument
/// (the checker explores sequentially consistent interleavings only),
/// `compare_exchange_weak` never fails spuriously, and `fetch_update`
/// is a single atomic RMW. `get_mut`/`into_inner` require exclusive
/// access and are deliberately not scheduling points.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    const SC: Ordering = Ordering::SeqCst;

    macro_rules! model_atomic_int {
        ($name:ident, $std:ident, $int:ty) => {
            /// Shim atomic integer: identical API to the `std` type,
            /// but every operation is a scheduling point under the
            /// model (see module docs for the semantics).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $int) -> Self {
                    Self { inner: std::sync::atomic::$std::new(v) }
                }

                #[inline]
                pub fn load(&self, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.load(SC)
                }

                #[inline]
                pub fn store(&self, val: $int, _order: Ordering) {
                    crate::model::op_point();
                    self.inner.store(val, SC)
                }

                #[inline]
                pub fn swap(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.swap(val, SC)
                }

                #[inline]
                pub fn fetch_add(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_add(val, SC)
                }

                #[inline]
                pub fn fetch_sub(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_sub(val, SC)
                }

                #[inline]
                pub fn fetch_and(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_and(val, SC)
                }

                #[inline]
                pub fn fetch_or(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_or(val, SC)
                }

                #[inline]
                pub fn fetch_xor(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_xor(val, SC)
                }

                #[inline]
                pub fn fetch_max(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_max(val, SC)
                }

                #[inline]
                pub fn fetch_min(&self, val: $int, _order: Ordering) -> $int {
                    crate::model::op_point();
                    self.inner.fetch_min(val, SC)
                }

                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    crate::model::op_point();
                    self.inner.compare_exchange(current, new, SC, SC)
                }

                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    // No spurious failures under the model.
                    self.compare_exchange(current, new, success, failure)
                }

                #[inline]
                pub fn fetch_update<F>(
                    &self,
                    _set_order: Ordering,
                    _fetch_order: Ordering,
                    f: F,
                ) -> Result<$int, $int>
                where
                    F: FnMut($int) -> Option<$int>,
                {
                    crate::model::op_point();
                    self.inner.fetch_update(SC, SC, f)
                }

                #[inline]
                pub fn get_mut(&mut self) -> &mut $int {
                    self.inner.get_mut()
                }

                #[inline]
                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }
            }

            impl From<$int> for $name {
                fn from(v: $int) -> Self {
                    Self::new(v)
                }
            }
        };
    }

    model_atomic_int!(AtomicU32, AtomicU32, u32);
    model_atomic_int!(AtomicU64, AtomicU64, u64);
    model_atomic_int!(AtomicUsize, AtomicUsize, usize);

    /// Shim atomic boolean: identical API to `std::sync::atomic::
    /// AtomicBool`, but every operation is a scheduling point under
    /// the model.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        #[inline]
        pub fn load(&self, _order: Ordering) -> bool {
            crate::model::op_point();
            self.inner.load(SC)
        }

        #[inline]
        pub fn store(&self, val: bool, _order: Ordering) {
            crate::model::op_point();
            self.inner.store(val, SC)
        }

        #[inline]
        pub fn swap(&self, val: bool, _order: Ordering) -> bool {
            crate::model::op_point();
            self.inner.swap(val, SC)
        }

        #[inline]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            crate::model::op_point();
            self.inner.compare_exchange(current, new, SC, SC)
        }

        #[inline]
        pub fn compare_exchange_weak(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(current, new, success, failure)
        }

        #[inline]
        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }

        #[inline]
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl From<bool> for AtomicBool {
        fn from(v: bool) -> Self {
            Self::new(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::Mutex;

    const SC: Ordering = Ordering::SeqCst;

    #[test]
    fn enumerates_exact_interleavings_of_two_by_two() {
        // Two threads, two atomic RMWs each: C(4,2) = 6 interleavings.
        let stats = explore(
            2,
            8,
            || AtomicU64::new(0),
            |a, _tid| {
                a.fetch_add(1, SC);
                a.fetch_add(1, SC);
            },
            |a| assert_eq!(a.load(SC), 4),
        );
        assert_eq!(stats.schedules, 6, "expected all C(4,2) interleavings");
        assert!(stats.points > 0);
    }

    #[test]
    fn preemption_bound_zero_runs_each_thread_to_completion() {
        // Only the free initial pick branches: thread 0 first or 1 first.
        let stats = explore(
            2,
            0,
            || AtomicU64::new(0),
            |a, _tid| {
                a.fetch_add(1, SC);
                a.fetch_add(1, SC);
            },
            |a| assert_eq!(a.load(SC), 4),
        );
        assert_eq!(stats.schedules, 2);
    }

    #[test]
    fn preemption_bound_is_monotone_in_schedules() {
        let count = |bound| {
            explore(
                2,
                bound,
                || AtomicU64::new(0),
                |a, _tid| {
                    a.fetch_add(1, SC);
                    a.fetch_add(1, SC);
                },
                |a| assert_eq!(a.load(SC), 4),
            )
            .schedules
        };
        let (s0, s1, s8) = (count(0), count(1), count(8));
        assert!(s0 <= s1 && s1 <= s8, "{s0} <= {s1} <= {s8} violated");
        assert_eq!(s8, 6);
    }

    #[test]
    fn finds_lost_update_and_replays_it() {
        // Unsynchronized read-modify-write: some schedule loses an
        // increment, and the checker must find it.
        let make = || AtomicU64::new(0);
        let run = |a: &AtomicU64, _tid: usize| {
            let v = a.load(SC);
            a.store(v + 1, SC);
        };
        let check = |a: &AtomicU64| {
            assert_eq!(a.load(SC), 2, "an increment was lost");
        };
        let failure =
            try_explore(2, 8, make, run, check).expect_err("bug must be found");
        assert!(
            failure.message.contains("an increment was lost"),
            "unexpected message: {}",
            failure.message
        );
        assert!(failure.replay.starts_with("v1:2:8:"));
        // The replay string reproduces the same failing schedule...
        let replayed = replay(&failure.replay, make, run, check);
        assert!(replayed.is_err(), "replay must reproduce the failure");
        // ...and the fixed algorithm passes on that very schedule.
        let fixed = replay(
            &failure.replay,
            make,
            |a: &AtomicU64, _tid| {
                a.fetch_add(1, SC);
            },
            check,
        );
        assert!(fixed.is_ok(), "fixed code must pass the pinned schedule");
    }

    #[test]
    fn shim_mutex_is_exclusive_under_all_schedules() {
        let stats = explore(
            2,
            2,
            || Mutex::new(0u64),
            |m, _tid| {
                *m.lock() += 1;
            },
            |m| assert_eq!(*m.lock(), 2),
        );
        assert!(stats.schedules >= 2);
    }

    #[test]
    fn three_threads_explore_more_than_two() {
        let two = explore(
            2,
            2,
            || AtomicU64::new(0),
            |a, _tid| {
                a.fetch_add(1, SC);
            },
            |a| assert_eq!(a.load(SC), 2),
        );
        let three = explore(
            3,
            2,
            || AtomicU64::new(0),
            |a, _tid| {
                a.fetch_add(1, SC);
            },
            |a| assert_eq!(a.load(SC), 3),
        );
        assert!(three.schedules > two.schedules);
    }

    #[test]
    fn logical_time_is_strictly_increasing_inside_a_scenario() {
        explore(
            2,
            1,
            || (),
            |_, _tid| {
                let a = crate::time::raw_ticks();
                let b = crate::time::raw_ticks();
                assert!(b > a, "logical ticks must strictly increase");
            },
            |_| {},
        );
    }

    #[test]
    fn replay_string_roundtrip() {
        assert_eq!(parse_replay("v1:2:3:"), Ok((2, 3, vec![])));
        assert_eq!(parse_replay("v1:3:1:0.2.1"), Ok((3, 1, vec![0, 2, 1])));
        assert!(parse_replay("v0:2:3:").is_err());
        assert!(parse_replay("v1:9:0:").is_err());
        assert!(parse_replay("v1:2:0:x").is_err());
    }
}
