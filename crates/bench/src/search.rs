//! Randomized schedule search: hill-climbing over the space of valid timed
//! schedules to *maximize* an inconsistency objective.
//!
//! The paper leaves tightness open in both directions (open problems 4
//! and 5): is Theorem 5.4's ceiling `(ℓ−2)/(ℓ−1)` reachable, and can any
//! schedule beat Theorem 5.11's wave construction? This module provides the
//! experimental instrument: a genome encodes per-process start offsets,
//! per-token inter-operation gaps, and per-hop wire delays clamped to
//! `[c_min, c_max]` — so every genome decodes to a *valid* schedule with
//! the desired asynchrony ratio by construction — and a mutate-and-keep
//! loop climbs the chosen objective.

use cnet_core::op::Op;
use cnet_sim::engine::run;
use cnet_sim::ids::ProcessId;
use cnet_sim::spec::TimedTokenSpec;
use cnet_topology::Network;
use cnet_util::rng::{Rng, SeedableRng, StdRng};

/// The search space: processes, tokens, and the timing envelope.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchSpace {
    /// Number of processes (round-robin over input wires).
    pub processes: usize,
    /// Tokens per process.
    pub tokens_per_process: usize,
    /// Lower wire-delay bound.
    pub c_min: f64,
    /// Upper wire-delay bound (so the ratio is `c_max/c_min` exactly when
    /// some delay hits each bound; always `≤ c_max/c_min`).
    pub c_max: f64,
    /// Maximum inter-operation gap and start offset the genome may use.
    pub max_gap: f64,
}

/// A genome: raw timing knobs that always decode to a valid schedule.
#[derive(Clone, Debug)]
struct Genome {
    /// Process id of each genome row.
    process_ids: Vec<usize>,
    /// Per (row, token): the input wire.
    inputs: Vec<Vec<usize>>,
    /// Start offset per row.
    offsets: Vec<f64>,
    /// Per (row, token): gap after the previous token's exit.
    gaps: Vec<Vec<f64>>,
    /// Per (row, token): the per-hop wire delays.
    delays: Vec<Vec<Vec<f64>>>,
}

impl Genome {
    /// Encodes an existing schedule as a genome (tokens grouped by process,
    /// in entry order), so searches can start from analytic constructions.
    fn from_specs(specs: &[TimedTokenSpec]) -> Genome {
        // Rows ordered by each process's first appearance in the original
        // slice: the engine breaks time ties by position, so preserving the
        // order keeps the decoded schedule's semantics identical to the
        // original (important when refining from wave constructions whose
        // waves enter simultaneously).
        let mut row_order: Vec<usize> = Vec::new();
        let mut by_process: std::collections::BTreeMap<usize, Vec<&TimedTokenSpec>> =
            std::collections::BTreeMap::new();
        for s in specs {
            let pid = s.process.index();
            if !by_process.contains_key(&pid) {
                row_order.push(pid);
            }
            by_process.entry(pid).or_default().push(s);
        }
        let mut process_ids = Vec::new();
        let mut inputs = Vec::new();
        let mut offsets = Vec::new();
        let mut gaps = Vec::new();
        let mut delays = Vec::new();
        for pid in row_order {
            let mut tokens = by_process.remove(&pid).expect("row order lists seen processes");
            tokens.sort_by(|a, b| a.enter_time().total_cmp(&b.enter_time()));
            process_ids.push(pid);
            inputs.push(tokens.iter().map(|t| t.input).collect());
            offsets.push(tokens[0].enter_time());
            let mut g = vec![0.0];
            for pair in tokens.windows(2) {
                g.push((pair[1].enter_time() - pair[0].exit_time()).max(0.0));
            }
            gaps.push(g);
            delays.push(
                tokens
                    .iter()
                    .map(|t| t.step_times.windows(2).map(|w| w[1] - w[0]).collect())
                    .collect(),
            );
        }
        Genome { process_ids, inputs, offsets, gaps, delays }
    }

    fn random(space: &SearchSpace, net: &Network, rng: &mut StdRng) -> Genome {
        let depth = net.depth();
        let sample = |rng: &mut StdRng, lo: f64, hi: f64| {
            if hi > lo {
                rng.random_range(lo..hi)
            } else {
                lo
            }
        };
        Genome {
            process_ids: (0..space.processes).collect(),
            inputs: (0..space.processes)
                .map(|p| vec![p % net.fan_in(); space.tokens_per_process])
                .collect(),
            offsets: (0..space.processes).map(|_| sample(rng, 0.0, space.max_gap)).collect(),
            gaps: (0..space.processes)
                .map(|_| {
                    (0..space.tokens_per_process)
                        .map(|_| sample(rng, 0.0, space.max_gap))
                        .collect()
                })
                .collect(),
            delays: (0..space.processes)
                .map(|_| {
                    (0..space.tokens_per_process)
                        .map(|_| {
                            (0..depth).map(|_| sample(rng, space.c_min, space.c_max)).collect()
                        })
                        .collect()
                })
                .collect(),
        }
    }

    fn decode(&self) -> Vec<TimedTokenSpec> {
        let mut specs = Vec::new();
        for (row, &pid) in self.process_ids.iter().enumerate() {
            let mut t = self.offsets[row];
            for k in 0..self.gaps[row].len() {
                if k > 0 {
                    t += self.gaps[row][k];
                }
                let spec = TimedTokenSpec::with_delays(
                    ProcessId(pid),
                    self.inputs[row][k],
                    t,
                    &self.delays[row][k],
                );
                t = spec.exit_time();
                specs.push(spec);
            }
        }
        specs
    }

    /// Mutates one random knob in place.
    fn mutate(&mut self, space: &SearchSpace, rng: &mut StdRng) {
        let p = rng.random_range(0..self.offsets.len());
        match rng.random_range(0..3u8) {
            0 => {
                self.offsets[p] = rng.random_range(0.0..space.max_gap.max(f64::MIN_POSITIVE));
            }
            1 => {
                let k = rng.random_range(0..self.gaps[p].len());
                self.gaps[p][k] = rng.random_range(0.0..space.max_gap.max(f64::MIN_POSITIVE));
            }
            _ => {
                let k = rng.random_range(0..self.delays[p].len());
                let d = &mut self.delays[p][k];
                if d.is_empty() {
                    return;
                }
                let h = rng.random_range(0..d.len());
                d[h] = if space.c_max > space.c_min {
                    // Bias toward the extremes: adversarial schedules live
                    // at the envelope's edges.
                    match rng.random_range(0..4u8) {
                        0 => space.c_min,
                        1 => space.c_max,
                        _ => rng.random_range(space.c_min..space.c_max),
                    }
                } else {
                    space.c_min
                };
            }
        }
    }
}

/// Result of a search run.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best objective value found.
    pub best_score: f64,
    /// The schedule achieving it.
    pub best_specs: Vec<TimedTokenSpec>,
    /// Total schedule evaluations spent.
    pub evaluations: usize,
}

/// Hill-climbs `objective` over the schedule space with random restarts.
///
/// The objective receives the decoded execution's operations; return e.g.
/// the non-SC fraction to search for Theorem 5.4's worst case.
///
/// # Panics
///
/// Panics if the space is degenerate (`processes` or `tokens_per_process`
/// is zero, or `c_min > c_max` / negative bounds).
pub fn maximize<F>(
    net: &Network,
    space: &SearchSpace,
    seed: u64,
    restarts: usize,
    steps_per_restart: usize,
    mut objective: F,
) -> SearchOutcome
where
    F: FnMut(&[Op]) -> f64,
{
    assert!(space.processes > 0 && space.tokens_per_process > 0, "empty search space");
    let mut rng = StdRng::seed_from_u64(seed);
    let starts: Vec<Genome> =
        (0..restarts).map(|_| Genome::random(space, net, &mut rng)).collect();
    climb(net, space, starts, &mut rng, steps_per_restart, &mut objective)
}

/// Hill-climbs starting from an *existing* schedule (e.g. a wave
/// construction), mutating within the space's envelope. The initial
/// schedule's delays should already respect the envelope.
///
/// # Panics
///
/// Panics on a degenerate envelope or an empty initial schedule.
pub fn refine<F>(
    net: &Network,
    space: &SearchSpace,
    initial: &[TimedTokenSpec],
    seed: u64,
    steps: usize,
    mut objective: F,
) -> SearchOutcome
where
    F: FnMut(&[Op]) -> f64,
{
    assert!(!initial.is_empty(), "refine needs a non-empty initial schedule");
    let mut rng = StdRng::seed_from_u64(seed);
    let starts = vec![Genome::from_specs(initial)];
    climb(net, space, starts, &mut rng, steps, &mut objective)
}

fn climb<F>(
    net: &Network,
    space: &SearchSpace,
    starts: Vec<Genome>,
    rng: &mut StdRng,
    steps_per_start: usize,
    objective: &mut F,
) -> SearchOutcome
where
    F: FnMut(&[Op]) -> f64,
{
    assert!(
        space.c_min > 0.0 && space.c_max >= space.c_min && space.max_gap >= 0.0,
        "invalid envelope"
    );
    let mut best_score = f64::NEG_INFINITY;
    let mut best_specs = Vec::new();
    let mut evaluations = 0usize;

    let mut evaluate = |genome: &Genome, evaluations: &mut usize| -> f64 {
        *evaluations += 1;
        let specs = genome.decode();
        let exec = run(net, &specs).expect("genomes decode to valid schedules");
        objective(&Op::from_execution(&exec))
    };

    for mut genome in starts {
        let mut score = evaluate(&genome, &mut evaluations);
        for _ in 0..steps_per_start {
            let mut candidate = genome.clone();
            candidate.mutate(space, rng);
            let cand_score = evaluate(&candidate, &mut evaluations);
            if cand_score >= score {
                genome = candidate;
                score = cand_score;
            }
        }
        if score > best_score {
            best_score = score;
            best_specs = genome.decode();
        }
    }
    SearchOutcome { best_score, best_specs, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_core::fractions::non_sequential_consistency_fraction;
    use cnet_core::theory;
    use cnet_sim::timing::TimingParams;
    use cnet_topology::construct::bitonic;

    #[test]
    fn search_respects_the_envelope() {
        let net = bitonic(4).unwrap();
        let space = SearchSpace {
            processes: 4,
            tokens_per_process: 3,
            c_min: 1.0,
            c_max: 2.5,
            max_gap: 3.0,
        };
        let outcome = maximize(&net, &space, 7, 2, 30, |ops| {
            non_sequential_consistency_fraction(ops)
        });
        assert!(outcome.evaluations > 0);
        let exec = run(&net, &outcome.best_specs).unwrap();
        let params = TimingParams::measure(&exec);
        assert!(params.c_min.unwrap() >= 1.0 - 1e-12);
        assert!(params.c_max.unwrap() <= 2.5 + 1e-12);
    }

    #[test]
    fn search_finds_violations_when_the_envelope_allows_them() {
        // Under a generous ratio the search should discover SOME non-SC
        // schedule on a small network (the holding race exists at ratio
        // d+1, so the space contains positive-score points).
        let net = bitonic(2).unwrap();
        let space = SearchSpace {
            processes: 3,
            tokens_per_process: 2,
            c_min: 1.0,
            c_max: 20.0,
            max_gap: 4.0,
        };
        let outcome = maximize(&net, &space, 11, 6, 200, |ops| {
            non_sequential_consistency_fraction(ops)
        });
        assert!(
            outcome.best_score > 0.0,
            "ratio 20 on B(2) admits non-SC schedules; search found none"
        );
    }

    #[test]
    fn search_never_beats_theorem_5_4() {
        // Under ratio < 3 the ceiling is 1/2; whatever the search finds must
        // respect it (a counterexample here would be a *result*).
        let net = bitonic(4).unwrap();
        let space = SearchSpace {
            processes: 4,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max: 2.99,
            max_gap: 2.0,
        };
        let outcome = maximize(&net, &space, 3, 4, 150, |ops| {
            non_sequential_consistency_fraction(ops)
        });
        assert!(outcome.best_score <= theory::thm_5_4_nsc_upper(3) + 1e-9);
    }
}
