//! Networked throughput: the `cnet-net` loopback service measured with
//! the same [`Measurement`] schema as the in-process sweep.
//!
//! For each thread count, a [`CounterServer`] is started on an ephemeral
//! loopback port and hammered by [`run_loadgen`] workers over
//! [`NetThroughputConfig::connections`] pooled connections (default: one
//! per worker). Two backends bracket the space: the `fetch_add` baseline
//! isolates pure transport cost, and the compiled bitonic network shows
//! what a real counting network delivers across a socket. Rows land in
//! `BENCH_throughput.json` with `"transport": "tcp"`, their connection
//! count, and end-to-end burst latency percentiles (`p50_ns` / `p99_ns` /
//! `p999_ns`, schema v4), next to their shared-memory counterparts, so
//! both the socket tax and the reactor's connection-scaling behaviour are
//! ratios you can read off one artifact.

use crate::throughput::Measurement;
use cnet_net::loadgen::{run_loadgen, LoadGenConfig, LoadGenMode};
use cnet_net::router::ClusterNode;
use cnet_net::server::{CounterServer, ServerConfig};
use cnet_runtime::{FetchAddCounter, ProcessCounter, SharedNetworkCounter};
use cnet_topology::construct::bitonic;
use std::sync::Arc;

/// Configuration of one networked sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetThroughputConfig {
    /// Network fan `w` for the counting-network backend.
    pub fan: usize,
    /// Client thread counts to sweep.
    pub threads: Vec<usize>,
    /// Pooled client connections shared out across the worker threads
    /// (`0` = one per worker). Counts above the thread count measure the
    /// reactor's many-mostly-idle-connections regime.
    pub connections: usize,
    /// Operations each client thread pushes per timed run.
    pub ops_per_thread: usize,
    /// Burst size per connection (see `mode`).
    pub batch: usize,
    /// What a burst is on the wire: `Batch` sends one `NextBatch` frame
    /// per burst (the server's batched-traversal fast path, rows carry
    /// `"batch": batch`), `Pipeline` sends single `Next` frames
    /// back-to-back (the per-token path, rows carry `"batch": 1`).
    pub mode: LoadGenMode,
    /// Timed repetitions per cell; the best run is kept (matching the
    /// in-process sweep's noise filter).
    pub repeats: usize,
}

impl Default for NetThroughputConfig {
    fn default() -> Self {
        NetThroughputConfig {
            fan: 8,
            threads: vec![1, 2, 4],
            connections: 0,
            ops_per_thread: 5_000,
            batch: 64,
            mode: LoadGenMode::Pipeline,
            repeats: 3,
        }
    }
}

/// Times one (backend, threads) cell: fresh server + fresh load per
/// repetition, best run kept.
fn measure_net(
    label: (&str, &str),
    build: &dyn Fn() -> Arc<dyn ProcessCounter + Send + Sync>,
    threads: usize,
    cfg: &NetThroughputConfig,
) -> std::io::Result<Measurement> {
    let total_ops = threads * cfg.ops_per_thread;
    let connections = if cfg.connections == 0 { threads.max(1) } else { cfg.connections };
    let mut best = f64::INFINITY;
    let mut percentiles = (0, 0, 0);
    for _ in 0..cfg.repeats.max(1) {
        let mut server = CounterServer::start(
            "127.0.0.1:0",
            build(),
            ServerConfig {
                max_connections: connections,
                processes: cfg.fan,
                ..ServerConfig::default()
            },
        )?;
        let report = run_loadgen(
            server.local_addr(),
            &LoadGenConfig {
                threads,
                connections,
                ops_per_thread: cfg.ops_per_thread,
                batch: cfg.batch,
                mode: cfg.mode,
                collect_values: false,
                route: false,
            },
        )?;
        server.shutdown();
        // Keep the latency distribution of the best (kept) run, so the
        // percentile columns describe the same run as the throughput.
        if report.seconds < best {
            best = report.seconds;
            percentiles = report.latency.percentiles();
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut m = Measurement::timed(label.0, label.1, threads, total_ops, best);
    m.transport = Measurement::TRANSPORT_TCP.to_string();
    m.batch = match cfg.mode {
        LoadGenMode::Batch => cfg.batch,
        LoadGenMode::Pipeline => 1,
    };
    m.oversubscribed = threads > cores;
    m.connections = connections;
    m.p50_ns = Some(percentiles.0);
    m.p99_ns = Some(percentiles.1);
    m.p999_ns = Some(percentiles.2);
    Ok(m)
}

/// Times one (threads, nodes) cell of the partitioned fabric: the bitonic
/// network split into `nodes` chained [`ClusterNode`] servers over
/// loopback TCP, the load driven into the head. Fresh chain per
/// repetition, best run kept. Rows carry `"nodes": N` (schema v5).
///
/// The load always uses the batched wire mode regardless of
/// [`NetThroughputConfig::mode`]: one `NextBatch` per burst becomes one
/// pipelined `ForwardBatch` burst per occupied cut position, which is
/// the fabric's designed fast path. The per-token `Forward` path pays a
/// full peer round trip per increment — that measures the hop latency,
/// not what the fabric can move.
fn measure_cluster(
    threads: usize,
    nodes: usize,
    cfg: &NetThroughputConfig,
) -> std::io::Result<Measurement> {
    let net = bitonic(cfg.fan).expect("power-of-two fan");
    let total_ops = threads * cfg.ops_per_thread;
    let connections = if cfg.connections == 0 { threads.max(1) } else { cfg.connections };
    let mut best = f64::INFINITY;
    let mut percentiles = (0, 0, 0);
    for _ in 0..cfg.repeats.max(1) {
        let server_cfg = ServerConfig {
            max_connections: connections,
            processes: cfg.fan,
            ..ServerConfig::default()
        };
        // Build the chain tail-first so every relay's downstream peer is
        // already listening when the relay dials it.
        let mut servers: Vec<CounterServer> = Vec::new();
        let mut downstream: Option<String> = None;
        for node in (0..nodes).rev() {
            let peers: Vec<String> = downstream.iter().cloned().collect();
            let cluster = ClusterNode::new(&net, node, nodes, &peers, connections)
                .map_err(std::io::Error::other)?;
            let server =
                CounterServer::start_cluster("127.0.0.1:0", Arc::new(cluster), None, server_cfg)?;
            downstream = Some(server.local_addr().to_string());
            servers.push(server);
        }
        let head_addr = downstream.expect("at least one node");
        let report = run_loadgen(
            &head_addr[..],
            &LoadGenConfig {
                threads,
                connections,
                ops_per_thread: cfg.ops_per_thread,
                batch: cfg.batch,
                mode: LoadGenMode::Batch,
                collect_values: false,
                route: false,
            },
        )?;
        // Head first (it stops forwarding), then down the chain.
        for server in servers.iter_mut().rev() {
            server.shutdown();
        }
        if report.seconds < best {
            best = report.seconds;
            percentiles = report.latency.percentiles();
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut m = Measurement::timed("compiled", "bitonic", threads, total_ops, best);
    m.transport = Measurement::TRANSPORT_TCP.to_string();
    m.batch = cfg.batch;
    m.oversubscribed = threads > cores;
    m.connections = connections;
    m.p50_ns = Some(percentiles.0);
    m.p99_ns = Some(percentiles.1);
    m.p999_ns = Some(percentiles.2);
    m.nodes = nodes;
    Ok(m)
}

/// Runs the partitioned-fabric sweep: for each thread count, the compiled
/// bitonic network split across `nodes` chained servers on loopback TCP.
/// Rows are distinguished from the single-server tcp cells by their
/// `"nodes"` column.
///
/// # Errors
///
/// Surfaces server-bind, peer-dial, and client I/O failures, plus invalid
/// partitions (more nodes than the network has layers).
///
/// # Panics
///
/// Panics if `cfg.fan` is not a supported power of two.
pub fn run_cluster_net_throughput(
    cfg: &NetThroughputConfig,
    nodes: usize,
) -> std::io::Result<Vec<Measurement>> {
    let mut rows = Vec::new();
    for &threads in &cfg.threads {
        rows.push(measure_cluster(threads, nodes.max(1), cfg)?);
    }
    Ok(rows)
}

/// Runs the networked sweep and returns rows ready to append to a
/// [`ThroughputReport`](crate::ThroughputReport)'s measurements.
///
/// # Errors
///
/// Surfaces server-bind or client I/O failures.
///
/// # Panics
///
/// Panics if `cfg.fan` is not a supported power of two.
pub fn run_net_throughput(cfg: &NetThroughputConfig) -> std::io::Result<Vec<Measurement>> {
    let fan = cfg.fan;
    let backends: [(&str, &str, Box<dyn Fn() -> Arc<dyn ProcessCounter + Send + Sync>>); 2] = [
        ("fetch_add", "-", Box::new(|| Arc::new(FetchAddCounter::new()))),
        (
            "compiled",
            "bitonic",
            Box::new(move || {
                Arc::new(SharedNetworkCounter::new(
                    &bitonic(fan).expect("power-of-two fan"),
                ))
            }),
        ),
    ];
    let mut rows = Vec::new();
    for &threads in &cfg.threads {
        for (counter, network, build) in &backends {
            rows.push(measure_net((counter, network), build, threads, cfg)?);
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_sweep_produces_tcp_rows() {
        let rows = run_net_throughput(&NetThroughputConfig {
            fan: 4,
            threads: vec![1, 2],
            connections: 0,
            ops_per_thread: 200,
            batch: 16,
            mode: LoadGenMode::Pipeline,
            repeats: 1,
        })
        .expect("loopback sweep runs");
        assert_eq!(rows.len(), 4); // 2 thread counts x 2 backends
        for row in &rows {
            assert_eq!(row.transport, Measurement::TRANSPORT_TCP);
            assert!(!row.audited);
            assert_eq!(row.total_ops, row.threads * 200);
            assert!(row.mops > 0.0, "{row:?}");
            assert_eq!(row.batch, 1, "pipeline mode rows are per-token");
            assert_eq!(row.connections, row.threads, "default pools one per worker");
            let (p50, p99, p999) = (row.p50_ns.unwrap(), row.p99_ns.unwrap(), row.p999_ns.unwrap());
            assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{row:?}");
        }
        assert!(rows.iter().any(|r| r.counter == "fetch_add"));
        assert!(rows.iter().any(|r| r.counter == "compiled" && r.network == "bitonic"));
    }

    #[test]
    fn batch_mode_rows_carry_the_batch_size() {
        let rows = run_net_throughput(&NetThroughputConfig {
            fan: 4,
            threads: vec![1],
            connections: 0,
            ops_per_thread: 200,
            batch: 32,
            mode: LoadGenMode::Batch,
            repeats: 1,
        })
        .expect("loopback sweep runs");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.batch, 32, "{row:?}");
        }
    }

    #[test]
    fn cluster_sweep_rows_carry_the_node_count() {
        let rows = run_cluster_net_throughput(
            &NetThroughputConfig {
                fan: 8,
                threads: vec![1, 2],
                connections: 0,
                ops_per_thread: 200,
                batch: 16,
                mode: LoadGenMode::Batch,
                repeats: 1,
            },
            2,
        )
        .expect("two-node loopback chain runs");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.nodes, 2, "{row:?}");
            assert_eq!(row.transport, Measurement::TRANSPORT_TCP);
            assert_eq!((row.counter.as_str(), row.network.as_str()), ("compiled", "bitonic"));
            assert!(row.mops > 0.0, "{row:?}");
            assert!(row.p99_ns.unwrap() > 0, "{row:?}");
        }
    }

    #[test]
    fn connection_scaling_rows_record_the_pool_size() {
        let rows = run_net_throughput(&NetThroughputConfig {
            fan: 4,
            threads: vec![2],
            connections: 16,
            ops_per_thread: 200,
            batch: 16,
            mode: LoadGenMode::Batch,
            repeats: 1,
        })
        .expect("loopback sweep runs");
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.connections, 16, "{row:?}");
            assert_eq!(row.threads, 2, "{row:?}");
            assert!(row.p99_ns.unwrap() > 0, "{row:?}");
        }
    }
}
