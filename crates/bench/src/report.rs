//! Plain-text table rendering and JSON artifact output for experiments.

use cnet_util::json::{self, ToJson};
use std::fmt;
use std::io::Write;
use std::path::Path;

/// A simple aligned text table, printed by every experiment binary.
///
/// # Example
///
/// ```
/// use cnet_bench::Table;
///
/// let mut t = Table::new(vec!["w", "measured", "paper"]);
/// t.row(vec!["8".into(), "0.333".into(), ">= 1/3".into()]);
/// let s = t.to_string();
/// assert!(s.contains("measured"));
/// assert!(s.contains("0.333"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it must have as many cells as there are headers.
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Serializes `value` with `cnet-util`'s JSON encoder and writes it to
/// `path`, trailing newline included. All machine-readable benchmark
/// artifacts (e.g. `BENCH_throughput.json`) go through this single exit
/// point, so their formatting is uniform and round-trips via
/// [`cnet_util::json::from_str`].
pub fn write_json<T: ToJson>(path: &Path, value: &T) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", json::to_string_pretty(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "longheader"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines have equal width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.0 / 3.0), "0.333");
        assert_eq!(f3(0.5), "0.500");
    }

    #[test]
    fn write_json_round_trips_through_cnet_util() {
        let values: Vec<u64> = vec![3, 1, 4, 1, 5];
        let path = std::env::temp_dir().join("cnet_bench_write_json_test.json");
        write_json(&path, &values).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back: Vec<u64> = cnet_util::json::from_str(&text).unwrap();
        assert_eq!(back, values);
        std::fs::remove_file(&path).ok();
    }
}
