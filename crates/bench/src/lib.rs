//! Experiment harness for the counting-networks reproduction.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the pieces they
//! share — plain-text table rendering and the reusable experiment drivers —
//! so the integration tests can assert the same results the binaries print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod report;
pub mod search;
pub mod sweeps;
pub mod throughput;

pub use net::{run_cluster_net_throughput, run_net_throughput, NetThroughputConfig};
pub use report::{write_json, Table};
pub use throughput::{
    run_audit_sweep, run_consistency_sweep, run_throughput_sweep, Measurement, ThroughputConfig,
    ThroughputReport, AUDIT_SWEEP_POINTS,
};
pub use search::{maximize, SearchOutcome, SearchSpace};
pub use sweeps::{
    adversarial_fractions, local_delay_sufficiency, sufficiency_scan, FractionPoint,
    SufficiencyReport,
};
