//! Reusable experiment drivers.

use cnet_core::conditions::TimingCondition;
use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_core::op::Op;
use cnet_sim::adversary::three_wave;
use cnet_sim::engine::run;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_sim::TimingParams;
use cnet_topology::Network;

/// Outcome of a randomized sufficiency scan: over `schedules_checked`
/// executions that satisfied the condition, how many violated the
/// consistency property (a correct sufficiency theorem yields zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SufficiencyReport {
    /// Executions whose measured parameters satisfied the condition.
    pub schedules_checked: usize,
    /// Executions generated that did *not* satisfy the condition (skipped).
    pub schedules_skipped: usize,
    /// Satisfying executions that violated linearizability.
    pub linearizability_violations: usize,
    /// Satisfying executions that violated sequential consistency.
    pub sequential_consistency_violations: usize,
}

/// Generates `seeds` random executions under the workload envelope, keeps
/// those whose *measured* parameters satisfy `condition`, and counts
/// consistency violations among them.
pub fn sufficiency_scan(
    net: &Network,
    cfg: &WorkloadConfig,
    condition: TimingCondition,
    seeds: u64,
) -> SufficiencyReport {
    let mut report = SufficiencyReport {
        schedules_checked: 0,
        schedules_skipped: 0,
        linearizability_violations: 0,
        sequential_consistency_violations: 0,
    };
    for seed in 0..seeds {
        let specs = generate(net, cfg, seed);
        let exec = run(net, &specs).expect("generated schedules are valid");
        let params = TimingParams::measure(&exec);
        if !condition.holds(&params) {
            report.schedules_skipped += 1;
            continue;
        }
        report.schedules_checked += 1;
        let ops = Op::from_execution(&exec);
        if !is_linearizable(&ops) {
            report.linearizability_violations += 1;
        }
        if !is_sequentially_consistent(&ops) {
            report.sequential_consistency_violations += 1;
        }
    }
    report
}

/// One measured point of an adversarial fraction experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FractionPoint {
    /// Fan of the network.
    pub w: usize,
    /// Level `ℓ` of the construction.
    pub ell: usize,
    /// The asynchrony threshold `1 + d/d(S⁽ℓ⁾)` the schedule exceeded.
    pub threshold: f64,
    /// Measured non-linearizability fraction.
    pub f_nl: f64,
    /// Measured non-sequential-consistency fraction.
    pub f_nsc: f64,
}

/// Runs the Theorem 5.11 three-wave construction at level `ell` with an
/// asynchrony ratio just above its threshold and measures both fractions.
///
/// # Panics
///
/// Panics if the construction is inapplicable (callers pass bitonic or
/// periodic networks with `1 <= ell <= lg w`).
pub fn adversarial_fractions(net: &Network, ell: usize) -> FractionPoint {
    let w = net.fan().expect("counting networks used here have equal fans");
    // Probe the construction's threshold with a generous first build.
    let probe = three_wave(net, ell, 1.0, 1000.0).expect("three-wave construction applies");
    let threshold = probe.required_ratio;
    let sched =
        three_wave(net, ell, 1.0, threshold + 0.01).expect("three-wave construction applies");
    let exec = run(net, &sched.specs).expect("wave schedules are valid");
    let ops = Op::from_execution(&exec);
    FractionPoint {
        w,
        ell,
        threshold,
        f_nl: non_linearizability_fraction(&ops),
        f_nsc: non_sequential_consistency_fraction(&ops),
    }
}

/// Theorem 4.1 evidence: random schedules whose measured local delay
/// satisfies `d·(c_max − 2·c_min) < C_L` must all be sequentially
/// consistent. Returns the scan report.
pub fn local_delay_sufficiency(net: &Network, ratio: f64, seeds: u64) -> SufficiencyReport {
    let c_min = 1.0;
    let c_max = ratio;
    // Enforce the local delay by construction: the generator waits at least
    // d·(c_max − 2·c_min) (plus a hair) between a process's operations.
    let needed = net.depth() as f64 * (c_max - 2.0 * c_min);
    let cfg = WorkloadConfig {
        processes: net.fan_in().min(8),
        tokens_per_process: 4,
        c_min,
        c_max,
        local_delay: needed.max(0.0) + 0.001,
        start_spread: c_max * net.depth() as f64,
    };
    let condition = TimingCondition::local_delay(net);
    sufficiency_scan(net, &cfg, condition, seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_core::theory;
    use cnet_topology::construct::bitonic;

    #[test]
    fn ratio_two_scan_finds_no_violations() {
        let net = bitonic(8).unwrap();
        let cfg = WorkloadConfig {
            processes: 8,
            tokens_per_process: 3,
            c_min: 1.0,
            c_max: 2.0,
            local_delay: 0.0,
            start_spread: 5.0,
        };
        let report = sufficiency_scan(&net, &cfg, TimingCondition::RatioAtMostTwo, 50);
        assert_eq!(report.schedules_skipped, 0);
        assert_eq!(report.linearizability_violations, 0);
        assert_eq!(report.sequential_consistency_violations, 0);
        assert_eq!(report.schedules_checked, 50);
    }

    #[test]
    fn adversarial_point_matches_theory() {
        let net = bitonic(16).unwrap();
        for ell in 1..=4 {
            let p = adversarial_fractions(&net, ell);
            assert!(
                p.f_nl >= theory::thm_5_11_nl_lower(ell) - 1e-9,
                "ell={ell}: {p:?}"
            );
            assert!(
                p.f_nsc >= theory::thm_5_11_nsc_lower(ell) - 1e-9,
                "ell={ell}: {p:?}"
            );
        }
    }

    #[test]
    fn local_delay_scan_is_clean() {
        let net = bitonic(8).unwrap();
        let report = local_delay_sufficiency(&net, 5.0, 30);
        assert_eq!(report.sequential_consistency_violations, 0);
        assert!(report.schedules_checked > 0);
    }
}
