//! The reproducible throughput sweep behind `BENCH_throughput.json`.
//!
//! Races every shared-memory counter — the centralized baselines, the
//! compiled-traversal [`SharedNetworkCounter`], the retained pre-change
//! [`GraphWalkCounter`], and the [`DiffractingTree`] — across thread
//! counts and network families (`B(w)`, `P(w)`, the counting tree), and
//! reports machine-readable measurements so every PR has a performance
//! trajectory to defend.
//!
//! One run produces both engines' numbers: the graph-walk rows *are* the
//! pre-compilation baseline, captured on the same machine in the same
//! process, so [`ThroughputReport::speedup`] compares like with like.
//! Invoke via `cnet bench <w> --out BENCH_throughput.json` (see
//! `crates/cli`) or programmatically through [`run_throughput_sweep`].

use crate::report::Table;
use cnet_core::trace::{OpEvent, OpSink, StreamingAuditor};
use cnet_runtime::recorder::{drain_remaining, drive_audited_parallel, Traced};
use cnet_runtime::{
    CombiningFunnel, DiffractingTree, EliminationCounter, FetchAddCounter, GraphWalkCounter,
    LockCounter, ProcessCounter, RelaxedCounter, SharedNetworkCounter, TraceRecorder, Workload,
};
use cnet_topology::construct::{bitonic, counting_tree, periodic};
use cnet_util::json::{FromJson, JsonError, ToJson, Value};
use cnet_util::json_struct;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Prism width used for the diffracting-tree rows.
const PRISM_WIDTH: usize = 4;

/// Configuration of one sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThroughputConfig {
    /// Network fan `w` (power of two; the tree is built at the same width).
    pub fan: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Increments each thread performs per timed run.
    pub ops_per_thread: usize,
    /// Timed repetitions per cell; the best (shortest) run is kept, which
    /// filters scheduler noise deterministically.
    pub repeats: usize,
    /// Batch sizes to sweep through `next_batch_for` (schema v3). A `1`
    /// in the list maps to the plain per-token rows already swept, so
    /// only sizes above one produce extra rows (`"batch": k`).
    pub batches: Vec<usize>,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            fan: 8,
            threads: vec![1, 2, 4, 8],
            ops_per_thread: 20_000,
            repeats: 3,
            batches: Vec::new(),
        }
    }
}

/// One timed cell of the sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct Measurement {
    /// Counter implementation: `fetch_add`, `lock`, `compiled`,
    /// `graph_walk`, or `diffracting`.
    pub counter: String,
    /// Network family the counter ran over (`-` for centralized counters,
    /// else `bitonic`, `periodic`, or `tree`).
    pub network: String,
    /// Number of concurrent threads.
    pub threads: usize,
    /// Total increments performed in the timed run.
    pub total_ops: usize,
    /// Wall-clock seconds of the best run.
    pub seconds: f64,
    /// Throughput of the best run, in million increments per second.
    pub mops: f64,
    /// Whether the run recorded every increment into the always-on trace
    /// recorder (the audited-throughput mode); `false` rows are the
    /// un-instrumented baseline.
    pub audited: bool,
    /// How the increments reached the counter: `memory` for in-process
    /// shared-memory rows, `tcp` for rows measured through `cnet-net`'s
    /// loopback service.
    pub transport: String,
    /// Increments claimed per counter call (schema v3): `1` is the
    /// per-token path, `k > 1` rows went through `next_batch_for` — one
    /// atomic per balancer per batch. Absent in older artifacts means `1`.
    pub batch: usize,
    /// Whether the row ran more threads than the measuring host has cores
    /// (schema v3): oversubscribed rows measure time-slicing, not
    /// parallel scaling, and must not be read as scaling results. Absent
    /// in older artifacts means `false`.
    pub oversubscribed: bool,
    /// Pooled client connections the row was driven through (schema v4):
    /// `0` for in-process rows and for pre-v4 tcp rows, where the
    /// connection count equalled `threads`. Distinct connection counts
    /// are distinct cells — the reactor's connection-scaling sweep keeps
    /// one row per count.
    pub connections: usize,
    /// Median end-to-end burst round-trip time in nanoseconds (schema
    /// v4); `None` (JSON `null` / absent) for rows measured without the
    /// latency histogram — all in-process rows and pre-v4 tcp rows.
    pub p50_ns: Option<u64>,
    /// 99th-percentile burst round-trip time in nanoseconds (schema v4).
    pub p99_ns: Option<u64>,
    /// 99.9th-percentile burst round-trip time in nanoseconds (schema v4).
    pub p999_ns: Option<u64>,
    /// How many cluster nodes served the row (schema v5): `1` for every
    /// in-process row and single-server tcp row; `N > 1` for rows driven
    /// through an N-node partitioned counting fabric. Absent in older
    /// artifacts means `1`.
    pub nodes: usize,
    /// Maximum QQC lateness measured while the row ran (schema v6): the
    /// worst per-op rank displacement against the quiescent order, from
    /// the consistency sweep's audited drain. `None` (JSON `null` /
    /// absent) for rows measured without the QQC meter — every plain
    /// throughput row.
    pub qqc_max: Option<u64>,
    /// Mean QQC lateness over the row's operations (schema v6); `None`
    /// for rows measured without the QQC meter.
    pub qqc_mean: Option<f64>,
    /// Measured non-linearizability fraction of the row's trace (schema
    /// v6, the Section 5.1 F_nl); `None` for rows measured without the
    /// audited drain.
    pub f_nl: Option<f64>,
    /// Fraction of the paired un-audited throughput this row retained
    /// (schema v7): audited rows measure their plain twin *interleaved in
    /// the same repetition loop*, so scheduler and steal-time drift hits
    /// both sides equally. `None` for rows measured without a paired
    /// baseline (every plain row, and pre-v7 audited rows, whose
    /// retention is reconstructed from separately timed cells by
    /// [`ThroughputReport::retention`]).
    pub retention: Option<f64>,
    /// Audit worker threads stealing ring shards *while the row ran*
    /// (schema v7): `0` means recording was on but monitors drained off
    /// the timed path (the pre-v7 audited mode); `k ≥ 1` rows timed the
    /// full live pipeline — workers plus `k` shard-stealing monitors
    /// through the merge auditor — to a ready verdict. Absent in older
    /// artifacts means `0`.
    pub audit_threads: usize,
    /// Sampling stride of the recorder (schema v7): `1` records every
    /// increment, `k > 1` records one in `k` and counts the rest (sound:
    /// widened intervals only under-report violations). Absent in older
    /// artifacts means `1`.
    pub sample_k: usize,
}

impl Measurement {
    /// The transport label of in-process rows (the schema-v2 default).
    pub const TRANSPORT_MEMORY: &'static str = "memory";
    /// The transport label of `cnet-net` loopback-service rows.
    pub const TRANSPORT_TCP: &'static str = "tcp";

    /// A fresh in-process per-token row with every schema-versioned field
    /// at its default; callers set the fields that distinguish their cell.
    /// Centralizing the defaults here means a future schema column is one
    /// edit, not one per construction site.
    pub fn timed(
        counter: &str,
        network: &str,
        threads: usize,
        total_ops: usize,
        seconds: f64,
    ) -> Measurement {
        Measurement {
            counter: counter.to_string(),
            network: network.to_string(),
            threads,
            total_ops,
            seconds,
            mops: total_ops as f64 / seconds / 1.0e6,
            audited: false,
            transport: Measurement::TRANSPORT_MEMORY.to_string(),
            batch: 1,
            oversubscribed: false,
            connections: 0,
            p50_ns: None,
            p99_ns: None,
            p999_ns: None,
            nodes: 1,
            qqc_max: None,
            qqc_mean: None,
            f_nl: None,
            retention: None,
            audit_threads: 0,
            sample_k: 1,
        }
    }
}

// Hand-written (not `json_struct!`) so fields added by later schema
// versions may be absent in older artifacts: a missing `transport` means
// `"memory"` (pre-v2 rows), a missing `batch` means `1`, a missing
// `oversubscribed` means `false` (pre-v3 rows), missing `connections`
// / latency percentiles mean `0` / `None` (pre-v4 rows), a missing
// `nodes` means `1` (pre-v5 rows), missing `qqc_max`/`qqc_mean`/
// `f_nl` mean `None` (pre-v6 rows), and missing `retention`/
// `audit_threads`/`sample_k` mean `None`/`0`/`1` (pre-v7 rows) — keeping
// every previously committed BENCH_throughput.json parseable.
impl ToJson for Measurement {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("counter".to_string(), self.counter.to_json()),
            ("network".to_string(), self.network.to_json()),
            ("threads".to_string(), self.threads.to_json()),
            ("total_ops".to_string(), self.total_ops.to_json()),
            ("seconds".to_string(), self.seconds.to_json()),
            ("mops".to_string(), self.mops.to_json()),
            ("audited".to_string(), self.audited.to_json()),
            ("transport".to_string(), self.transport.to_json()),
            ("batch".to_string(), self.batch.to_json()),
            ("oversubscribed".to_string(), self.oversubscribed.to_json()),
            ("connections".to_string(), self.connections.to_json()),
            ("p50_ns".to_string(), self.p50_ns.to_json()),
            ("p99_ns".to_string(), self.p99_ns.to_json()),
            ("p999_ns".to_string(), self.p999_ns.to_json()),
            ("nodes".to_string(), self.nodes.to_json()),
            ("qqc_max".to_string(), self.qqc_max.to_json()),
            ("qqc_mean".to_string(), self.qqc_mean.to_json()),
            ("f_nl".to_string(), self.f_nl.to_json()),
            ("retention".to_string(), self.retention.to_json()),
            ("audit_threads".to_string(), self.audit_threads.to_json()),
            ("sample_k".to_string(), self.sample_k.to_json()),
        ])
    }
}

impl FromJson for Measurement {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(Measurement {
            counter: cnet_util::json::field(v, "counter")?,
            network: cnet_util::json::field(v, "network")?,
            threads: cnet_util::json::field(v, "threads")?,
            total_ops: cnet_util::json::field(v, "total_ops")?,
            seconds: cnet_util::json::field(v, "seconds")?,
            mops: cnet_util::json::field(v, "mops")?,
            audited: cnet_util::json::field(v, "audited")?,
            transport: match v.get("transport") {
                Some(t) => FromJson::from_json(t)?,
                None => Measurement::TRANSPORT_MEMORY.to_string(),
            },
            batch: match v.get("batch") {
                Some(b) => FromJson::from_json(b)?,
                None => 1,
            },
            oversubscribed: match v.get("oversubscribed") {
                Some(o) => FromJson::from_json(o)?,
                None => false,
            },
            connections: match v.get("connections") {
                Some(c) => FromJson::from_json(c)?,
                None => 0,
            },
            // `field` maps absent to `Null`, which `Option` reads as `None`.
            p50_ns: cnet_util::json::field(v, "p50_ns")?,
            p99_ns: cnet_util::json::field(v, "p99_ns")?,
            p999_ns: cnet_util::json::field(v, "p999_ns")?,
            nodes: match v.get("nodes") {
                Some(n) => FromJson::from_json(n)?,
                None => 1,
            },
            // Schema v6: absent (pre-v6 rows) and explicit `null` both
            // read as `None` through `field`'s absent→Null mapping.
            qqc_max: cnet_util::json::field(v, "qqc_max")?,
            qqc_mean: cnet_util::json::field(v, "qqc_mean")?,
            f_nl: cnet_util::json::field(v, "f_nl")?,
            // Schema v7: paired retention is optional; the audit-pipeline
            // columns default to "recording on, no live stealers, no
            // sampling" — exactly what pre-v7 audited rows measured.
            retention: cnet_util::json::field(v, "retention")?,
            audit_threads: match v.get("audit_threads") {
                Some(a) => FromJson::from_json(a)?,
                None => 0,
            },
            sample_k: match v.get("sample_k") {
                Some(k) => FromJson::from_json(k)?,
                None => 1,
            },
        })
    }
}

/// The machine-readable result of a sweep — the schema of
/// `BENCH_throughput.json` (see README.md, "Benchmark artifacts").
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputReport {
    /// Schema version of this report format.
    pub version: u64,
    /// Network fan the sweep ran at.
    pub fan: usize,
    /// Increments per thread per timed run.
    pub ops_per_thread: usize,
    /// Timed repetitions per cell (best kept).
    pub repeats: usize,
    /// `available_parallelism` of the measuring host.
    pub cores: usize,
    /// Every timed cell, in sweep order.
    pub measurements: Vec<Measurement>,
}

json_struct!(ThroughputReport {
    version,
    fan,
    ops_per_thread,
    repeats,
    cores,
    measurements,
});

/// Times `threads` workers each performing `ops` increments; returns the
/// elapsed seconds.
fn time_run<C: ProcessCounter>(counter: &C, threads: usize, ops: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..threads {
            s.spawn(move || {
                for _ in 0..ops {
                    black_box(counter.next_for(p));
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Best-of-`repeats` timing of a freshly built counter per repetition (so
/// every run starts from identical cold state).
fn measure<C: ProcessCounter>(
    label: (&str, &str),
    build: impl Fn() -> C,
    threads: usize,
    cfg: &ThroughputConfig,
) -> Measurement {
    let total_ops = threads * cfg.ops_per_thread;
    let seconds = (0..cfg.repeats.max(1))
        .map(|_| {
            let counter = build();
            time_run(&counter, threads, cfg.ops_per_thread)
        })
        .fold(f64::INFINITY, f64::min);
    Measurement::timed(label.0, label.1, threads, total_ops, seconds)
}

/// Times `threads` workers each performing `ops` increments in batched
/// calls of `k`; returns the elapsed seconds.
fn time_run_batched<C: ProcessCounter>(counter: &C, threads: usize, ops: usize, k: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..threads {
            s.spawn(move || {
                let mut done = 0usize;
                while done < ops {
                    let n = k.min(ops - done);
                    black_box(counter.next_batch_for(p, n));
                    done += n;
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Like [`measure`], but claims increments through `next_batch_for` in
/// batches of `k` — the schema-v3 batched-traversal rows.
fn measure_batched<C: ProcessCounter>(
    label: (&str, &str),
    build: impl Fn() -> C,
    threads: usize,
    k: usize,
    cfg: &ThroughputConfig,
) -> Measurement {
    let total_ops = threads * cfg.ops_per_thread;
    let seconds = (0..cfg.repeats.max(1))
        .map(|_| {
            let counter = build();
            time_run_batched(&counter, threads, cfg.ops_per_thread, k)
        })
        .fold(f64::INFINITY, f64::min);
    let mut m = Measurement::timed(label.0, label.1, threads, total_ops, seconds);
    m.batch = k;
    m
}

/// Like [`measure`], but every increment is recorded into a fresh
/// [`TraceRecorder`] and the row carries a *paired* retention figure
/// (schema v7): each repetition times the un-instrumented twin and the
/// recorded counter back to back — inside one spawned thread set, phase
/// boundaries marked by barriers ([`time_paired`]) — so scheduler noise
/// and VM steal-time drift, which dwarf the recorder's few-nanosecond
/// hot-path cost when the two cells are timed minutes apart, hit both
/// sides of the ratio equally. Each repetition yields one paired ratio
/// and retention is the **median** of the per-repetition ratios, which a
/// single preempted repetition cannot move.
///
/// `audit_threads == 0` sizes the recorder so no event drops and drains
/// the rings through a [`StreamingAuditor`] *after* the timed region (the
/// recorder's hot-path cost is what the row measures). `audit_threads ≥ 1`
/// times the full live pipeline instead — workers plus that many
/// shard-stealing [`cnet_core::trace::ShardMonitor`] workers feeding a
/// [`cnet_core::trace::MergeAuditor`] — from first increment to a ready
/// verdict. `sample_k` is the recorder's sound 1-in-k sampling stride.
fn measure_audited_at<C: ProcessCounter, P: ProcessCounter>(
    label: (&str, &str),
    build: impl Fn(Arc<TraceRecorder>) -> C,
    build_plain: impl Fn() -> P,
    threads: usize,
    audit_threads: usize,
    sample_k: usize,
    cfg: &ThroughputConfig,
) -> Measurement {
    let total_ops = threads * cfg.ops_per_thread;
    // One recorder for all repetitions: each repetition drains it fully,
    // so reuse is a clean ring continuation — and it keeps the rings'
    // pages faulted and cache-warm, like the steady-state service the row
    // models. Rebuilding per repetition would stream several megabytes of
    // zeroing through the cache immediately before a timed region.
    let recorder = Arc::new(TraceRecorder::with_sampling(threads, cfg.ops_per_thread, sample_k));
    let mut best_audited = f64::INFINITY;
    let mut ratios = Vec::with_capacity(cfg.repeats.max(1));
    for rep in 0..cfg.repeats.max(1) {
        let counter = build(Arc::clone(&recorder));
        // One paired ratio per repetition, the two sides adjacent in time
        // and their order alternating between repetitions to cancel any
        // warm-up or cool-down bias.
        let time_audited = || {
            if audit_threads == 0 {
                let seconds = time_run(&counter, threads, cfg.ops_per_thread);
                let mut auditor = StreamingAuditor::new();
                drain_remaining(&recorder, &mut auditor);
                black_box(auditor.is_linearizable());
                seconds
            } else {
                let workload = Workload { threads, increments_per_thread: cfg.ops_per_thread };
                let start = Instant::now();
                let run =
                    drive_audited_parallel(&counter, &recorder, workload, audit_threads, |_| {});
                let seconds = start.elapsed().as_secs_f64();
                black_box(run.auditor.is_clean());
                seconds
            }
        };
        let (plain, audited) = if rep % 2 == 0 {
            let p = time_run(&build_plain(), threads, cfg.ops_per_thread);
            (p, time_audited())
        } else {
            let a = time_audited();
            (time_run(&build_plain(), threads, cfg.ops_per_thread), a)
        };
        best_audited = best_audited.min(audited);
        ratios.push(plain / audited);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let mid = ratios.len() / 2;
    let retention = if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    };
    let mut m = Measurement::timed(label.0, label.1, threads, total_ops, best_audited);
    m.audited = true;
    m.retention = Some(retention);
    m.audit_threads = audit_threads;
    m.sample_k = sample_k;
    m
}

/// The default audited row: recording on, monitors drained off the timed
/// path, no sampling (see [`measure_audited_at`]).
fn measure_audited<C: ProcessCounter, P: ProcessCounter>(
    label: (&str, &str),
    build: impl Fn(Arc<TraceRecorder>) -> C,
    build_plain: impl Fn() -> P,
    threads: usize,
    cfg: &ThroughputConfig,
) -> Measurement {
    measure_audited_at(label, build, build_plain, threads, 0, 1, cfg)
}

/// An [`OpSink`] for the consistency sweep's drain: streams into the full
/// [`StreamingAuditor`] (fractions + QQC lateness) while checking the
/// multiset contract — every value in `0..total`, each exactly once.
struct ConsistencySink {
    auditor: StreamingAuditor,
    seen: Vec<bool>,
    duplicates: usize,
    out_of_range: usize,
}

impl ConsistencySink {
    fn new(total: usize) -> ConsistencySink {
        ConsistencySink {
            auditor: StreamingAuditor::new(),
            seen: vec![false; total],
            duplicates: 0,
            out_of_range: 0,
        }
    }

    /// Panics unless exactly `0..total` was seen — the hard guarantee
    /// every backend in the sweep makes, relaxed ones included (only
    /// *ordering* may relax; a hole or duplicate is a counter bug).
    fn assert_dense(&self, label: (&str, &str)) {
        let missing = self.seen.iter().filter(|&&s| !s).count();
        assert!(
            self.duplicates == 0 && self.out_of_range == 0 && missing == 0,
            "{}/{}: values are not the exact multiset 0..{} \
             ({} duplicates, {} out of range, {} missing)",
            label.0,
            label.1,
            self.seen.len(),
            self.duplicates,
            self.out_of_range,
            missing,
        );
    }
}

impl OpSink for ConsistencySink {
    fn record(&mut self, ev: OpEvent) {
        match self.seen.get_mut(ev.value as usize) {
            None => self.out_of_range += 1,
            Some(slot) => {
                if *slot {
                    self.duplicates += 1;
                }
                *slot = true;
            }
        }
        self.auditor.record(ev);
    }
}

/// Like [`measure_audited`], but the drain runs the full consistency
/// instrumentation: the row carries the measured `qqc_max`/`qqc_mean`/
/// `f_nl` (schema v6) from the same run its throughput was timed on (the
/// best-of-`repeats` run), and the handed-out values are asserted to be
/// exactly the multiset `0..total_ops`.
fn measure_consistency<C: ProcessCounter>(
    label: (&str, &str),
    build: impl Fn(Arc<TraceRecorder>) -> C,
    threads: usize,
    cfg: &ThroughputConfig,
) -> Measurement {
    let total_ops = threads * cfg.ops_per_thread;
    let mut best_seconds = f64::INFINITY;
    let mut best_stats = (0u64, 0.0f64, 0.0f64);
    for _ in 0..cfg.repeats.max(1) {
        let recorder = Arc::new(TraceRecorder::new(threads, cfg.ops_per_thread));
        let counter = build(Arc::clone(&recorder));
        let seconds = time_run(&counter, threads, cfg.ops_per_thread);
        let mut sink = ConsistencySink::new(total_ops);
        drain_remaining(&recorder, &mut sink);
        assert_eq!(
            sink.auditor.operations(),
            total_ops,
            "{}/{}: recorder dropped events",
            label.0,
            label.1
        );
        sink.assert_dense(label);
        if seconds < best_seconds {
            best_seconds = seconds;
            best_stats =
                (sink.auditor.qqc_max(), sink.auditor.qqc_mean(), sink.auditor.f_nl());
        }
    }
    let mut m = Measurement::timed(label.0, label.1, threads, total_ops, best_seconds);
    m.audited = true;
    m.qqc_max = Some(best_stats.0);
    m.qqc_mean = Some(best_stats.1);
    m.f_nl = Some(best_stats.2);
    m
}

/// The consistency sweep (`cnet bench --sweep consistency`, schema v6):
/// every backend × every thread count, audited through the QQC meter, so
/// the rows trace the throughput-versus-measured-inconsistency frontier.
/// `sub_counters` sizes the relaxed backends (`RelaxedCounter`'s bank
/// count and the `EliminationCounter`'s slot count).
///
/// Strict backends (`fetch_add`, `lock`, and the network traversals when
/// their run happens to stay clean) report `qqc_max = 0`; the relaxed
/// backends report the bounded, nonzero lateness they traded for speed.
/// Every row — relaxed included — is asserted to hand out the exact
/// multiset `0..n`.
///
/// # Panics
///
/// Panics if `cfg.fan` is not a supported power of two, or if any backend
/// violates the multiset contract.
pub fn run_consistency_sweep(cfg: &ThroughputConfig, sub_counters: usize) -> Vec<Measurement> {
    let net = bitonic(cfg.fan).expect("power-of-two fan");
    let mut measurements = Vec::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for &threads in &cfg.threads {
        measurements.push(measure_consistency(
            ("fetch_add", "-"),
            |rec| Traced::new(FetchAddCounter::new(), rec),
            threads,
            cfg,
        ));
        measurements.push(measure_consistency(
            ("lock", "-"),
            |rec| Traced::new(LockCounter::new(), rec),
            threads,
            cfg,
        ));
        measurements.push(measure_consistency(
            ("compiled", "bitonic"),
            |rec| SharedNetworkCounter::with_recorder(&net, rec),
            threads,
            cfg,
        ));
        measurements.push(measure_consistency(
            ("diffracting", "tree"),
            |rec| {
                DiffractingTree::with_recorder(cfg.fan, PRISM_WIDTH, rec)
                    .expect("power-of-two fan")
            },
            threads,
            cfg,
        ));
        measurements.push(measure_consistency(
            ("combining", "bitonic"),
            |rec| {
                Traced::new(
                    CombiningFunnel::new(SharedNetworkCounter::new(&net), threads.max(1)),
                    rec,
                )
            },
            threads,
            cfg,
        ));
        measurements.push(measure_consistency(
            ("relaxed", "-"),
            |rec| RelaxedCounter::with_recorder(sub_counters, rec),
            threads,
            cfg,
        ));
        measurements.push(measure_consistency(
            ("elimination", "bitonic"),
            |rec| EliminationCounter::with_recorder(&net, sub_counters, rec),
            threads,
            cfg,
        ));
    }
    for m in &mut measurements {
        m.oversubscribed = m.threads > cores;
    }
    measurements
}

/// The parallel-audit combinations `cnet bench --sweep audit` measures for
/// the compiled bitonic engine at each thread count: `(audit_threads,
/// sample_k)` pairs spanning off-path draining, live shard-stealing at one
/// and two audit workers, and 1-in-8 sampling both off-path and live.
pub const AUDIT_SWEEP_POINTS: [(usize, usize); 5] = [(0, 1), (1, 1), (2, 1), (0, 8), (2, 8)];

/// The retention-versus-audit-cost sweep (`cnet bench --sweep audit`,
/// schema v7): for each thread count, a plain compiled-bitonic baseline
/// row plus one audited row per [`AUDIT_SWEEP_POINTS`] combination — every
/// audited row carrying its paired [`Measurement::retention`] — and
/// plain/audited pairs for the relaxed backends (`relaxed`, `elimination`,
/// sized by `sub_counters`) so [`ThroughputReport::retention`] resolves
/// for them too.
///
/// # Panics
///
/// Panics if `cfg.fan` is not a supported power of two.
pub fn run_audit_sweep(cfg: &ThroughputConfig, sub_counters: usize) -> Vec<Measurement> {
    let net = bitonic(cfg.fan).expect("power-of-two fan");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut measurements = Vec::new();
    for &threads in &cfg.threads {
        measurements.push(measure(
            ("compiled", "bitonic"),
            || SharedNetworkCounter::new(&net),
            threads,
            cfg,
        ));
        for (audit_threads, sample_k) in AUDIT_SWEEP_POINTS {
            measurements.push(measure_audited_at(
                ("compiled", "bitonic"),
                |rec| SharedNetworkCounter::with_recorder(&net, rec),
                || SharedNetworkCounter::new(&net),
                threads,
                audit_threads,
                sample_k,
                cfg,
            ));
        }
        measurements.push(measure(
            ("relaxed", "-"),
            || RelaxedCounter::new(sub_counters),
            threads,
            cfg,
        ));
        measurements.push(measure_audited(
            ("relaxed", "-"),
            |rec| RelaxedCounter::with_recorder(sub_counters, rec),
            || RelaxedCounter::new(sub_counters),
            threads,
            cfg,
        ));
        measurements.push(measure(
            ("elimination", "bitonic"),
            || EliminationCounter::new(&net, sub_counters),
            threads,
            cfg,
        ));
        measurements.push(measure_audited(
            ("elimination", "bitonic"),
            |rec| EliminationCounter::with_recorder(&net, sub_counters, rec),
            || EliminationCounter::new(&net, sub_counters),
            threads,
            cfg,
        ));
    }
    for m in &mut measurements {
        m.oversubscribed = m.threads > cores;
    }
    measurements
}

/// Runs the full sweep: `threads × {fetch_add, lock, compiled, graph_walk,
/// diffracting, combining} × {B(w), P(w), tree}`, plus audited rows
/// (`audited: true`) for the compiled engine on every family and for the
/// diffracting tree, so the trace recorder's overhead is captured next to
/// the un-instrumented baselines (compare with
/// [`ThroughputReport::retention`]). When [`ThroughputConfig::batches`]
/// lists sizes above one, batched rows (`"batch": k`, claimed through
/// `next_batch_for`) are added for the `fetch_add` baseline and the
/// compiled engine on every family — compare with
/// [`ThroughputReport::batch_speedup`].
///
/// # Panics
///
/// Panics if `cfg.fan` is not a supported power of two (the constructions
/// reject it).
pub fn run_throughput_sweep(cfg: &ThroughputConfig) -> ThroughputReport {
    let nets = [
        ("bitonic", bitonic(cfg.fan).expect("power-of-two fan")),
        ("periodic", periodic(cfg.fan).expect("power-of-two fan")),
        ("tree", counting_tree(cfg.fan).expect("power-of-two fan")),
    ];
    let mut measurements = Vec::new();
    for &threads in &cfg.threads {
        measurements.push(measure(("fetch_add", "-"), FetchAddCounter::new, threads, cfg));
        measurements.push(measure(("lock", "-"), LockCounter::new, threads, cfg));
        for (family, net) in &nets {
            measurements.push(measure(
                ("compiled", family),
                || SharedNetworkCounter::new(net),
                threads,
                cfg,
            ));
            measurements.push(measure(
                ("graph_walk", family),
                || GraphWalkCounter::new(net),
                threads,
                cfg,
            ));
        }
        measurements.push(measure(
            ("diffracting", "tree"),
            || DiffractingTree::new(cfg.fan, PRISM_WIDTH).expect("power-of-two fan"),
            threads,
            cfg,
        ));
        // The combining funnel over the compiled bitonic network: colliding
        // single-token callers merged into batched traversals.
        measurements.push(measure(
            ("combining", "bitonic"),
            || CombiningFunnel::new(SharedNetworkCounter::new(&nets[0].1), threads.max(1)),
            threads,
            cfg,
        ));
        // Batched rows: `1` maps to the plain rows above, so only sizes
        // above one sweep here.
        for &k in cfg.batches.iter().filter(|&&k| k > 1) {
            measurements.push(measure_batched(
                ("fetch_add", "-"),
                FetchAddCounter::new,
                threads,
                k,
                cfg,
            ));
            for (family, net) in &nets {
                measurements.push(measure_batched(
                    ("compiled", family),
                    || SharedNetworkCounter::new(net),
                    threads,
                    k,
                    cfg,
                ));
            }
        }
        for (family, net) in &nets {
            measurements.push(measure_audited(
                ("compiled", family),
                |rec| SharedNetworkCounter::with_recorder(net, rec),
                || SharedNetworkCounter::new(net),
                threads,
                cfg,
            ));
        }
        measurements.push(measure_audited(
            ("diffracting", "tree"),
            |rec| {
                DiffractingTree::with_recorder(cfg.fan, PRISM_WIDTH, rec)
                    .expect("power-of-two fan")
            },
            || DiffractingTree::new(cfg.fan, PRISM_WIDTH).expect("power-of-two fan"),
            threads,
            cfg,
        ));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for m in &mut measurements {
        m.oversubscribed = m.threads > cores;
    }
    ThroughputReport {
        version: 7,
        fan: cfg.fan,
        ops_per_thread: cfg.ops_per_thread,
        repeats: cfg.repeats.max(1),
        cores,
        measurements,
    }
}

impl ThroughputReport {
    /// The un-instrumented in-process per-token (`batch == 1`)
    /// measurement for a `(counter, network, threads)` cell, if swept.
    pub fn cell(&self, counter: &str, network: &str, threads: usize) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            !m.audited
                && m.transport == Measurement::TRANSPORT_MEMORY
                && m.batch == 1
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// The in-process batched measurement for a `(counter, network,
    /// threads, batch)` cell, if swept (`batch == 1` resolves to the
    /// plain per-token row).
    pub fn batch_cell(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
        batch: usize,
    ) -> Option<&Measurement> {
        if batch == 1 {
            return self.cell(counter, network, threads);
        }
        self.measurements.iter().find(|m| {
            !m.audited
                && m.transport == Measurement::TRANSPORT_MEMORY
                && m.batch == batch
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// Throughput ratio of the `batch == k` row over the per-token row on
    /// the same cell — the amortization factor batched traversal buys.
    pub fn batch_speedup(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
        batch: usize,
    ) -> Option<f64> {
        let batched = self.batch_cell(counter, network, threads, batch)?;
        let single = self.cell(counter, network, threads)?;
        Some(batched.mops / single.mops)
    }

    /// The audited (recorder-on) in-process measurement for a cell, if
    /// swept.
    pub fn audited_cell(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
    ) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            m.audited
                && m.transport == Measurement::TRANSPORT_MEMORY
                && m.audit_threads == 0
                && m.sample_k == 1
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// The consistency-sweep measurement (schema v6: carries measured
    /// `qqc_max`/`qqc_mean`/`f_nl`) for a cell, if swept — rows appended
    /// by `cnet bench --sweep consistency`. Distinguished from plain
    /// audited rows by the presence of the QQC fields.
    pub fn consistency_cell(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
    ) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            m.audited
                && m.qqc_max.is_some()
                && m.transport == Measurement::TRANSPORT_MEMORY
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// The single-server networked (loopback-TCP) measurement for a cell,
    /// if measured — rows appended by `cnet bench --net` or `cnet loadgen
    /// --out`. When several connection counts were swept this returns the
    /// first; use [`net_cell_at`](Self::net_cell_at) to pick one, and
    /// [`cluster_cell`](Self::cluster_cell) for multi-node rows.
    pub fn net_cell(&self, counter: &str, network: &str, threads: usize) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            m.transport == Measurement::TRANSPORT_TCP
                && m.nodes == 1
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// The single-server networked measurement for a specific
    /// pooled-connection count (schema v4) — the cells of the reactor's
    /// connection-scaling sweep.
    pub fn net_cell_at(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
        connections: usize,
    ) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            m.transport == Measurement::TRANSPORT_TCP
                && m.nodes == 1
                && m.counter == counter
                && m.network == network
                && m.threads == threads
                && m.connections == connections
        })
    }

    /// The partitioned-fabric measurement (schema v5, `nodes > 1`) for a
    /// cell — the rows of the node-scaling sweep.
    pub fn cluster_cell(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
        nodes: usize,
    ) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            m.transport == Measurement::TRANSPORT_TCP
                && m.nodes == nodes
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// The audited measurement for a specific `(audit_threads, sample_k)`
    /// parallel-audit combination (schema v7) — the cells of the
    /// retention-versus-audit-cost curve from `cnet bench --sweep audit`.
    pub fn audit_cell_at(
        &self,
        counter: &str,
        network: &str,
        threads: usize,
        audit_threads: usize,
        sample_k: usize,
    ) -> Option<&Measurement> {
        self.measurements.iter().find(|m| {
            m.audited
                && m.audit_threads == audit_threads
                && m.sample_k == sample_k
                && m.counter == counter
                && m.network == network
                && m.threads == threads
        })
    }

    /// Fraction of un-audited throughput the audited run retains on the
    /// same cell — `1.0` means the recorder was free, `0.8` is the floor
    /// the observability layer promises (see DESIGN.md).
    ///
    /// Prefers the paired [`Measurement::retention`] stored on the
    /// audited row (schema v7: plain and audited timed interleaved, so
    /// the ratio is drift-immune). For rows without one — pre-v7
    /// artifacts, consistency rows — it pairs the audited row with the
    /// plain row of the *same* transport, batch, connection count, and
    /// node count, so tcp, cluster, consistency, and relaxed-backend
    /// cells all resolve, not just plain in-process pairs.
    pub fn retention(&self, counter: &str, network: &str, threads: usize) -> Option<f64> {
        self.measurements
            .iter()
            .filter(|m| {
                m.audited && m.counter == counter && m.network == network && m.threads == threads
            })
            .find_map(|audited| {
                if let Some(r) = audited.retention {
                    return Some(r);
                }
                let plain = self.measurements.iter().find(|m| {
                    !m.audited
                        && m.counter == audited.counter
                        && m.network == audited.network
                        && m.threads == audited.threads
                        && m.transport == audited.transport
                        && m.batch == audited.batch
                        && m.connections == audited.connections
                        && m.nodes == audited.nodes
                })?;
                Some(audited.mops / plain.mops)
            })
    }

    /// Throughput ratio `a / b` between two counters on the same network
    /// and thread count — e.g. `speedup("compiled", "graph_walk",
    /// "bitonic", 8)` is the compiled engine's gain over the retained
    /// pre-change traversal.
    pub fn speedup(&self, a: &str, b: &str, network: &str, threads: usize) -> Option<f64> {
        let a = self.cell(a, network, threads)?;
        let b = self.cell(b, network, threads)?;
        Some(a.mops / b.mops)
    }

    /// Renders the human-readable summary: one row per thread count, one
    /// column per counter/network combination, in Mops/s.
    pub fn summary(&self) -> Table {
        #[allow(clippy::type_complexity)]
        let mut columns: Vec<(String, String, bool, String, usize, usize, usize, bool, usize, usize)> =
            Vec::new();
        for m in &self.measurements {
            let key = (
                m.counter.clone(),
                m.network.clone(),
                m.audited,
                m.transport.clone(),
                m.batch,
                m.connections,
                m.nodes,
                m.qqc_max.is_some(),
                m.audit_threads,
                m.sample_k,
            );
            if !columns.contains(&key) {
                columns.push(key);
            }
        }
        let mut headers = vec!["threads".to_string()];
        headers.extend(columns.iter().map(
            |(c, n, audited, transport, batch, connections, nodes, qqc, audit_threads, sample_k)| {
                let mut label = if n == "-" { c.clone() } else { format!("{c}/{n}") };
                if *qqc {
                    label.push_str("+qqc");
                } else if *audited {
                    label.push_str("+audit");
                }
                if transport != Measurement::TRANSPORT_MEMORY {
                    label.push('@');
                    label.push_str(transport);
                }
                if *batch > 1 {
                    label.push_str(&format!(" x{batch}"));
                }
                if *connections > 0 {
                    label.push_str(&format!(" c{connections}"));
                }
                if *nodes > 1 {
                    label.push_str(&format!(" n{nodes}"));
                }
                if *audit_threads > 0 {
                    label.push_str(&format!(" a{audit_threads}"));
                }
                if *sample_k > 1 {
                    label.push_str(&format!(" s{sample_k}"));
                }
                label
            },
        ));
        let mut table = Table::new(headers);
        let mut threads_seen: Vec<usize> = Vec::new();
        for m in &self.measurements {
            if !threads_seen.contains(&m.threads) {
                threads_seen.push(m.threads);
            }
        }
        for &t in &threads_seen {
            let mut row = vec![t.to_string()];
            for (c, n, audited, transport, batch, connections, nodes, qqc, audit_threads, sample_k) in
                &columns
            {
                let cell = self.measurements.iter().find(|m| {
                    m.counter == *c
                        && m.network == *n
                        && m.audited == *audited
                        && m.transport == *transport
                        && m.batch == *batch
                        && m.connections == *connections
                        && m.nodes == *nodes
                        && m.qqc_max.is_some() == *qqc
                        && m.audit_threads == *audit_threads
                        && m.sample_k == *sample_k
                        && m.threads == t
                });
                row.push(cell.map_or("-".to_string(), |m| format!("{:.2}", m.mops)));
            }
            table.row(row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnet_util::json;

    fn tiny() -> ThroughputConfig {
        ThroughputConfig {
            fan: 4,
            threads: vec![1, 2],
            ops_per_thread: 200,
            repeats: 1,
            batches: Vec::new(),
        }
    }

    #[test]
    fn sweep_covers_every_cell() {
        let report = run_throughput_sweep(&tiny());
        // Per thread count: fetch_add, lock, (compiled + graph_walk) × 3
        // networks, diffracting, combining, plus audited compiled × 3
        // networks and audited diffracting.
        assert_eq!(report.measurements.len(), 2 * 14);
        for m in &report.measurements {
            assert_eq!(m.total_ops, m.threads * 200);
            assert!(m.seconds > 0.0, "{m:?}");
            assert!(m.mops > 0.0, "{m:?}");
        }
        assert!(report.cell("compiled", "bitonic", 2).is_some());
        assert!(report.cell("graph_walk", "periodic", 1).is_some());
        assert!(report.cell("diffracting", "tree", 2).is_some());
        assert!(report.cell("combining", "bitonic", 2).is_some());
        assert!(report.cell("compiled", "bitonic", 64).is_none());
        // The audited rows are distinct cells with the flag set.
        assert!(!report.cell("compiled", "bitonic", 2).unwrap().audited);
        assert!(report.audited_cell("compiled", "bitonic", 2).unwrap().audited);
        assert!(report.audited_cell("diffracting", "tree", 1).is_some());
        assert!(report.audited_cell("graph_walk", "bitonic", 1).is_none());
    }

    #[test]
    fn retention_compares_audited_against_plain() {
        let report = run_throughput_sweep(&tiny());
        let r = report.retention("compiled", "bitonic", 2).unwrap();
        assert!(r.is_finite() && r > 0.0, "retention {r}");
        assert!(report.retention("graph_walk", "bitonic", 2).is_none());
        assert!(report.retention("compiled", "bitonic", 64).is_none());
        // Schema v7: the audited row stores the paired ratio directly,
        // and the accessor prefers it over re-deriving from separate
        // cells.
        let audited = report.audited_cell("compiled", "bitonic", 2).unwrap();
        assert_eq!(Some(r), audited.retention);
    }

    #[test]
    fn retention_pairs_tcp_cluster_and_consistency_rows() {
        let mut report = run_throughput_sweep(&tiny());
        // A tcp plain/audited pair on a cell with no memory audited row:
        // retention must match *within* the transport, not across it.
        let template = report.cell("fetch_add", "-", 2).unwrap().clone();
        let mut plain_tcp = template.clone();
        plain_tcp.transport = Measurement::TRANSPORT_TCP.to_string();
        plain_tcp.mops = 10.0;
        let mut audited_tcp = plain_tcp.clone();
        audited_tcp.audited = true;
        audited_tcp.mops = 8.0;
        report.measurements.push(plain_tcp);
        report.measurements.push(audited_tcp);
        let r = report.retention("fetch_add", "-", 2).unwrap();
        assert!((r - 0.8).abs() < 1e-12, "tcp retention {r}");
        // A cluster pair (nodes = 3) for a counter with no other rows.
        let mut plain_cluster = template.clone();
        plain_cluster.counter = "cluster".to_string();
        plain_cluster.transport = Measurement::TRANSPORT_TCP.to_string();
        plain_cluster.nodes = 3;
        plain_cluster.mops = 4.0;
        let mut audited_cluster = plain_cluster.clone();
        audited_cluster.audited = true;
        audited_cluster.mops = 3.0;
        report.measurements.push(plain_cluster);
        report.measurements.push(audited_cluster);
        let r = report.retention("cluster", "-", 2).unwrap();
        assert!((r - 0.75).abs() < 1e-12, "cluster retention {r}");
        // Consistency rows (audited, no stored retention) pair with the
        // plain memory cell of the same shape.
        report.measurements.extend(run_consistency_sweep(&tiny(), 4));
        assert!(report.retention("diffracting", "tree", 2).is_some());
    }

    #[test]
    fn audit_sweep_traces_the_retention_curve() {
        let rows = run_audit_sweep(&tiny(), 4);
        // Per thread count: plain compiled + one audited row per sweep
        // point + plain/audited pairs for relaxed and elimination.
        assert_eq!(rows.len(), 2 * (1 + AUDIT_SWEEP_POINTS.len() + 4));
        let mut report = run_throughput_sweep(&tiny());
        report.measurements = rows;
        for &(audit_threads, sample_k) in &AUDIT_SWEEP_POINTS {
            let m = report
                .audit_cell_at("compiled", "bitonic", 2, audit_threads, sample_k)
                .unwrap();
            assert!(m.audited);
            let r = m.retention.expect("sweep rows store paired retention");
            assert!(r.is_finite() && r > 0.0, "{m:?}");
        }
        // The relaxed backends resolve through the accessor (satellite of
        // the v7 schema: retention is no longer compiled-only).
        assert!(report.retention("relaxed", "-", 2).is_some());
        assert!(report.retention("elimination", "bitonic", 2).is_some());
        // Live rows are distinct summary columns, labelled by their
        // audit-thread and sampling parameters.
        let rendered = report.summary().to_string();
        assert!(rendered.contains("compiled/bitonic+audit a2"), "{rendered}");
        assert!(rendered.contains("compiled/bitonic+audit s8"), "{rendered}");
        assert!(rendered.contains("compiled/bitonic+audit a2 s8"), "{rendered}");
    }

    #[test]
    fn pre_v7_rows_default_the_audit_pipeline_columns() {
        // A schema-v6 audited row: no retention, audit_threads, sample_k.
        let text = concat!(
            r#"{"counter":"compiled","network":"bitonic","threads":8,"#,
            r#""total_ops":160000,"seconds":0.01,"mops":16.0,"audited":true,"#,
            r#""transport":"memory","batch":1,"oversubscribed":true,"#,
            r#""connections":0,"p50_ns":null,"p99_ns":null,"p999_ns":null,"#,
            r#""nodes":1,"qqc_max":null,"qqc_mean":null,"f_nl":null}"#
        );
        let m: Measurement = json::from_str(text).expect("v6 row parses");
        assert_eq!(m.retention, None);
        assert_eq!(m.audit_threads, 0);
        assert_eq!(m.sample_k, 1);
        let back: Measurement = json::from_str(&json::to_string_pretty(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn measurement_transport_defaults_to_memory_when_absent() {
        // A pre-`transport` schema-v2 row (as committed by earlier PRs).
        let text = concat!(
            r#"{"counter":"fetch_add","network":"-","threads":2,"#,
            r#""total_ops":100,"seconds":0.5,"mops":0.0002,"audited":false}"#
        );
        let m: Measurement = json::from_str(text).expect("legacy row parses");
        assert_eq!(m.transport, Measurement::TRANSPORT_MEMORY);
        // Re-serialized rows carry the field explicitly and round-trip.
        let back: Measurement = json::from_str(&json::to_string_pretty(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tcp_rows_are_separate_cells() {
        let mut report = run_throughput_sweep(&tiny());
        assert!(report.net_cell("fetch_add", "-", 2).is_none());
        let mut tcp = report.cell("fetch_add", "-", 2).unwrap().clone();
        tcp.transport = Measurement::TRANSPORT_TCP.to_string();
        tcp.mops /= 100.0;
        report.measurements.push(tcp);
        // The tcp row neither shadows nor is shadowed by the memory row.
        assert!(report.net_cell("fetch_add", "-", 2).is_some());
        assert!(!report
            .cell("fetch_add", "-", 2)
            .unwrap()
            .transport
            .contains("tcp"));
        let rendered = report.summary().to_string();
        assert!(rendered.contains("fetch_add@tcp"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_throughput_sweep(&tiny());
        let text = json::to_string_pretty(&report);
        let back: ThroughputReport = json::from_str(&text).expect("report parses");
        assert_eq!(back, report);
        assert_eq!(back.version, 7);
        assert_eq!(back.fan, 4);
        assert!(back.measurements.iter().any(|m| m.audited));
    }

    #[test]
    fn consistency_sweep_reports_qqc_on_every_row() {
        let cfg = tiny();
        let rows = run_consistency_sweep(&cfg, 4);
        // Per thread count: fetch_add, lock, compiled/bitonic,
        // diffracting/tree, combining/bitonic, relaxed, elimination.
        assert_eq!(rows.len(), 2 * 7);
        for m in &rows {
            assert!(m.audited, "{m:?}");
            assert!(m.qqc_max.is_some(), "{m:?}");
            assert!(m.qqc_mean.is_some(), "{m:?}");
            assert!(m.f_nl.is_some(), "{m:?}");
            assert!(m.qqc_mean.unwrap() >= 0.0, "{m:?}");
            assert!(m.mops > 0.0, "{m:?}");
        }
        // Single-threaded runs are trivially linearizable: zero lateness.
        for m in rows.iter().filter(|m| m.threads == 1) {
            assert_eq!(m.qqc_max, Some(0), "{m:?}");
            assert_eq!(m.f_nl, Some(0.0), "{m:?}");
        }
        // A clean stream and the fraction meter must agree: F_nl == 0
        // exactly when the max lateness is 0 (flag ⇔ lateness > 0).
        for m in &rows {
            assert_eq!(
                m.f_nl == Some(0.0),
                m.qqc_max == Some(0),
                "F_nl and qqc_max disagree: {m:?}"
            );
        }
    }

    #[test]
    fn consistency_rows_merge_without_shadowing_plain_cells() {
        let cfg = tiny();
        let mut report = run_throughput_sweep(&cfg);
        report.measurements.extend(run_consistency_sweep(&cfg, 4));
        // New accessors find the qqc-bearing rows...
        let c = report.consistency_cell("relaxed", "-", 2).unwrap();
        assert!(c.qqc_max.is_some());
        assert!(report.consistency_cell("elimination", "bitonic", 1).is_some());
        assert!(report.consistency_cell("graph_walk", "bitonic", 1).is_none());
        // ...while the plain and audited accessors still resolve to the
        // original rows (no qqc fields).
        assert!(report.cell("compiled", "bitonic", 2).unwrap().qqc_max.is_none());
        assert!(report
            .audited_cell("compiled", "bitonic", 2)
            .unwrap()
            .qqc_max
            .is_none());
        // The summary renders the qqc rows as their own columns.
        let rendered = report.summary().to_string();
        assert!(rendered.contains("relaxed+qqc"), "{rendered}");
        assert!(rendered.contains("compiled/bitonic+qqc"), "{rendered}");
        assert!(rendered.contains("compiled/bitonic+audit"), "{rendered}");
        // And the merged report round-trips at schema v6.
        let text = json::to_string_pretty(&report);
        let back: ThroughputReport = json::from_str(&text).expect("report parses");
        assert_eq!(back, report);
    }

    #[test]
    fn batched_rows_are_separate_cells_with_speedups() {
        let report = run_throughput_sweep(&ThroughputConfig {
            batches: vec![1, 8],
            ..tiny()
        });
        // batch=1 maps to the plain rows; batch=8 adds fetch_add +
        // compiled × 3 families per thread count.
        assert_eq!(report.measurements.len(), 2 * (14 + 4));
        let plain = report.cell("compiled", "bitonic", 2).unwrap();
        assert_eq!(plain.batch, 1);
        let batched = report.batch_cell("compiled", "bitonic", 2, 8).unwrap();
        assert_eq!(batched.batch, 8);
        assert_eq!(batched.total_ops, plain.total_ops);
        assert!(report.batch_cell("compiled", "bitonic", 2, 1).is_some());
        assert!(report.batch_cell("lock", "-", 2, 8).is_none());
        let s = report.batch_speedup("compiled", "bitonic", 2, 8).unwrap();
        assert!(s.is_finite() && s > 0.0);
        let rendered = report.summary().to_string();
        assert!(rendered.contains("compiled/bitonic x8"), "{rendered}");
        assert!(rendered.contains("fetch_add x8"), "{rendered}");
    }

    #[test]
    fn oversubscription_is_flagged_against_host_cores() {
        let report = run_throughput_sweep(&tiny());
        let cores = report.cores;
        for m in &report.measurements {
            assert_eq!(m.oversubscribed, m.threads > cores, "{m:?}");
        }
    }

    #[test]
    fn pre_v3_rows_default_batch_and_oversubscribed() {
        // A schema-v2 row: no batch, no oversubscribed fields.
        let text = concat!(
            r#"{"counter":"compiled","network":"bitonic","threads":4,"#,
            r#""total_ops":100,"seconds":0.5,"mops":0.0002,"audited":false,"#,
            r#""transport":"memory"}"#
        );
        let m: Measurement = json::from_str(text).expect("legacy row parses");
        assert_eq!(m.batch, 1);
        assert!(!m.oversubscribed);
        // Schema-v3 fields round-trip through cnet-util JSON.
        let back: Measurement = json::from_str(&json::to_string_pretty(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pre_v4_rows_default_connections_and_percentiles() {
        // A schema-v3 tcp row: no connections, no latency percentiles.
        let text = concat!(
            r#"{"counter":"fetch_add","network":"-","threads":2,"#,
            r#""total_ops":100,"seconds":0.5,"mops":0.0002,"audited":false,"#,
            r#""transport":"tcp","batch":16,"oversubscribed":false}"#
        );
        let m: Measurement = json::from_str(text).expect("v3 row parses");
        assert_eq!(m.connections, 0);
        assert_eq!(m.p50_ns, None);
        assert_eq!(m.p99_ns, None);
        assert_eq!(m.p999_ns, None);
        // Missing percentiles serialize as explicit nulls and round-trip.
        let serialized = json::to_string_pretty(&m);
        assert!(serialized.contains("\"p99_ns\": null"), "{serialized}");
        let back: Measurement = json::from_str(&serialized).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn connection_counts_are_distinct_tcp_cells() {
        let mut report = run_throughput_sweep(&tiny());
        let template = report.cell("fetch_add", "-", 2).unwrap().clone();
        for (connections, p99) in [(64usize, 40_000u64), (1024, 55_000)] {
            let mut row = template.clone();
            row.transport = Measurement::TRANSPORT_TCP.to_string();
            row.connections = connections;
            row.p50_ns = Some(p99 / 2);
            row.p99_ns = Some(p99);
            row.p999_ns = Some(p99 * 2);
            report.measurements.push(row);
        }
        let small = report.net_cell_at("fetch_add", "-", 2, 64).unwrap();
        let large = report.net_cell_at("fetch_add", "-", 2, 1024).unwrap();
        assert_eq!(small.p99_ns, Some(40_000));
        assert_eq!(large.p99_ns, Some(55_000));
        assert!(report.net_cell_at("fetch_add", "-", 2, 10_000).is_none());
        // net_cell still finds *a* tcp row, and the summary keeps one
        // column per connection count.
        assert!(report.net_cell("fetch_add", "-", 2).is_some());
        let rendered = report.summary().to_string();
        assert!(rendered.contains("fetch_add@tcp c64"), "{rendered}");
        assert!(rendered.contains("fetch_add@tcp c1024"), "{rendered}");
    }

    #[test]
    fn speedup_and_summary_read_the_cells() {
        let report = run_throughput_sweep(&tiny());
        let s = report.speedup("compiled", "graph_walk", "bitonic", 1).unwrap();
        assert!(s.is_finite() && s > 0.0);
        assert!(report.speedup("compiled", "graph_walk", "bitonic", 7).is_none());
        let rendered = report.summary().to_string();
        assert!(rendered.contains("compiled/bitonic"));
        assert!(rendered.contains("graph_walk/tree"));
        assert!(rendered.contains("fetch_add"));
        assert!(rendered.contains("compiled/bitonic+audit"));
        assert!(rendered.contains("diffracting/tree+audit"));
    }
}
