//! Theorem 5.4: under `c_max/c_min < ℓ` (integer `ℓ > 1`), the
//! non-sequential-consistency fraction of any uniform counting network is at
//! most `(ℓ − 2)/(ℓ − 1)`.
//!
//! For each `ℓ`, many random schedules with measured ratio below `ℓ` are
//! generated; the maximum observed `F_nsc` is compared against the bound.
//! (The bound quantifies over *all* executions, so sampling can only
//! understate the true maximum — the check is that no sample ever exceeds
//! it.)
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_thm54`

use cnet_bench::report::f3;
use cnet_bench::Table;
use cnet_core::fractions::non_sequential_consistency_fraction;
use cnet_core::op::Op;
use cnet_core::theory;
use cnet_sim::adversary::three_wave;
use cnet_sim::engine::run;
use cnet_sim::timing::TimingParams;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_topology::construct::{bitonic, periodic};
use cnet_topology::Network;

const SEEDS: u64 = 400;

/// The worst `F_nsc` the structured three-wave probes achieve while keeping
/// the measured ratio strictly below `ell` (0.0 if no wave level fits).
fn wave_probe_nsc(net: &Network, ell: usize) -> f64 {
    let w = net.fan().expect("classic fans");
    let mut worst = 0.0f64;
    for level in 1..=theory::classic_split_number(w) {
        let Ok(probe) = three_wave(net, level, 1.0, 1000.0) else { continue };
        let c_max = (ell as f64) - 0.01;
        if c_max <= probe.required_ratio {
            continue; // this level's waves cannot overtake below the ceiling
        }
        let sched = three_wave(net, level, 1.0, c_max).expect("probe succeeded");
        let exec = run(net, &sched.specs).expect("wave schedule");
        let params = TimingParams::measure(&exec);
        assert!(params.ratio().is_some_and(|r| r < ell as f64));
        let ops = Op::from_execution(&exec);
        worst = worst.max(non_sequential_consistency_fraction(&ops));
    }
    worst
}

fn max_observed_nsc(net: &Network, ell: usize) -> (f64, usize) {
    let cfg = WorkloadConfig {
        processes: net.fan_in(),
        tokens_per_process: 6,
        c_min: 1.0,
        c_max: ell as f64 - 0.01,
        local_delay: 0.0,
        start_spread: 1.0,
    };
    let mut worst = 0.0f64;
    let mut kept = 0;
    for seed in 0..SEEDS {
        let specs = generate(net, &cfg, seed);
        let exec = run(net, &specs).expect("generated schedule");
        let params = TimingParams::measure(&exec);
        // Confirm the measured ratio really is below ell.
        if params.ratio().is_some_and(|r| r < ell as f64) {
            kept += 1;
            let ops = Op::from_execution(&exec);
            worst = worst.max(non_sequential_consistency_fraction(&ops));
        }
    }
    (worst, kept)
}

fn main() {
    println!("== Theorem 5.4: F_nsc <= (l-2)/(l-1) under c_max/c_min < l ==\n");
    let mut table = Table::new(vec![
        "network",
        "l",
        "bound (l-2)/(l-1)",
        "max F_nsc random",
        "max F_nsc waves",
        "schedules",
        "within bound",
    ]);
    for (label, net) in [("B(8)", bitonic(8).unwrap()), ("P(8)", periodic(8).unwrap())] {
        for ell in [2usize, 3, 4, 5, 6, 8, 12] {
            let bound = theory::thm_5_4_nsc_upper(ell);
            let (worst_random, kept) = max_observed_nsc(&net, ell);
            let worst_waves = wave_probe_nsc(&net, ell);
            let worst = worst_random.max(worst_waves);
            assert!(worst <= bound + 1e-9, "{label} l={ell}: observed {worst} > bound {bound}");
            table.row(vec![
                label.to_string(),
                ell.to_string(),
                f3(bound),
                f3(worst_random),
                f3(worst_waves),
                kept.to_string(),
                (worst <= bound + 1e-9).to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Reading: l = 2 forces F_nsc = 0 exactly (ratio < 2 implies sequential\n\
         consistency — consistent with LSST99 Cor 3.10 via Theorem 3.2); larger l\n\
         admits larger fractions, always under the (l-2)/(l-1) ceiling."
    );
}
