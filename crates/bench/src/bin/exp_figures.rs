//! Figures 2, 4, 5, 6: the paper's example networks, emitted as Graphviz
//! DOT files plus a structural summary table.
//!
//! Run: `cargo run -p cnet-bench --bin exp_figures [out_dir]`

use cnet_bench::Table;
use cnet_topology::construct::{
    block, block_interleaved, bitonic, counting_tree, merger, periodic,
};
use cnet_topology::dot::to_dot;
use cnet_topology::{LayeredBuilder, Network};
use std::fs;
use std::path::PathBuf;

/// Figure 2's (6,6)-balancing network: a mix of (2,2)- and (3,3)-balancers.
fn figure_2_network() -> Network {
    let mut lb = LayeredBuilder::new(6);
    lb.balancer(&[0, 1, 2]);
    lb.balancer(&[3, 4, 5]);
    lb.balancer(&[0, 3]);
    lb.balancer(&[1, 4]);
    lb.balancer(&[2, 5]);
    lb.balancer(&[1, 2, 3]);
    lb.finish().expect("figure 2 network is well-formed")
}

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/figures".to_string())
        .into();
    fs::create_dir_all(&out_dir).expect("create output directory");

    let fig2 = figure_2_network();
    let nets: Vec<(&str, &str, Network)> = vec![
        ("fig2_balancing_6x6", "Figure 2: a (6,6)-balancing network", fig2),
        ("fig4_bitonic_4", "Figure 4 (left): B(4)", bitonic(4).unwrap()),
        ("fig4_bitonic_8", "Figure 4 (right): B(8)", bitonic(8).unwrap()),
        ("fig5_block_8_tb", "Figure 5 (right): L(8), top-bottom form", block(8).unwrap()),
        (
            "fig5_block_8_interleaved",
            "Figure 5 (left): L(8), interleaved form",
            block_interleaved(8).unwrap(),
        ),
        ("fig5_merger_8", "M(8), isomorphic to L(8)", merger(8).unwrap()),
        ("fig6_periodic_8", "Figure 6: P(8)", periodic(8).unwrap()),
        ("tree_8", "Section 2.6.3: counting tree, fan-out 8", counting_tree(8).unwrap()),
    ];

    println!("== Figures 2, 4, 5, 6: network constructions ==\n");
    let mut table = Table::new(vec![
        "figure", "fan-in", "fan-out", "size", "depth", "uniform",
    ]);
    for (name, title, net) in &nets {
        let path = out_dir.join(format!("{name}.dot"));
        fs::write(&path, to_dot(net, name)).expect("write dot file");
        println!("{title}  ->  {}", path.display());
        table.row(vec![
            name.to_string(),
            net.fan_in().to_string(),
            net.fan_out().to_string(),
            net.size().to_string(),
            net.depth().to_string(),
            net.is_uniform().to_string(),
        ]);
    }
    println!("\n{table}");
    println!("Herlihy–Tirthapura check: L(8) ≅ M(8): {}", {
        let l8 = block(8).unwrap();
        let m8 = merger(8).unwrap();
        cnet_topology::analysis::are_isomorphic(&l8, &m8)
    });
}
