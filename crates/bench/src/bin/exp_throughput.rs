//! Throughput of counting networks versus centralized counters — the
//! motivating claim of Section 1.1 (after \[AHS94\]): spreading tokens
//! through a network reduces contention at high thread counts.
//!
//! Wall-clock version of the criterion benchmark `throughput`, producing
//! the shape table recorded in `EXPERIMENTS.md`. Absolute numbers are
//! machine-dependent; the shape — the single word wins at low concurrency,
//! the network narrows the gap or wins as threads grow, and the lock trails —
//! is the reproduced result.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_throughput`

use cnet_bench::Table;
use cnet_runtime::{
    DiffractingTree, FetchAddCounter, GraphWalkCounter, LockCounter, MessagePassingCounter,
    ProcessCounter, SharedNetworkCounter,
};
use cnet_topology::construct::bitonic;
use std::time::Instant;

const OPS_PER_THREAD: usize = 50_000;

fn throughput<C: ProcessCounter>(counter: &C, threads: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..threads {
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    std::hint::black_box(counter.next_for(p));
                }
            });
        }
    });
    (threads * OPS_PER_THREAD) as f64 / start.elapsed().as_secs_f64() / 1.0e6
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    println!("== Throughput (Mops/s), {OPS_PER_THREAD} ops/thread, {cores} cores available ==\n");
    let b8 = bitonic(8).unwrap();
    let b16 = bitonic(16).unwrap();
    let net8 = SharedNetworkCounter::new(&b8);
    let net16 = SharedNetworkCounter::new(&b16);
    let walk8 = GraphWalkCounter::new(&b8);
    let fai = FetchAddCounter::new();
    let lock = LockCounter::new();
    let diff8 = DiffractingTree::new(8, 4).expect("power-of-two width");
    let mp8 = MessagePassingCounter::start(&b8);

    let mut table = Table::new(vec![
        "threads", "fetch&add", "lock", "compiled B(8)", "compiled B(16)",
        "graph-walk B(8)", "diffracting(8)", "msg-passing B(8)",
    ]);
    for threads in [1usize, 2, 4, 8, 16] {
        table.row(vec![
            threads.to_string(),
            format!("{:.2}", throughput(&fai, threads)),
            format!("{:.2}", throughput(&lock, threads)),
            format!("{:.2}", throughput(&net8, threads)),
            format!("{:.2}", throughput(&net16, threads)),
            format!("{:.2}", throughput(&walk8, threads)),
            format!("{:.2}", throughput(&diff8, threads)),
            format!("{:.2}", throughput(&mp8, threads)),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: a single fetch&add word is unbeatable sequentially, but its per-op\n\
         cost grows with contention; the network's cost is ~depth atomic ops, paid on\n\
         disjoint cache lines, so its curve flattens as threads grow. The compiled\n\
         columns traverse flat routing tables with wait-free balancer updates; the\n\
         graph-walk column is the retained pre-compilation path (per-hop graph\n\
         lookups plus a CAS loop), kept as the in-process baseline. The lock\n\
         serializes everything and trails under pressure. The diffracting tree pays\n\
         ~depth CAS hops like the bitonic network (its prisms only win under real\n\
         parallelism); the message-passing deployment pays two thread wakeups per\n\
         hop — the cost of owning state by communication."
    );
}
