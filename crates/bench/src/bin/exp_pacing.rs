//! The price of the Theorem 4.1 condition in practice.
//!
//! Section 4 argues the local-delay condition is "easily implementable
//! using local clocks": after each operation, wait
//! `d(G)·(c_max − 2·c_min)` on a per-process timer. This experiment pays
//! that price for real: the threaded counting network is wrapped in
//! [`cnet_runtime::LocallyPacedCounter`] at increasing delays, and the
//! table reports throughput, the *measured* per-process completion gaps,
//! and the audited inconsistency fractions of the recorded histories.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_pacing`

use cnet_bench::Table;
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_runtime::history::to_ops;
use cnet_runtime::{drive, LocallyPacedCounter, SharedNetworkCounter, Workload};
use cnet_topology::construct::bitonic;
use std::time::Duration;

const THREADS: usize = 4;
const OPS: usize = 400;

fn main() {
    let net = bitonic(8).unwrap();
    println!(
        "== Local pacing on B(8): throughput vs the Theorem 4.1 timer ({} threads x {} ops) ==\n",
        THREADS, OPS
    );
    let mut table = Table::new(vec![
        "pace (us)",
        "throughput (Kops/s)",
        "median completion gap (us)",
        "F_nl",
        "F_nsc",
    ]);
    for pace_us in [0u64, 10, 50, 200, 1000] {
        let paced = LocallyPacedCounter::new(
            SharedNetworkCounter::new(&net),
            Duration::from_micros(pace_us),
        );
        let start = std::time::Instant::now();
        let records = drive(&paced, Workload { threads: THREADS, increments_per_thread: OPS });
        let elapsed = start.elapsed().as_secs_f64();
        // Median per-process completion gap (robust against timestamping
        // jitter from preemption between the wrapper's internal clock and
        // the driver's).
        let mut gaps: Vec<u64> = Vec::new();
        for p in 0..THREADS {
            let mut mine: Vec<_> = records.iter().filter(|r| r.process == p).collect();
            mine.sort_by_key(|r| r.enter_ns);
            for pair in mine.windows(2) {
                gaps.push(pair[1].exit_ns - pair[0].exit_ns);
            }
        }
        gaps.sort_unstable();
        let median_gap_ns = gaps.get(gaps.len() / 2).copied().unwrap_or(0);
        let ops = to_ops(&records);
        table.row(vec![
            pace_us.to_string(),
            format!("{:.1}", (THREADS * OPS) as f64 / elapsed / 1.0e3),
            format!("{:.1}", median_gap_ns as f64 / 1.0e3),
            format!("{:.4}", non_linearizability_fraction(&ops)),
            format!("{:.4}", non_sequential_consistency_fraction(&ops)),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: the enforced pace shows up directly in the measured completion gaps\n\
         and caps throughput at ~1/pace per thread — the tangible cost of the paper's\n\
         local timer. The fractions stay at zero here either way (real schedulers are\n\
         far gentler than the adversary), which is exactly the paper's point: the\n\
         timer is cheap insurance whose premium scales with the asynchrony you fear."
    );
}
