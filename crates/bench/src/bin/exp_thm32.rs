//! Theorem 3.2: `c_min`, `c_max`, `C_g` cannot distinguish sequential
//! consistency from linearizability.
//!
//! Starting from a non-linearizable-but-sequentially-consistent execution
//! (every token owned by a distinct process), the transformation of
//! `cnet_sim::transform` relabels the earlier witness token to a fresh
//! process and inserts a flushing wave, producing an execution with (up to
//! an infinitesimal skew) the same timing parameters that is **not even
//! sequentially consistent**.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_thm32`

use cnet_bench::Table;
use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::op::Op;
use cnet_sim::adversary::bitonic_three_wave;
use cnet_sim::engine::run;
use cnet_sim::ids::ProcessId;
use cnet_sim::timing::TimingParams;
use cnet_sim::transform::desequentialize;
use cnet_topology::construct::bitonic;

fn show(params: &TimingParams) -> String {
    format!(
        "c_min={:.3} c_max={:.3} C_g={}",
        params.c_min.unwrap_or(f64::NAN),
        params.c_max.unwrap_or(f64::NAN),
        params
            .global_delay
            .map_or("inf".to_string(), |g| format!("{g:.3}")),
    )
}

fn main() {
    println!("== Theorem 3.2: the non-distinguishing transformation ==\n");
    let mut table = Table::new(vec![
        "w", "execution", "timing parameters", "linearizable?", "seq. consistent?",
    ]);
    for w in [8usize, 16, 32] {
        let net = bitonic(w).unwrap();
        // A non-linearizable execution where each token has its own process
        // (hence trivially sequentially consistent). Give wave 3 slack after
        // wave 2 so the transformation has room for its skew.
        let mut sched = bitonic_three_wave(&net, 1.0, 10.0).unwrap();
        for i in sched.wave3.clone() {
            for t in &mut sched.specs[i].step_times {
                *t += 0.5;
            }
        }
        for (i, s) in sched.specs.iter_mut().enumerate() {
            s.process = ProcessId(i);
        }
        let exec = run(&net, &sched.specs).unwrap();
        let ops = Op::from_execution(&exec);
        assert!(is_sequentially_consistent(&ops), "base execution must be SC");
        assert!(!is_linearizable(&ops), "base execution must be non-linearizable");
        let before = TimingParams::measure(&exec);
        table.row(vec![
            w.to_string(),
            "original R_E".to_string(),
            show(&before),
            is_linearizable(&ops).to_string(),
            is_sequentially_consistent(&ops).to_string(),
        ]);

        let outcome = desequentialize(&net, &sched.specs, &exec).unwrap();
        let new_exec = run(&net, &outcome.specs).unwrap();
        let new_ops = Op::from_execution(&new_exec);
        let after = TimingParams::measure(&new_exec);
        table.row(vec![
            w.to_string(),
            "transformed R_E'".to_string(),
            show(&after),
            is_linearizable(&new_ops).to_string(),
            is_sequentially_consistent(&new_ops).to_string(),
        ]);

        let wave = new_exec.record(outcome.wave_witness_token);
        println!(
            "B({w}): witness process {} saw value {} and then value {} — values decreased.",
            outcome.witness_process, outcome.earlier_value, wave.value
        );
    }
    println!("\n{table}");
    println!(
        "Reading: each transformed execution keeps the original's c_min/c_max/C_g (up to\n\
         the documented skew < 1e-6 of the smallest gap) while downgrading the violation\n\
         from 'non-linearizable' to 'non-sequentially-consistent'."
    );
}
