//! Theorem 5.11 and Corollaries 5.12/5.13: the family of lower bounds on
//! both inconsistency fractions, one per level `ℓ ∈ 1..=sp(G)`.
//!
//! For each classic network and each level, the three-wave schedule runs
//! just above its threshold `1 + d(G)/d(S⁽ℓ⁾)`; the measured fractions must
//! meet the predicted lower bounds — and, for this construction, match them
//! exactly. The final rows (ℓ = lg w) are Corollaries 5.12/5.13.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_thm511`

use cnet_bench::report::f3;
use cnet_bench::{adversarial_fractions, Table};
use cnet_core::theory;
use cnet_topology::construct::{bitonic, periodic};
use cnet_topology::Network;

fn panel(title: &str, nets: &[(&str, Network)]) {
    println!("--- {title} ---\n");
    let mut table = Table::new(vec![
        "network",
        "l",
        "threshold 1 + d/d(S^l)",
        "F_nl measured",
        "F_nl bound",
        "F_nsc measured",
        "F_nsc bound",
    ]);
    for (label, net) in nets {
        let w = net.fan().expect("classic fans");
        let sp = theory::classic_split_number(w);
        for ell in 1..=sp {
            let point = adversarial_fractions(net, ell);
            let nl_bound = theory::thm_5_11_nl_lower(ell);
            let nsc_bound = theory::thm_5_11_nsc_lower(ell);
            assert!(point.f_nl >= nl_bound - 1e-9, "{label} l={ell}");
            assert!(point.f_nsc >= nsc_bound - 1e-9, "{label} l={ell}");
            let cor = if ell == sp { " (Cor 5.12/5.13)" } else { "" };
            table.row(vec![
                format!("{label}{cor}"),
                ell.to_string(),
                format!("{:.2}", point.threshold),
                f3(point.f_nl),
                f3(nl_bound),
                f3(point.f_nsc),
                f3(nsc_bound),
            ]);
        }
    }
    println!("{table}");
}

fn main() {
    println!("== Theorem 5.11: inconsistency-fraction lower bounds per level ==\n");
    panel(
        "Bitonic networks",
        &[
            ("B(8)", bitonic(8).unwrap()),
            ("B(16)", bitonic(16).unwrap()),
            ("B(32)", bitonic(32).unwrap()),
        ],
    );
    panel(
        "Periodic networks",
        &[("P(8)", periodic(8).unwrap()), ("P(16)", periodic(16).unwrap())],
    );
    println!(
        "Reading: as l grows (stronger asynchrony required), F_nl rises toward 1/2 while\n\
         F_nsc falls toward 0 — the bounds diverge under strong asynchrony and coincide\n\
         (both 1/3) at l = 1, exactly as the paper concludes. At l = lg w the values are\n\
         (w-1)/(2w-1) and 1/(2w-1): Corollaries 5.12 and 5.13."
    );
}
