//! The diffracting tree (\[SZ96\]) versus the plain counting tree: the
//! concurrent optimization behind the paper's Section 2.6.3 object.
//!
//! Sweeps the prism width and thread count, reporting throughput and the
//! diffraction rate — the fraction of node visits resolved by a prism
//! collision instead of the hot toggle. Values remain dense in every
//! configuration (checked).
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_diffraction`

use cnet_bench::Table;
use cnet_runtime::DiffractingTree;
use std::time::Instant;

const OPS_PER_THREAD: usize = 30_000;

fn run_once(width: usize, prism: usize, threads: usize) -> (f64, f64) {
    let tree = DiffractingTree::new(width, prism).expect("power-of-two width");
    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..threads {
            let t = &tree;
            s.spawn(move || {
                for k in 0..OPS_PER_THREAD {
                    std::hint::black_box(t.increment(p * 1_000_003 + k));
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = (threads * OPS_PER_THREAD) as u64;
    // Sanity: dense values at quiescence.
    let counts = tree.leaf_counts();
    assert_eq!(counts.iter().sum::<u64>(), total);
    let (diffracted, toggled) = tree.diffraction_stats();
    let rate = diffracted as f64 / (diffracted + toggled) as f64;
    (total as f64 / elapsed / 1.0e6, rate)
}

fn main() {
    let width = 8;
    println!("== Diffracting tree (width {width}): throughput and diffraction rate ==\n");
    let mut table = Table::new(vec![
        "threads",
        "prism 0 (plain) Mops/s",
        "prism 1 Mops/s / rate",
        "prism 4 Mops/s / rate",
        "prism 8 Mops/s / rate",
    ]);
    for threads in [1usize, 2, 4, 8] {
        let (plain, _) = run_once(width, 0, threads);
        let cells: Vec<String> = [1usize, 4, 8]
            .iter()
            .map(|&p| {
                let (mops, rate) = run_once(width, p, threads);
                format!("{mops:.2} / {:.1}%", rate * 100.0)
            })
            .collect();
        table.row(vec![
            threads.to_string(),
            format!("{plain:.2}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: the diffraction rate is the fraction of node visits resolved by a\n\
         prism collision; under real parallelism it grows with contention and unloads\n\
         the root toggle. On a single-core host collisions are rare (threads seldom\n\
         overlap inside a prism window) and the plain toggle path dominates — the\n\
         correctness checks (dense values, balanced leaves) hold in all configurations."
    );
}
