//! Table 1's "arbitrary counting networks" row: [MPT97, Thm 4.1]'s
//! sufficient condition `c_max/c_min ≤ 2·s(G)/d(G)` exercised on genuinely
//! **non-uniform** counting networks.
//!
//! Non-uniform instances are manufactured by appending a (2,2)-balancer
//! across an adjacent pair of output wires of a classic network (counting-
//! preserving, see `cnet_topology::construct::append_adjacent_balancer`);
//! the adaptive discrete-event engine handles the varying route lengths.
//! Schedules whose measured ratio satisfies the bound must all be
//! linearizable (hence sequentially consistent).
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_arbitrary`

use cnet_bench::Table;
use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::op::Op;
use cnet_sim::engine::run_adaptive;
use cnet_sim::ids::ProcessId;
use cnet_sim::spec::AdaptiveTokenSpec;
use cnet_topology::construct::{append_adjacent_balancer, bitonic, periodic};
use cnet_topology::Network;
use cnet_util::rng::{Rng, SeedableRng, StdRng};

const SEEDS: u64 = 300;

fn random_adaptive_schedule(
    net: &Network,
    ratio: f64,
    seed: u64,
) -> Vec<AdaptiveTokenSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut specs = Vec::new();
    for p in 0..6usize {
        let mut t = rng.random_range(0.0..3.0);
        for _ in 0..4 {
            let delays: Vec<f64> =
                (0..net.depth()).map(|_| rng.random_range(1.0..ratio.max(1.0 + 1e-9))).collect();
            let worst = t + delays.iter().sum::<f64>();
            specs.push(AdaptiveTokenSpec {
                process: ProcessId(p),
                input: p % net.fan_in(),
                enter_time: t,
                delays,
            });
            // Next token enters after the worst-case exit.
            t = worst + rng.random_range(0.0..0.5);
        }
    }
    specs
}

fn main() {
    println!("== MPT97 Thm 4.1 on non-uniform counting networks: ratio <= 2 s(G)/d(G) ==\n");
    let mut table = Table::new(vec![
        "network",
        "s(G)",
        "d(G)",
        "bound 2s/d",
        "ratio used",
        "schedules",
        "non-lin",
        "non-SC",
    ]);
    for (label, base) in [
        ("B(8)+ext", bitonic(8).unwrap()),
        ("B(16)+ext", bitonic(16).unwrap()),
        ("P(8)+ext", periodic(8).unwrap()),
    ] {
        let net = append_adjacent_balancer(&base, 0).unwrap();
        assert!(!net.is_uniform());
        let s = net.shallowness() as f64;
        let d = net.depth() as f64;
        let bound = 2.0 * s / d;
        let ratio = bound - 0.01; // strictly inside the sufficient region
        let mut non_lin = 0usize;
        let mut non_sc = 0usize;
        for seed in 0..SEEDS {
            let specs = random_adaptive_schedule(&net, ratio, seed);
            let exec = run_adaptive(&net, &specs).expect("valid schedule");
            let ops = Op::from_execution(&exec);
            if !is_linearizable(&ops) {
                non_lin += 1;
            }
            if !is_sequentially_consistent(&ops) {
                non_sc += 1;
            }
        }
        table.row(vec![
            label.to_string(),
            format!("{s}"),
            format!("{d}"),
            format!("{bound:.3}"),
            format!("{ratio:.3}"),
            SEEDS.to_string(),
            non_lin.to_string(),
            non_sc.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: the extended networks have s(G) = d(G) − 1, so the MPT97 bound drops\n\
         strictly below 2 — and inside it, every random schedule is linearizable and\n\
         sequentially consistent, matching the 'Arbitrary' row of Table 1."
    );
}
