//! Open problems 4 and 5 (Section 6): how tight are the fraction bounds?
//!
//! * **Open problem 4** — is Theorem 5.4's ceiling `F_nsc ≤ (ℓ−2)/(ℓ−1)`
//!   tight? A hill-climbing search over valid schedules with ratio `< ℓ`
//!   reports the best `F_nsc` it can reach; the gap to the ceiling is the
//!   open territory.
//! * **Open problem 5** — can any schedule beat Theorem 5.11's three-wave
//!   lower bounds? The same search, with the asynchrony of each level,
//!   races against the analytic construction.
//!
//! These are *searches*, not proofs: they bound what randomized adversaries
//! achieve, and in every run to date the analytic constructions remain
//! unbeaten — weak evidence the known bounds are the truth for these
//! schedule shapes.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_open45`

use cnet_bench::report::f3;
use cnet_bench::search::refine;
use cnet_bench::{maximize, SearchSpace, Table};
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_core::theory;
use cnet_sim::adversary::three_wave;
use cnet_sim::engine::run;
use cnet_core::op::Op;
use cnet_topology::construct::bitonic;

fn main() {
    let net = bitonic(8).unwrap();

    println!("== Open problem 4: searching for the worst F_nsc under c_max/c_min < l ==\n");
    let mut table = Table::new(vec![
        "l", "ceiling (l-2)/(l-1)", "best F_nsc found", "evaluations", "gap to ceiling",
    ]);
    for ell in [3usize, 4, 6, 10] {
        let c_max = ell as f64 - 0.01;
        let space = SearchSpace {
            processes: 8,
            tokens_per_process: 4,
            c_min: 1.0,
            c_max,
            max_gap: 3.0,
        };
        // Random restarts…
        let random_outcome = maximize(&net, &space, 2024 + ell as u64, 8, 400, |ops| {
            non_sequential_consistency_fraction(ops)
        });
        // …and refinement from the strongest wave construction whose
        // threshold fits under the ceiling (if any).
        let mut best = random_outcome.best_score;
        let mut evals = random_outcome.evaluations;
        for level in 1..=3usize {
            let Ok(probe) = three_wave(&net, level, 1.0, 1000.0) else { continue };
            if c_max <= probe.required_ratio {
                continue;
            }
            let sched = three_wave(&net, level, 1.0, c_max).expect("probe succeeded");
            let outcome = refine(&net, &space, &sched.specs, 77 + ell as u64, 600, |ops| {
                non_sequential_consistency_fraction(ops)
            });
            best = best.max(outcome.best_score);
            evals += outcome.evaluations;
        }
        let ceiling = theory::thm_5_4_nsc_upper(ell);
        assert!(best <= ceiling + 1e-9, "ceiling breached at l={ell}!");
        table.row(vec![
            ell.to_string(),
            f3(ceiling),
            f3(best),
            evals.to_string(),
            f3(ceiling - best),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: the ceiling is never breached; the residual gap is open problem 4's\n\
         territory (the search's best known lower evidence vs the theorem's upper bound).\n"
    );

    println!("== Open problem 5: trying to beat the three-wave lower bounds ==\n");
    let mut table = Table::new(vec![
        "l",
        "wave F_nl",
        "searched F_nl",
        "wave F_nsc",
        "searched F_nsc",
        "waves beaten?",
    ]);
    for ell in 1..=3usize {
        let probe = three_wave(&net, ell, 1.0, 1000.0).unwrap();
        let ratio = probe.required_ratio + 0.5;
        let sched = three_wave(&net, ell, 1.0, ratio).unwrap();
        let exec = run(&net, &sched.specs).unwrap();
        let ops = Op::from_execution(&exec);
        let wave_nl = non_linearizability_fraction(&ops);
        let wave_nsc = non_sequential_consistency_fraction(&ops);

        let space = SearchSpace {
            processes: 8,
            tokens_per_process: 3,
            c_min: 1.0,
            c_max: ratio,
            max_gap: 3.0,
        };
        // Refine from the waves themselves: the search starts at the
        // analytic optimum and tries to climb past it.
        let nl_outcome = refine(&net, &space, &sched.specs, 9000 + ell as u64, 800, |ops| {
            non_linearizability_fraction(ops)
        });
        let nsc_outcome = refine(&net, &space, &sched.specs, 9100 + ell as u64, 800, |ops| {
            non_sequential_consistency_fraction(ops)
        });
        table.row(vec![
            ell.to_string(),
            f3(wave_nl),
            f3(nl_outcome.best_score),
            f3(wave_nsc),
            f3(nsc_outcome.best_score),
            (nl_outcome.best_score > wave_nl + 1e-9
                || nsc_outcome.best_score > wave_nsc + 1e-9)
                .to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: a 'true' in the last column would improve Theorem 5.11's lower bounds\n\
         (open problem 5). Note the search uses different token budgets than the waves,\n\
         so fractions are comparable as fractions, not token counts."
    );
}
