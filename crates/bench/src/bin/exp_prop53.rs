//! Propositions 5.2 / 5.3: under `c_max/c_min > (lg w + 3)/2`, the bitonic
//! network admits executions with non-linearizability fraction ≥ 1/3
//! (\[LSST99\]) *and* non-sequential-consistency fraction ≥ 1/3 (this paper).
//!
//! The three-wave schedule is run for each fan; both fractions are measured
//! and compared with the 1/3 bound, and with what happens just *below* the
//! threshold (where the waves fail to overtake).
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_prop53`

use cnet_bench::report::f3;
use cnet_bench::Table;
use cnet_core::fractions::{
    non_linearizability_fraction, non_sequential_consistency_fraction,
};
use cnet_core::op::Op;
use cnet_core::theory;
use cnet_sim::adversary::bitonic_three_wave;
use cnet_sim::engine::run;
use cnet_topology::construct::bitonic;

fn fractions_at(w: usize, ratio: f64) -> (f64, f64) {
    let net = bitonic(w).unwrap();
    let sched = bitonic_three_wave(&net, 1.0, ratio).unwrap();
    let exec = run(&net, &sched.specs).unwrap();
    let ops = Op::from_execution(&exec);
    (
        non_linearizability_fraction(&ops),
        non_sequential_consistency_fraction(&ops),
    )
}

fn main() {
    println!("== Propositions 5.2/5.3: three-wave fractions on the bitonic network ==\n");
    let mut table = Table::new(vec![
        "w",
        "threshold (lg w + 3)/2",
        "F_nl above",
        "F_nsc above",
        "paper bound",
        "F_nl below",
        "F_nsc below",
    ]);
    for w in [4usize, 8, 16, 32, 64] {
        let threshold = theory::bitonic_wave_threshold(w);
        let (nl_hi, nsc_hi) = fractions_at(w, threshold + 0.01);
        let (nl_lo, nsc_lo) = fractions_at(w, (threshold - 0.3).max(1.0));
        assert!(nl_hi >= 1.0 / 3.0 - 1e-9, "B({w}) must reach the F_nl bound");
        assert!(nsc_hi >= 1.0 / 3.0 - 1e-9, "B({w}) must reach the F_nsc bound");
        table.row(vec![
            w.to_string(),
            format!("{threshold:.2}"),
            f3(nl_hi),
            f3(nsc_hi),
            ">= 1/3".to_string(),
            f3(nl_lo),
            f3(nsc_lo),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: just above the threshold both inconsistency fractions hit exactly 1/3\n\
         (w/2 of 3w/2 tokens); just below it the same schedule shape yields zero — the\n\
         asynchrony requirement (lg w + 3)/2 grows without bound in the fan, confirming\n\
         that unbounded asynchrony is essential for poor consistency at scale."
    );
}
