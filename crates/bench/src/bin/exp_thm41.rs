//! Theorem 4.1 and Corollary 4.5: the local-delay condition
//! `d(G)·(c_max − 2·c_min) < C_L` is sufficient for sequential consistency
//! but **not** for linearizability — the distinguishing timing condition.
//!
//! Three panels:
//!
//! 1. random schedules engineered to satisfy the condition: zero sequential
//!    consistency violations across every seed;
//! 2. the same envelopes *without* the local delay (C_L = 0): the
//!    adversarial wave schedule now violates sequential consistency, so the
//!    bound on C_L is doing real work;
//! 3. Corollary 4.5's witness: an execution that satisfies the condition
//!    vacuously (one token per process) yet is not linearizable.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_thm41`

use cnet_bench::{local_delay_sufficiency, Table};
use cnet_core::conditions::TimingCondition;
use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::op::Op;
use cnet_sim::adversary::bitonic_three_wave;
use cnet_sim::engine::run;
use cnet_sim::ids::ProcessId;
use cnet_sim::timing::TimingParams;
use cnet_topology::construct::{bitonic, periodic};

const SEEDS: u64 = 200;

fn main() {
    println!("== Theorem 4.1: d(G)(c_max - 2 c_min) < C_L  =>  sequentially consistent ==\n");
    let mut table = Table::new(vec![
        "network", "ratio", "schedules satisfying C_L bound", "non-SC", "non-lin observed",
    ]);
    for (label, net) in [
        ("B(8)", bitonic(8).unwrap()),
        ("B(16)", bitonic(16).unwrap()),
        ("P(8)", periodic(8).unwrap()),
    ] {
        for ratio in [3.0, 5.0, 8.0] {
            let report = local_delay_sufficiency(&net, ratio, SEEDS);
            table.row(vec![
                label.to_string(),
                format!("{ratio}"),
                report.schedules_checked.to_string(),
                report.sequential_consistency_violations.to_string(),
                report.linearizability_violations.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "Reading: the C_L bound forces zero non-SC outcomes at any asynchrony ratio\n\
         (column 4), while linearizability may still fail (column 5 counts how many of\n\
         the same schedules were non-linearizable — allowed, since the condition only\n\
         promises sequential consistency).\n"
    );

    println!("== Without the local delay (C_L = 0) the same asynchrony breaks SC ==\n");
    let mut table = Table::new(vec!["network", "ratio", "C_L", "condition holds?", "seq. consistent?"]);
    for w in [8usize, 16] {
        let net = bitonic(w).unwrap();
        let threshold = (w.trailing_zeros() as f64 + 3.0) / 2.0;
        let sched = bitonic_three_wave(&net, 1.0, threshold + 0.5).unwrap();
        let exec = run(&net, &sched.specs).unwrap();
        let params = TimingParams::measure(&exec);
        let cond = TimingCondition::local_delay(&net);
        let ops = Op::from_execution(&exec);
        table.row(vec![
            format!("B({w})"),
            format!("{:.2}", threshold + 0.5),
            format!("{:.2}", params.local_delay.unwrap_or(f64::NAN)),
            cond.holds(&params).to_string(),
            is_sequentially_consistent(&ops).to_string(),
        ]);
    }
    println!("{table}");

    println!("== Corollary 4.5: the condition does NOT imply linearizability ==\n");
    let mut table = Table::new(vec![
        "network", "C_L (vacuous: one token/process)", "condition holds?", "linearizable?", "seq. consistent?",
    ]);
    for w in [8usize, 16, 32] {
        let net = bitonic(w).unwrap();
        let threshold = (w.trailing_zeros() as f64 + 3.0) / 2.0;
        let mut sched = bitonic_three_wave(&net, 1.0, threshold + 0.5).unwrap();
        // Rename processes so each token has its own (the paper's move in
        // the proof of Corollary 4.5): C_L becomes vacuous (+inf).
        for (i, s) in sched.specs.iter_mut().enumerate() {
            s.process = ProcessId(i);
        }
        let exec = run(&net, &sched.specs).unwrap();
        let params = TimingParams::measure(&exec);
        let cond = TimingCondition::local_delay(&net);
        let ops = Op::from_execution(&exec);
        table.row(vec![
            format!("B({w})"),
            params.local_delay.map_or("inf".into(), |v| format!("{v:.2}")),
            cond.holds(&params).to_string(),
            is_linearizable(&ops).to_string(),
            is_sequentially_consistent(&ops).to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: these executions satisfy the Theorem 4.1 condition (so they are SC, last\n\
         column) yet are not linearizable — the condition distinguishes the two notions."
    );
}
