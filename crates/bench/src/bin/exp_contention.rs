//! Contention profile across the network's depth.
//!
//! The motivation for counting networks (\[AHS94\], Section 1.1 of the paper)
//! is that a single fetch-and-increment word concentrates *all* memory
//! contention on one cache line, while a network pays `depth` cheaper
//! operations on `w/2 · depth` separate words. This experiment measures
//! where the contention actually lands: per-layer token traffic and
//! atomic-CAS retry counts under a saturating threaded workload, for a
//! width-spread network (bitonic) versus a root-bottlenecked one (the
//! counting tree).
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_contention`

use cnet_bench::Table;
use cnet_runtime::InstrumentedNetworkCounter;
use cnet_topology::construct::{bitonic, counting_tree};
use cnet_topology::Network;
use std::thread;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 20_000;

fn profile(label: &str, net: &Network) {
    let counter = InstrumentedNetworkCounter::new(net);
    thread::scope(|s| {
        for p in 0..THREADS {
            let c = &counter;
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    c.increment_from(p % net.fan_in());
                }
            });
        }
    });
    let total_ops = (THREADS * OPS_PER_THREAD) as u64;
    println!("--- {label}: {total_ops} increments across {THREADS} threads ---\n");
    let mut table = Table::new(vec![
        "layer", "balancers", "tokens", "CAS retries", "retries per 1k tokens",
    ]);
    for (layer, visits, retries) in counter.layer_profile() {
        let balancers = net.layer(layer).balancers().count();
        table.row(vec![
            layer.to_string(),
            balancers.to_string(),
            visits.to_string(),
            retries.to_string(),
            format!("{:.2}", 1000.0 * retries as f64 / visits.max(1) as f64),
        ]);
    }
    println!("{table}");
    let total_retries: u64 = counter.retries().iter().sum();
    println!(
        "total retries: {total_retries} over {} balancer crossings ({:.4} per crossing)\n",
        counter.visits().iter().sum::<u64>(),
        total_retries as f64 / counter.visits().iter().sum::<u64>().max(1) as f64
    );
}

fn main() {
    profile("bitonic B(8)", &bitonic(8).unwrap());
    profile("counting tree, fan-out 8", &counting_tree(8).unwrap());
    println!(
        "Reading: the bitonic network spreads each layer's traffic over w/2 balancers, so\n\
         retries stay uniformly low; the counting tree funnels every token through its\n\
         root balancer, which concentrates the retries exactly like the single counter\n\
         the constructions were invented to avoid. (On a single-core host retry counts\n\
         are near zero everywhere — contention requires true parallelism.)"
    );
}
