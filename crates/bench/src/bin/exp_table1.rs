//! Table 1: known necessary and sufficient timing conditions for
//! linearizability in counting networks — checked empirically, and (per
//! Theorem 3.2) read simultaneously as conditions for sequential
//! consistency.
//!
//! * **Sufficiency** rows: thousands of random schedules whose *measured*
//!   parameters satisfy the condition; a correct sufficiency theorem admits
//!   zero violations.
//! * **Necessity** rows: explicit adversarial schedules *just above* the
//!   threshold that do violate both conditions — so no weaker bound on the
//!   ratio can suffice.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_table1`

use cnet_bench::{sufficiency_scan, Table};
use cnet_core::conditions::TimingCondition;
use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::op::Op;
use cnet_sim::adversary::{bitonic_three_wave, holding_race};
use cnet_sim::engine::run;
use cnet_sim::workload::WorkloadConfig;
use cnet_topology::construct::{bitonic, counting_tree, periodic};
use cnet_topology::Network;

const SEEDS: u64 = 300;

fn scan_row(
    table: &mut Table,
    label: &str,
    net: &Network,
    condition: TimingCondition,
    c_max: f64,
) {
    let cfg = WorkloadConfig {
        processes: net.fan_in().clamp(2, 8),
        tokens_per_process: 4,
        c_min: 1.0,
        c_max,
        local_delay: 0.0,
        start_spread: 2.0 * c_max,
    };
    let report = sufficiency_scan(net, &cfg, condition, SEEDS);
    table.row(vec![
        label.to_string(),
        condition.to_string(),
        format!("{} schedules", report.schedules_checked),
        report.linearizability_violations.to_string(),
        report.sequential_consistency_violations.to_string(),
    ]);
}

fn main() {
    println!("== Table 1: timing conditions for linearizability (and, by Theorem 3.2, for sequential consistency) ==\n");

    println!("--- Sufficient conditions: random schedules satisfying each condition must show ZERO violations ---\n");
    let mut table = Table::new(vec![
        "network", "condition (satisfied by measurement)", "sample", "non-lin", "non-SC",
    ]);
    let b8 = bitonic(8).unwrap();
    let b16 = bitonic(16).unwrap();
    let p8 = periodic(8).unwrap();
    let t8 = counting_tree(8).unwrap();

    // LSST99 Cor 3.10: ratio <= 2 (uniform networks).
    scan_row(&mut table, "B(8)", &b8, TimingCondition::RatioAtMostTwo, 2.0);
    scan_row(&mut table, "B(16)", &b16, TimingCondition::RatioAtMostTwo, 2.0);
    scan_row(&mut table, "P(8)", &p8, TimingCondition::RatioAtMostTwo, 2.0);
    scan_row(&mut table, "Tree(8)", &t8, TimingCondition::RatioAtMostTwo, 2.0);
    // MPT97 Thm 4.1: ratio <= 2 s(G)/d(G) (arbitrary networks; = 2 when uniform).
    scan_row(&mut table, "B(8)", &b8, TimingCondition::mpt_sufficient(&b8), 2.0);
    // LSST99 Cor 3.7: d (c_max - 2 c_min) < C_g. Generate well-spaced
    // schedules (big envelopes, small ratio) and let the measured C_g decide.
    scan_row(&mut table, "B(8)", &b8, TimingCondition::global_delay(&b8), 1.9);
    scan_row(&mut table, "P(8)", &p8, TimingCondition::global_delay(&p8), 1.9);
    println!("{table}");

    println!("--- Necessary conditions: adversarial schedules just above each threshold violate both ---\n");
    let mut table = Table::new(vec![
        "network", "threshold exceeded", "ratio used", "linearizable?", "seq. consistent?",
    ]);

    // Bitonic / tree necessity at ratio 2 (LSST99 Thms 4.3/4.1), shown tight
    // here for depth-1 instances by the holding race (threshold d+1).
    for (label, net) in [("B(2)", bitonic(2).unwrap()), ("Tree(2)", counting_tree(2).unwrap())] {
        let race = holding_race(&net, 1.0, 2.01, true).unwrap();
        let exec = run(&net, &race.specs).unwrap();
        let ops = Op::from_execution(&exec);
        table.row(vec![
            label.to_string(),
            "c_max/c_min <= 2 (LSST99 necessity)".to_string(),
            "2.01".to_string(),
            is_linearizable(&ops).to_string(),
            is_sequentially_consistent(&ops).to_string(),
        ]);
    }
    // MPT97 Thm 3.1 necessity: d/irad + 1 = (lg w + 3)/2 for B(w); the
    // three-wave construction violates just above it.
    for w in [8usize, 16, 32] {
        let net = bitonic(w).unwrap();
        let threshold = (w.trailing_zeros() as f64 + 3.0) / 2.0;
        let sched = bitonic_three_wave(&net, 1.0, threshold + 0.01).unwrap();
        let exec = run(&net, &sched.specs).unwrap();
        let ops = Op::from_execution(&exec);
        table.row(vec![
            format!("B({w})"),
            format!("c_max/c_min <= d/irad + 1 = {threshold} (MPT97 necessity)"),
            format!("{:.2}", threshold + 0.01),
            is_linearizable(&ops).to_string(),
            is_sequentially_consistent(&ops).to_string(),
        ]);
    }
    // Deep holding races: any uniform network violates above d+1.
    for (label, net) in [("B(8)", bitonic(8).unwrap()), ("P(8)", periodic(8).unwrap()), ("Tree(8)", counting_tree(8).unwrap())] {
        let d = net.depth() as f64;
        let race = holding_race(&net, 1.0, d + 1.01, true).unwrap();
        let exec = run(&net, &race.specs).unwrap();
        let ops = Op::from_execution(&exec);
        table.row(vec![
            label.to_string(),
            format!("holding race, c_max/c_min > d+1 = {}", d + 1.0),
            format!("{:.2}", d + 1.01),
            is_linearizable(&ops).to_string(),
            is_sequentially_consistent(&ops).to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Reading: every 'false/false' row certifies the execution violates BOTH conditions,\n\
         so conditions on c_min/c_max/C_g alone cannot separate them (Theorem 3.2)."
    );
}
