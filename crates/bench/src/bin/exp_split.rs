//! Propositions 5.6–5.10: the split structure of the classic counting
//! networks.
//!
//! Measures, for each fan: split depth `sd`, split number `sp`, the
//! continuous completeness/uniform-splittability flags, the per-stage depths
//! `d(S⁽ℓ⁾)` that enter Theorem 5.11's thresholds, and the influence radius
//! behind \[MPT97\]'s necessary condition — each against its closed-form
//! prediction.
//!
//! Run: `cargo run --release -p cnet-bench --bin exp_split`

use cnet_bench::Table;
use cnet_core::theory;
use cnet_topology::analysis::split::split_sequence;
use cnet_topology::analysis::{influence_radius, split_depth, Valencies};
use cnet_topology::construct::{bitonic, periodic};
use cnet_topology::Network;

fn row(table: &mut Table, label: &str, net: &Network, sd_formula: usize) {
    let w = net.fan().expect("classic networks have a fan");
    let val = Valencies::compute(net);
    let sd = split_depth(net, &val).expect("classic networks have a split layer");
    let seq = split_sequence(net).expect("classic networks have a split sequence");
    let irad = influence_radius(net).expect("classic networks are uniform");
    assert_eq!(sd, sd_formula, "{label}: sd formula");
    assert_eq!(seq.split_number(), theory::classic_split_number(w), "{label}: sp formula");
    assert_eq!(irad, theory::lg(w), "{label}: irad = lg w");
    let depths: Vec<String> =
        (0..=seq.split_number()).map(|l| seq.stage_depth(l).to_string()).collect();
    table.row(vec![
        label.to_string(),
        net.depth().to_string(),
        format!("{sd} (= {sd_formula})"),
        format!("{} (= lg w)", seq.split_number()),
        seq.is_continuously_complete().to_string(),
        seq.is_continuously_uniformly_splittable().to_string(),
        depths.join(","),
        format!("{irad} (= lg w)"),
    ]);
}

fn main() {
    println!("== Propositions 5.6-5.10: split structure of B(w) and P(w) ==\n");
    let mut table = Table::new(vec![
        "network",
        "d",
        "sd (formula)",
        "sp (formula)",
        "cont. complete",
        "cont. unif. splittable",
        "d(S^0),d(S^1),...",
        "irad (formula)",
    ]);
    for lgw in 1usize..=6 {
        let w = 1 << lgw;
        let net = bitonic(w).unwrap();
        row(&mut table, &format!("B({w})"), &net, theory::bitonic_split_depth(w));
    }
    for lgw in 1usize..=4 {
        let w = 1 << lgw;
        let net = periodic(w).unwrap();
        row(&mut table, &format!("P({w})"), &net, theory::periodic_split_depth(w));
    }
    println!("{table}");
    println!(
        "Reading: sd(B(w)) = (lg^2 w - lg w + 2)/2 and sd(P(w)) = lg^2 w - lg w + 1 as\n\
         stated; both families are continuously complete and continuously uniformly\n\
         splittable with sp = lg w, and each chop loses exactly one layer of the final\n\
         merging/block structure (the d(S^l) column), ending at depth 1."
    );
}
