//! Criterion benchmark: increment throughput of the shared-memory counting
//! network versus the centralized baselines, across thread counts — the
//! contention claim of \[AHS94\] that motivates the whole line of work
//! (Section 1.1 of the paper).

use cnet_runtime::{
    FetchAddCounter, GraphWalkCounter, LockCounter, ProcessCounter, SharedNetworkCounter,
};
use cnet_topology::construct::{bitonic, counting_tree};
use cnet_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const OPS_PER_THREAD: usize = 2_000;

fn run_threads<C: ProcessCounter>(counter: &C, threads: usize) {
    std::thread::scope(|s| {
        for p in 0..threads {
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    black_box(counter.next_for(p));
                }
            });
        }
    });
}

fn bench_throughput(c: &mut Criterion) {
    let b8 = bitonic(8).unwrap();
    let b16 = bitonic(16).unwrap();
    let t8 = counting_tree(8).unwrap();
    let mut group = c.benchmark_group("counter_throughput");
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(BenchmarkId::new("fetch_add", threads), &threads, |b, &t| {
            let counter = FetchAddCounter::new();
            b.iter(|| run_threads(&counter, t));
        });
        group.bench_with_input(BenchmarkId::new("lock", threads), &threads, |b, &t| {
            let counter = LockCounter::new();
            b.iter(|| run_threads(&counter, t));
        });
        group.bench_with_input(BenchmarkId::new("bitonic_8", threads), &threads, |b, &t| {
            let counter = SharedNetworkCounter::new(&b8);
            b.iter(|| run_threads(&counter, t));
        });
        group.bench_with_input(BenchmarkId::new("bitonic_8_graph_walk", threads), &threads, |b, &t| {
            let counter = GraphWalkCounter::new(&b8);
            b.iter(|| run_threads(&counter, t));
        });
        group.bench_with_input(BenchmarkId::new("bitonic_16", threads), &threads, |b, &t| {
            let counter = SharedNetworkCounter::new(&b16);
            b.iter(|| run_threads(&counter, t));
        });
        group.bench_with_input(BenchmarkId::new("tree_8", threads), &threads, |b, &t| {
            let counter = SharedNetworkCounter::new(&t8);
            b.iter(|| run_threads(&counter, t));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_throughput
}
criterion_main!(benches);
