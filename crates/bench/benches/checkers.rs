//! Criterion benchmark: the analysis machinery itself — consistency
//! checkers and fraction meters over large executions (they are `O(n log
//! n)` sweeps), and the structural analyses (valency, split sequence,
//! influence radius) over large networks.

use cnet_core::consistency::{is_linearizable, is_sequentially_consistent};
use cnet_core::fractions::{non_linearizable_ops, non_sequentially_consistent_ops};
use cnet_core::op::Op;
use cnet_sim::engine::run;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_topology::analysis::split::split_sequence;
use cnet_topology::analysis::{influence_radius, Valencies};
use cnet_topology::construct::bitonic;
use cnet_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn ops_of_size(n_ops: usize) -> Vec<Op> {
    let net = bitonic(16).unwrap();
    let cfg = WorkloadConfig {
        processes: 16,
        tokens_per_process: n_ops / 16,
        c_min: 1.0,
        c_max: 4.0,
        local_delay: 0.0,
        start_spread: 5.0,
    };
    let specs = generate(&net, &cfg, 99);
    Op::from_execution(&run(&net, &specs).unwrap())
}

fn bench_checkers(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency_checkers");
    for n in [1_000usize, 10_000] {
        let ops = ops_of_size(n);
        group.throughput(Throughput::Elements(ops.len() as u64));
        group.bench_with_input(BenchmarkId::new("is_linearizable", n), &ops, |b, ops| {
            b.iter(|| black_box(is_linearizable(ops)));
        });
        group.bench_with_input(
            BenchmarkId::new("is_sequentially_consistent", n),
            &ops,
            |b, ops| {
                b.iter(|| black_box(is_sequentially_consistent(ops)));
            },
        );
        group.bench_with_input(BenchmarkId::new("non_linearizable_ops", n), &ops, |b, ops| {
            b.iter(|| black_box(non_linearizable_ops(ops).len()));
        });
        group.bench_with_input(
            BenchmarkId::new("non_sequentially_consistent_ops", n),
            &ops,
            |b, ops| {
                b.iter(|| black_box(non_sequentially_consistent_ops(ops).len()));
            },
        );
    }
    group.finish();
}

fn bench_structural_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_analysis");
    for w in [16usize, 64] {
        let net = bitonic(w).unwrap();
        group.bench_with_input(BenchmarkId::new("valencies", w), &net, |b, net| {
            b.iter(|| black_box(Valencies::compute(net)));
        });
        group.bench_with_input(BenchmarkId::new("split_sequence", w), &net, |b, net| {
            b.iter(|| black_box(split_sequence(net).unwrap().split_number()));
        });
        group.bench_with_input(BenchmarkId::new("influence_radius", w), &net, |b, net| {
            b.iter(|| black_box(influence_radius(net).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_checkers, bench_structural_analysis
}
criterion_main!(benches);
