//! Criterion benchmark: single-token traversal cost as a function of
//! network family and fan — the `O(depth)` work per increment that the
//! network trades against contention, plus the cost of the timed-execution
//! replay engine per step.

use cnet_sim::engine::run;
use cnet_sim::workload::{generate, WorkloadConfig};
use cnet_topology::construct::{bitonic, counting_tree, periodic};
use cnet_topology::state::NetworkState;
use cnet_topology::Network;
use cnet_util::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sequential_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_traversal");
    let nets: Vec<(String, Network)> = [4usize, 16, 64]
        .into_iter()
        .flat_map(|w| {
            [
                (format!("bitonic_{w}"), bitonic(w).unwrap()),
                (format!("periodic_{w}"), periodic(w).unwrap()),
                (format!("tree_{w}"), counting_tree(w).unwrap()),
            ]
        })
        .collect();
    for (name, net) in &nets {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(name), net, |b, net| {
            let mut st = NetworkState::new(net);
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % net.fan_in();
                black_box(st.traverse(net, k).value)
            });
        });
    }
    group.finish();
}

fn bench_engine_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_replay");
    for w in [8usize, 32] {
        let net = bitonic(w).unwrap();
        let cfg = WorkloadConfig {
            processes: w,
            tokens_per_process: 20,
            c_min: 1.0,
            c_max: 3.0,
            local_delay: 0.5,
            start_spread: 10.0,
        };
        let specs = generate(&net, &cfg, 7);
        let steps = specs.len() * (net.depth() + 1);
        group.throughput(Throughput::Elements(steps as u64));
        group.bench_with_input(BenchmarkId::new("bitonic", w), &specs, |b, specs| {
            b.iter(|| black_box(run(&net, specs).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(15)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = bench_sequential_traversal, bench_engine_replay
}
criterion_main!(benches);
